#!/usr/bin/env python
"""Regenerate docs/API.md from the package's public docstrings.

Usage:  python tools/generate_api_docs.py
"""

import importlib
import inspect
import io
from pathlib import Path

MODULES = [
    "repro.core.model", "repro.core.parameters", "repro.core.objectives",
    "repro.core.constraints", "repro.core.monitoring", "repro.core.analyzer",
    "repro.core.effector", "repro.core.user_input", "repro.core.utility",
    "repro.core.framework", "repro.core.errors",
    "repro.algorithms.base", "repro.algorithms.exact",
    "repro.algorithms.stochastic", "repro.algorithms.avala",
    "repro.algorithms.decap", "repro.algorithms.bip",
    "repro.algorithms.mincut", "repro.algorithms.hillclimb",
    "repro.algorithms.annealing", "repro.algorithms.genetic",
    "repro.algorithms.swapsearch",
    "repro.middleware.events", "repro.middleware.bricks",
    "repro.middleware.connectors", "repro.middleware.scaffold",
    "repro.middleware.monitors", "repro.middleware.serialization",
    "repro.middleware.admin", "repro.middleware.runtime",
    "repro.middleware.caching",
    "repro.sim.clock", "repro.sim.network", "repro.sim.fluctuation",
    "repro.sim.workload",
    "repro.desi.systemdata", "repro.desi.generator", "repro.desi.modifier",
    "repro.desi.container", "repro.desi.views", "repro.desi.xadl",
    "repro.desi.adapter", "repro.desi.batch",
    "repro.decentralized.awareness", "repro.decentralized.sync",
    "repro.decentralized.voting", "repro.decentralized.auction",
    "repro.decentralized.agent",
    "repro.scenarios.crisis", "repro.scenarios.clientserver",
    "repro.scenarios.sensorfield",
    "repro.cli",
]


def first_line(doc):
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def generate() -> str:
    out = io.StringIO()
    out.write("# API reference\n\n")
    out.write("One line per public class/function, generated from "
              "docstrings by `python tools/generate_api_docs.py`.  See the "
              "module docstrings for the paper mapping and design "
              "rationale.\n\n")
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        out.write(f"## `{module_name}`\n\n")
        summary = first_line(module.__doc__)
        if summary:
            out.write(f"{summary}\n\n")
        rows = []
        for name, obj in sorted(vars(module).items()):
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isclass(obj):
                rows.append((f"class `{name}`", first_line(obj.__doc__)))
                for mname, mobj in sorted(vars(obj).items()):
                    if mname.startswith("_") or not inspect.isfunction(mobj):
                        continue
                    rows.append((f"&nbsp;&nbsp;`{name}.{mname}()`",
                                 first_line(mobj.__doc__)))
            elif inspect.isfunction(obj):
                rows.append((f"`{name}()`", first_line(obj.__doc__)))
        if rows:
            out.write("| item | summary |\n|---|---|\n")
            for item, summary in rows:
                summary = (summary or "").replace("|", "\\|")
                out.write(f"| {item} | {summary} |\n")
            out.write("\n")
    return out.getvalue()


if __name__ == "__main__":
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text(generate(), encoding="utf-8")
    print(f"wrote {target} ({target.stat().st_size} bytes)")
