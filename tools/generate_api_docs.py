#!/usr/bin/env python
"""Regenerate docs/API.md from the package's public docstrings.

Usage:  python tools/generate_api_docs.py
"""

import importlib
import inspect
import io
from pathlib import Path

MODULES = [
    "repro.core.model", "repro.core.parameters", "repro.core.objectives",
    "repro.core.constraints", "repro.core.constraints_compiled",
    "repro.core.monitoring", "repro.core.analyzer",
    "repro.core.effector", "repro.core.user_input", "repro.core.utility",
    "repro.core.framework", "repro.core.errors", "repro.core.registry",
    "repro.core.report",
    "repro.plan.schedule", "repro.plan.planner",
    "repro.lint.core", "repro.lint.model_rules", "repro.lint.xadl_rules",
    "repro.lint.fault_rules", "repro.lint.plan_rules",
    "repro.lint.code", "repro.lint.flow",
    "repro.lint.concurrency", "repro.lint.determinism", "repro.lint.cache",
    "repro.lint.sarif",
    "repro.algorithms.base", "repro.algorithms.engine",
    "repro.algorithms.compiled", "repro.algorithms.search",
    "repro.algorithms.exact",
    "repro.algorithms.stochastic", "repro.algorithms.avala",
    "repro.algorithms.decap", "repro.algorithms.bip",
    "repro.algorithms.mincut", "repro.algorithms.hillclimb",
    "repro.algorithms.annealing", "repro.algorithms.genetic",
    "repro.algorithms.swapsearch",
    "repro.middleware.events", "repro.middleware.bricks",
    "repro.middleware.connectors", "repro.middleware.scaffold",
    "repro.middleware.monitors", "repro.middleware.serialization",
    "repro.middleware.admin", "repro.middleware.runtime",
    "repro.middleware.caching",
    "repro.sim.clock", "repro.sim.network", "repro.sim.fluctuation",
    "repro.sim.workload",
    "repro.desi.systemdata", "repro.desi.generator", "repro.desi.modifier",
    "repro.desi.container", "repro.desi.views", "repro.desi.xadl",
    "repro.desi.adapter", "repro.desi.batch",
    "repro.decentralized.awareness", "repro.decentralized.sync",
    "repro.decentralized.voting", "repro.decentralized.auction",
    "repro.decentralized.agent",
    "repro.scenarios.crisis", "repro.scenarios.clientserver",
    "repro.scenarios.sensorfield",
    "repro.faults.plan", "repro.faults.injector", "repro.faults.campaigns",
    "repro.faults.report",
    "repro.obs", "repro.obs.metrics", "repro.obs.trace",
    "repro.obs.capture",
    "repro.cli",
]


# Hand-written overview sections, emitted immediately before the named
# module so regeneration never loses them.
PROSE_BEFORE = {
    "repro.core.report": """\
## The common Report API (`repro.core.report`)

Every artifact the framework produces about its own behaviour — cycle
reports, effect reports, algorithm results, sweep reports, lint
reports, resilience reports, decentralized round reports — implements
the `Report` protocol (`to_dict` / `to_json` / `render` /
`summary_line`).  The CLI's shared `--json`/`--quiet` flags route every
verb through these methods.  See `docs/OBSERVABILITY.md`.
""",
    "repro.obs": """\
## Observability (`repro.obs`)

Process-wide but injectable metrics, tracing, and capture files across
the monitor->model->algorithm->effector loop.  Disabled by default with
a null-object bundle whose overhead is pinned by
`benchmarks/test_bench_obs.py`; see `docs/OBSERVABILITY.md` for the
full guide and the instrumentation map.
""",
    "repro.plan.schedule": """\
## Migration planning (`repro.plan`)

Turns a `(current, target)` deployment delta into a `MigrationSchedule`:
moves grouped into parallel waves whose barrier states all satisfy the
constraint set, with per-wave transfers routed and packed against
per-link bandwidth.  Waves are the effector's rollback barriers; the
lint rules `PL001`-`PL003` verify saved schedules, and
`python -m repro plan` builds, renders, lints, and diffs them.  See
`docs/PLANNING.md`.
""",
    "repro.lint.core": """\
## Static analysis (`repro.lint`)

A pluggable static verifier with two pillars on one rule engine: the
**model verifier** (rules over `DeploymentModel`/xADL — mapping,
capacities, parameter ranges, reachability, constraint satisfiability,
objective contracts) and the **code analyzer** (AST rules for the
middleware's conventions).  `python -m repro lint` runs the model rules
over scenarios/xADL files, `python -m repro lint --code` runs the AST
rules, and the `deployment`-tagged subset gates `Effector.effect` and
`ExperimentRunner.run` (`PreflightError`/`LintError` on error findings).
See `docs/STATIC_ANALYSIS.md` for the rule catalog, severities,
suppression syntax, and how to write custom rules.
""",
    "repro.lint.flow": """\
## Dataflow analysis framework (`repro.lint.flow` and the rule packs)

Whole-function reasoning under the code analyzer: per-function CFG
construction (branches, loops, `try/except/finally` with exception
edges, `with`, `match`), a generic worklist dataflow solver, and
reaching-definitions/liveness instances.  On top of it sit the
**concurrency pack** (`repro.lint.concurrency` — CC001 package-wide
lock-order cycles, CC002 acquire-without-release on exception paths,
CC003 unlocked shared writes) and the **determinism pack**
(`repro.lint.determinism` — DT001 unseeded randomness via taint
tracking, DT002 wall clocks in serialization, DT003 set iteration order
escaping into rendered output), plus the production plumbing: a
content-hash result cache with baseline suppression files
(`repro.lint.cache`) and a SARIF 2.1.0 reporter (`repro.lint.sarif`).
""",
    "repro.algorithms.engine": """\
## Evaluation engine & algorithm portfolio

All algorithm execution now flows through `repro.algorithms.engine`.
`DeploymentAlgorithm.run(model, initial=None, engine=None)` accepts an
`EvaluationEngine`; when omitted, a private one is created, so existing
call sites keep working unchanged.

**Memoized evaluation.** The engine memoizes `Objective.evaluate` on the
hashable `Deployment`, in a `DeploymentCache` that listens to the model:
any topology or parameter mutation (e.g. a monitor writing a fresh
observation through `set_physical_link_param`) drops the cache, so stale
scores are never served.  Deployment changes do *not* invalidate —
evaluation takes the deployment as an explicit argument.  One cache may be
shared by many engines (keys include the objective), which is how a
portfolio's members reuse each other's work.

**Incremental evaluation.** Every `Objective` follows one contract:
`move_delta(model, deployment, component, new_host)` returns
`evaluate(moved) - evaluate(base)` to 1e-9, and `supports_delta` declares
whether that delta is served incrementally in O(degree) of the moved
component.  All six built-in objectives implement the fast path —
throughput (bottleneck max) and durability (lifetime min) localize a move
with per-host-pair demand / per-host draw accumulators keyed on
`model.version`.  `WeightedObjective` supports the fast path iff all of
its terms do.  (`repro.lint` rule MV015 flags objectives that declare the
fast path without implementing it.)

**Budgets and graceful truncation.** Engines accept `max_evaluations`
and/or `max_seconds`.  When a budget runs out mid-search the engine raises
`EvaluationBudgetExceeded`; `DeploymentAlgorithm.run` catches it and
degrades to the best deployment fully evaluated so far, setting
`extra["engine"]["truncated"]`.  Per-run counters (full evaluations, cache
hits/misses, delta evaluations and fallbacks, elapsed vs budget) land in
`AlgorithmResult.extra["engine"]`.

**Portfolios.** `PortfolioRunner.run(model, factories)` executes a suite of
algorithms concurrently (`parallel=False` for sequential), each under an
optional per-algorithm timeout, all sharing one cache.  A member that
raises `AlgorithmError`, crashes, or times out degrades to a `skipped` /
`error` / `timeout` `PortfolioOutcome` instead of aborting the run; the
`PortfolioReport` records every member's fate plus aggregate counters.
`Analyzer.analyze` runs its selected algorithms this way (see
`Decision.portfolio`), and `AlgorithmContainer.invoke_portfolio` exposes
the same machinery in DeSi.

**Registries.** `Analyzer` and `AlgorithmContainer` share
`repro.core.registry.AlgorithmRegistry` (exposed as `.registry`); the
historical `register_algorithm`/`register`/`unregister` methods remain as
deprecation shims.  Registry misuse raises the dedicated
`RegistryError` family from `repro.core.errors` rather than
`AnalyzerError`.
""",
    "repro.algorithms.compiled": """\
## Compiled evaluation kernels

`repro.algorithms.compiled` is the evaluation-side view of the object
model: `compiled_model(model)` snapshots a `DeploymentModel` into a
`CompiledModel` of integer-indexed flat structures (index maps, CSR
logical adjacency with per-edge parameter arrays, dense host×host
reliability/bandwidth/delay/security matrices, per-entity resource
vectors), invalidated through model-listener events and recompiled
lazily per generation.  `CompiledDeployment` pairs a host-index array
with an O(1) incrementally-maintained Zobrist hash.
`compile_kernel(objective, compiled)` resolves a per-objective kernel by
exact type (`register_kernel` extends the table); every built-in
objective has one, all with incremental `move_delta`, and
`WeightedObjective` composes its terms' kernels.  The
`EvaluationEngine` routes through kernels automatically
(`use_kernels=True`), falling back to the object path for custom
objectives or un-encodable deployments.  `docs/PERFORMANCE.md` covers
the lifecycle and the measured speedups (`BENCH_compiled.json`);
lint rule MV016 advises when model size demands the compiled path.
""",
    "repro.core.constraints_compiled": """\
## Compiled constraint checking

`repro.core.constraints_compiled` is the evaluation-side view of the
constraint layer: `compile_constraints(constraints, compiled_model)`
lowers a `ConstraintSet` onto a `CompiledModel` snapshot as a
`CompiledConstraintSet` — per-host residual resource loads, location
bitmasks, collocation group counters, bandwidth pair-demand
accumulators — giving O(1) `allows(ci, hi)` probes and incremental
`place`/`undo` with exact-restore tokens, while reproducing the object
path's verdicts and violation strings exactly.  Compilation is by
exact constraint type; unknown types return `None` and callers stay on
the object path (the same discipline as kernel dispatch).  The
equivalence contract is property-tested in
`tests/core/test_constraints_compiled.py`; `docs/PERFORMANCE.md`
covers where it slots into the search engine.
""",
    "repro.algorithms.search": """\
## Incremental neighborhood search

`repro.algorithms.search` carries one search run's working state:
`make_checker` wraps either the compiled or the object constraint path
behind one protocol (`allows`/`place`/`undo`/`satisfied`), and
`SearchState` maintains the legal-move frontier — cached move deltas,
per-row best improving moves, a lazy best-move heap, and dirty-move
invalidation so a move c: h1->h2 re-scores only rows touching h1, h2,
or c's logical neighbors (objectives with `local_delta = False`
invalidate everything).  The canonical selection rule is deterministic
and identical across checker paths, pinned by
`tests/algorithms/test_search_determinism.py`; the measured payoff is
`BENCH_search.json` (see `docs/PERFORMANCE.md`).  The
`constraint_checks`/`moves_rescored`/`frontier_hits` counters in
`EvaluationStats` report what the frontier saved.
""",
    "repro.faults.plan": """\
## Fault injection (`repro.faults`)

Deterministic fault-injection campaigns over the simulated network:
declarative `FaultPlan`s of timed `FaultAction`s (host crashes/restarts,
partitions/heals, link flapping, loss bursts, parameter degradation),
executed by a `FaultInjector` that schedules everything on the
`SimClock` up front — no hot-path hooks, so disabled injection is free.
Campaign generators derive plans from the model (`random_churn`,
`rolling_partitions`, `targeted_attack` on the traffic-derived
`worst_host`), and `run_campaign` scores a run into a seed-reproducible
`ResilienceReport` (delivered vs modeled availability, migration
success, retries, rollbacks, mean time to recover).  CLI:
`python -m repro faults run|generate|lint`; rules FP001–FP004 lint
plans.  See `docs/FAULTS.md`.
""",
}


def first_line(doc):
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def generate() -> str:
    out = io.StringIO()
    out.write("# API reference\n\n")
    out.write("One line per public class/function, generated from "
              "docstrings by `python tools/generate_api_docs.py`.  See the "
              "module docstrings for the paper mapping and design "
              "rationale.\n\n")
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        if module_name in PROSE_BEFORE:
            out.write(PROSE_BEFORE[module_name])
            out.write("\n")
        out.write(f"## `{module_name}`\n\n")
        summary = first_line(module.__doc__)
        if summary:
            out.write(f"{summary}\n\n")
        rows = []
        for name, obj in sorted(vars(module).items()):
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            if inspect.isclass(obj):
                rows.append((f"class `{name}`", first_line(obj.__doc__)))
                for mname, mobj in sorted(vars(obj).items()):
                    if mname.startswith("_") or not inspect.isfunction(mobj):
                        continue
                    rows.append((f"&nbsp;&nbsp;`{name}.{mname}()`",
                                 first_line(mobj.__doc__)))
            elif inspect.isfunction(obj):
                rows.append((f"`{name}()`", first_line(obj.__doc__)))
        if rows:
            out.write("| item | summary |\n|---|---|\n")
            for item, summary in rows:
                summary = (summary or "").replace("|", "\\|")
                out.write(f"| {item} | {summary} |\n")
            out.write("\n")
    return out.getvalue()


if __name__ == "__main__":
    target = Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.parent.mkdir(exist_ok=True)
    target.write_text(generate(), encoding="utf-8")
    print(f"wrote {target} ({target.stat().st_size} bytes)")
