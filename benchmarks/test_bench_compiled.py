"""E-K — compiled evaluation kernels vs the object path.

Measures evaluations/second for every built-in objective through the
object path (``Objective.evaluate`` / ``move_delta`` over string-keyed
dicts) and through the compiled kernels (``repro.algorithms.compiled``
over integer-indexed flat arrays), at growing model sizes.  Results are
printed as paper-style tables and written machine-readable to
``BENCH_compiled.json`` in the repository root (tracked in git so the
measured speedups travel with the code — see docs/PERFORMANCE.md).

Two modes:

* full (default): sizes 10x40, 20x100, 40x200; asserts the kernels reach
  at least 3x the object path's evals/sec at 40 hosts x 200 components.
* smoke (``BENCH_COMPILED_SMOKE=1``): tiny sizes for CI; asserts only
  that the kernels are no slower than the object path.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.algorithms.compiled import compile_kernel, compiled_model
from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, DurabilityObjective,
    LatencyObjective, SecurityObjective, ThroughputObjective,
)
from repro.desi.generator import Generator, GeneratorConfig
from conftest import print_table

SMOKE = os.environ.get("BENCH_COMPILED_SMOKE", "") not in ("", "0")
SIZES = [(4, 10), (6, 20)] if SMOKE else [(10, 40), (20, 100), (40, 200)]
#: Required aggregate (geometric-mean) evaluate speedup at the largest size.
REQUIRED_SPEEDUP = 1.0 if SMOKE else 3.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compiled.json"
MOVES_PER_BATCH = 50


def objectives():
    return [AvailabilityObjective(), LatencyObjective(),
            CommunicationCostObjective(), SecurityObjective(),
            ThroughputObjective(), DurabilityObjective()]


def paint_extended_params(model, seed):
    """Parameters the generator leaves at defaults; without them the
    security and durability kernels would race over trivial landscapes."""
    rng = random.Random(seed)
    for link in model.physical_links:
        model.set_physical_link_param(*link.hosts, "security", rng.random())
    for host in model.hosts:
        if rng.random() < 0.7:
            model.set_host_param(host.id, "battery", rng.uniform(50.0, 500.0))
        model.set_host_param(host.id, "cpu", rng.uniform(1.0, 8.0))
    for component in model.components:
        model.set_component_param(component.id, "cpu", rng.uniform(0.1, 2.0))


def rate(fn, min_time=0.05, min_calls=3):
    """Calls/second: repeat *fn* until both floors are met (after warmup)."""
    fn()
    calls = 0
    start = time.perf_counter()
    while True:
        fn()
        calls += 1
        elapsed = time.perf_counter() - start
        if calls >= min_calls and elapsed >= min_time:
            return calls / elapsed


def geomean(values):
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def bench_size(hosts, components, seed):
    model = Generator(GeneratorConfig(hosts=hosts, components=components),
                      seed=seed).generate(f"bench-{hosts}x{components}")
    paint_extended_params(model, seed * 31 + 1)
    compiled = compiled_model(model)
    deployment = dict(model.deployment)
    assignment = compiled.encode(deployment)
    rng = random.Random(seed * 7 + 3)
    moves = [(rng.choice(model.component_ids), rng.choice(model.host_ids))
             for __ in range(MOVES_PER_BATCH)]
    compiled_moves = [(compiled.component_index[c], compiled.host_index[h])
                      for c, h in moves]

    per_objective = {}
    for objective in objectives():
        kernel = compile_kernel(objective, compiled)
        assert kernel is not None, objective.name

        def object_deltas(objective=objective):
            for component_id, host_id in moves:
                objective.move_delta(model, deployment, component_id, host_id)

        def kernel_deltas(kernel=kernel):
            for component_index, host_index in compiled_moves:
                kernel.move_delta(assignment, component_index, host_index)

        object_eval = rate(
            lambda objective=objective: objective.evaluate(model, deployment))
        kernel_eval = rate(lambda kernel=kernel: kernel.evaluate(assignment))
        object_delta = rate(object_deltas) * MOVES_PER_BATCH
        kernel_delta = rate(kernel_deltas) * MOVES_PER_BATCH
        per_objective[objective.name] = {
            "object_evals_per_sec": object_eval,
            "kernel_evals_per_sec": kernel_eval,
            "eval_speedup": kernel_eval / object_eval,
            "object_deltas_per_sec": object_delta,
            "kernel_deltas_per_sec": kernel_delta,
            "delta_speedup": kernel_delta / object_delta,
            # How much cheaper one incremental delta is than one full
            # kernel evaluation — the payoff of supports_delta=True.
            "delta_vs_full_kernel": kernel_delta / kernel_eval,
        }
    return {
        "hosts": hosts,
        "components": components,
        "objectives": per_objective,
        "aggregate_eval_speedup": geomean(
            [o["eval_speedup"] for o in per_objective.values()]),
        "aggregate_delta_speedup": geomean(
            [o["delta_speedup"] for o in per_objective.values()]),
    }


def test_compiled_kernels_beat_object_path():
    results = [bench_size(hosts, components, seed=9 + index)
               for index, (hosts, components) in enumerate(SIZES)]

    for entry in results:
        rows = [(name, data["object_evals_per_sec"],
                 data["kernel_evals_per_sec"], data["eval_speedup"],
                 data["object_deltas_per_sec"], data["kernel_deltas_per_sec"],
                 data["delta_speedup"])
                for name, data in sorted(entry["objectives"].items())]
        print_table(
            f"E-K: kernels vs object path "
            f"({entry['hosts']} hosts x {entry['components']} components)",
            ["objective", "obj eval/s", "kernel eval/s", "speedup",
             "obj delta/s", "kernel delta/s", "speedup"], rows)

    payload = {
        "benchmark": "compiled-kernels",
        "mode": "smoke" if SMOKE else "full",
        "moves_per_batch": MOVES_PER_BATCH,
        "required_speedup": REQUIRED_SPEEDUP,
        "sizes": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    largest = results[-1]
    assert largest["aggregate_eval_speedup"] >= REQUIRED_SPEEDUP, (
        f"kernels only {largest['aggregate_eval_speedup']:.2f}x the object "
        f"path at {largest['hosts']}x{largest['components']} "
        f"(need >= {REQUIRED_SPEEDUP}x)")
    # Every built-in objective individually must at least break even, and
    # incremental deltas must beat full kernel evaluations.
    for name, data in largest["objectives"].items():
        assert data["eval_speedup"] >= REQUIRED_SPEEDUP * 0.5, name
        assert data["delta_vs_full_kernel"] > 1.0, name


def test_bench_json_is_readable():
    """The artifact the CI job uploads must parse and carry the headline."""
    if not OUTPUT.exists():  # bench above writes it; ordering is file-local
        test_compiled_kernels_beat_object_path()
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "compiled-kernels"
    assert payload["sizes"], "no sizes recorded"
    for entry in payload["sizes"]:
        assert entry["aggregate_eval_speedup"] > 0
