"""E11 — Ablations of this reproduction's own design choices.

DESIGN.md documents several implementation decisions the paper leaves
unspecified; these benches measure what each one buys:

* **DecAp symmetric final bids** — including bidder-to-bidder link terms so
  keep-vs-move comparisons use the same information set;
* **Avala incremental host ranking** — ranking each next host by its links
  to already-selected hosts rather than to the whole network;
* **offline queuing** — holding remote calls during outages vs dropping;
* **analyzer fast tier under instability** — the §5.1 policy vs always
  running the expensive suite.
"""

import statistics
import time

import pytest

from repro.algorithms import AvalaAlgorithm, DecApAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.core.analyzer import Analyzer
from repro.desi import Generator, GeneratorConfig
from repro.middleware import DistributedSystem
from repro.sim import DisconnectionProcess, InteractionWorkload, SimClock
from conftest import print_table


def test_e11_decap_symmetric_bids(availability, memory_constraints,
                                  benchmark):
    models = Generator(GeneratorConfig(
        hosts=6, components=16, physical_density=0.9,
        reliability=(0.3, 0.95)), seed=5000).generate_many(5)
    naive = []
    symmetric = []
    for model in models:
        naive.append(DecApAlgorithm(
            availability, memory_constraints, seed=1,
            symmetric_bids=False).run(model).value)
        symmetric.append(DecApAlgorithm(
            availability, memory_constraints, seed=1,
            symmetric_bids=True).run(model).value)
    initial = statistics.mean(
        availability.evaluate(m, m.deployment) for m in models)
    print_table("E11a: DecAp final-bid formulation (dense network, mean of 5)",
                ["variant", "availability"],
                [("initial", initial),
                 ("naive (keep-biased) bids", statistics.mean(naive)),
                 ("symmetric bids", statistics.mean(symmetric))])
    # The symmetric formulation should not be worse, and on dense networks
    # (where the bias bites) it should win.
    assert statistics.mean(symmetric) >= statistics.mean(naive) - 0.01
    benchmark(lambda: DecApAlgorithm(
        availability, memory_constraints, seed=1).run(models[0]))


def test_e11_avala_host_ranking(availability, memory_constraints, benchmark):
    models = Generator(GeneratorConfig(
        hosts=10, components=30, host_memory=(20.0, 50.0),
        memory_headroom=1.2, reliability=(0.2, 0.95)),
        seed=5100).generate_many(5)
    naive = [AvalaAlgorithm(availability, memory_constraints, seed=1,
                            incremental_host_rank=False).run(m).value
             for m in models]
    incremental = [AvalaAlgorithm(availability, memory_constraints, seed=1,
                                  incremental_host_rank=True).run(m).value
                   for m in models]
    print_table("E11b: Avala host-ranking strategy (mean of 5)",
                ["variant", "availability"],
                [("global ranking", statistics.mean(naive)),
                 ("incremental (selected-affinity) ranking",
                  statistics.mean(incremental))])
    assert statistics.mean(incremental) >= statistics.mean(naive) - 0.01
    benchmark(lambda: AvalaAlgorithm(
        availability, memory_constraints, seed=1).run(models[0]))


def test_e11_offline_queuing_delivery(benchmark):
    """Delivery ratio with and without 'queuing of remote calls' under a
    flapping link (the §6 extension's payoff)."""
    def run(queuing: bool):
        model = DeploymentModel()
        model.add_host("h0", memory=100.0)
        model.add_host("h1", memory=100.0)
        model.connect_hosts("h0", "h1", reliability=1.0, bandwidth=200.0,
                            delay=0.005)
        model.add_component("a", memory=10.0)
        model.add_component("b", memory=10.0)
        model.connect_components("a", "b", frequency=4.0)
        model.deploy("a", "h0")
        model.deploy("b", "h1")
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=7,
                                   queue_when_disconnected=queuing)
        DisconnectionProcess(system.network, "h0", "h1", mean_uptime=4.0,
                             mean_downtime=4.0, seed=8).start()
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=9).start()
        clock.run(80.0)
        workload.stop()
        system.network.set_connected("h0", "h1", True)
        clock.run(2.0)
        sent = (system.component("a").sent_count
                + system.component("b").sent_count)
        received = (system.component("a").received_count
                    + system.component("b").received_count)
        return received / sent if sent else 1.0

    dropped = run(queuing=False)
    queued = run(queuing=True)
    print_table("E11c: delivery ratio under a flapping link "
                "(50% downtime, 80 simulated s)",
                ["variant", "delivery ratio"],
                [("drop when disconnected", dropped),
                 ("queue when disconnected", queued)])
    assert queued > dropped + 0.2  # queuing recovers most outage losses
    assert queued > 0.9
    benchmark(lambda: run(queuing=True))


def test_e11_reply_caching_read_availability(benchmark):
    """Caching/hoarding of data (§6): fraction of read requests answered
    during a 50%-downtime flapping link, with and without the cache."""
    from repro.middleware import (
        CallbackComponent, DistributedSystem as DS, Event,
        install_reply_caches,
    )
    from repro.middleware.caching import (
        DataProviderComponent, REPLY_EVENT, REQUEST_EVENT,
    )

    def run(cached: bool):
        model = DeploymentModel()
        model.add_host("clienthost", memory=100.0)
        model.add_host("datahost", memory=100.0)
        model.connect_hosts("clienthost", "datahost", reliability=1.0,
                            bandwidth=200.0, delay=0.005)
        model.add_component("client", memory=5.0)
        model.add_component("provider", memory=5.0)
        model.connect_components("client", "provider", frequency=1.0)
        model.deploy("client", "clienthost")
        model.deploy("provider", "datahost")
        clock = SimClock()

        def factory(component_id):
            if component_id == "provider":
                provider = DataProviderComponent(component_id)
                provider.put("status", {"ok": True})
                return provider
            return CallbackComponent(component_id)

        system = DS(model, clock, component_factory=factory, seed=21)
        if cached:
            install_reply_caches(system)
        DisconnectionProcess(system.network, "clienthost", "datahost",
                             mean_uptime=4.0, mean_downtime=4.0,
                             seed=22).start()
        client = system.component("client")
        asked = 0
        for __ in range(100):
            client.send(Event(REQUEST_EVENT, {"key": "status"},
                              source="client", target="provider"))
            asked += 1
            clock.run(0.8)
        answered = sum(1 for event in client.received
                       if event.name == REPLY_EVENT)
        return answered / asked

    uncached = run(cached=False)
    cached = run(cached=True)
    print_table("E11e: read availability under a flapping link "
                "(100 requests, 50% downtime)",
                ["variant", "requests answered"],
                [("no cache", uncached), ("reply cache", cached)])
    assert cached > uncached + 0.2
    benchmark(lambda: run(cached=True))


def test_e11_analyzer_fast_tier_speed(benchmark):
    """§5.1's policy of running a cheap algorithm while the system is
    unstable: the fast tier must be an order of magnitude quicker per
    cycle than the thorough tier, at a bounded quality cost."""
    model = Generator(GeneratorConfig(hosts=10, components=30,
                                      host_memory=(20.0, 50.0),
                                      memory_headroom=1.2),
                      seed=5200).generate()
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    # The analyzer records the current value as the newest profile sample,
    # so a "stable" history must be primed with that same value.
    current = objective.evaluate(model, model.deployment)

    def cycle(profile):
        analyzer = Analyzer(objective, constraints, seed=1)
        for t, value in enumerate(profile):
            analyzer.history.record(float(t), value)
        start = time.perf_counter()
        decision = analyzer.analyze(model.copy())
        elapsed = time.perf_counter() - start
        best = decision.selected.value if decision.selected else None
        return elapsed, best, decision.algorithms_run

    stable_time, stable_best, stable_algorithms = cycle([current] * 5)
    unstable_time, unstable_best, unstable_algorithms = cycle(
        [current, 0.3, current - 0.2, 0.2, current])
    print_table("E11d: analyzer cycle cost by stability regime",
                ["profile", "algorithms", "cycle (ms)", "best found"],
                [("stable", "+".join(stable_algorithms),
                  stable_time * 1000.0, stable_best),
                 ("unstable", "+".join(unstable_algorithms),
                  unstable_time * 1000.0, unstable_best)])
    assert unstable_time < stable_time  # the point of the fast tier
    benchmark(lambda: cycle([0.9, 0.3, 0.8, 0.2, 0.9]))
