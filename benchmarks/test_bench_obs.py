"""Guard: disabled observability is (near-)free on the E1c hot path.

Every instrumented constructor resolves its instruments once, so the
per-event cost of a disabled bundle is at most one bound no-op call —
and the algorithm/evaluation hot path (the E1c portfolio benchmark)
carries no obs calls at all: engine counters are promoted to the
registry only after a portfolio completes.  This microbenchmark pins
both properties by running the same three-algorithm portfolio bare and
under an installed-but-disabled process-wide bundle, and the middleware
event path bare versus with disabled instrumentation wired.

Modes:

* full (default): best-of-7 interleaved pairs; asserts the disabled
  bundle stays within the CI noise margin of the bare run (the measured
  ratio, printed with ``-s``, is ~1.00 — well under the 2%% budget).
* smoke (``OBS_SMOKE=1``): best-of-3 for CI wall-clock.
"""

import os
import time

from conftest import large_architectures, print_table

from repro.algorithms import (
    AvalaAlgorithm, HillClimbingAlgorithm, StochasticAlgorithm,
)
from repro.algorithms.engine import PortfolioRunner
from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
from repro.middleware import DistributedSystem
from repro.obs import NULL_OBS, observe
from repro.scenarios import build_client_server
from repro.sim import InteractionWorkload, SimClock

SMOKE = os.environ.get("OBS_SMOKE", "") not in ("", "0")
REPEATS = 3 if SMOKE else 7

#: CI noise margin.  The true overhead budget is <2% — visible in the
#: printed ratio on a quiet machine — but shared runners jitter far more
#: than that, so the hard assertion allows the same generous margin the
#: fault-injection zero-cost guard uses.
MARGIN = 1.5


def run_portfolio():
    """The E1c path: three algorithms over a 10x40 architecture."""
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    model = large_architectures(count=1)[0]
    factories = {
        "stochastic": lambda: StochasticAlgorithm(
            objective, constraints, seed=1,
            iterations=10 if SMOKE else 30),
        "avala": lambda: AvalaAlgorithm(objective, constraints, seed=1),
        "hillclimb": lambda: HillClimbingAlgorithm(
            objective, constraints, seed=1),
    }
    report = PortfolioRunner(parallel=False).run(model.copy(), factories)
    assert set(report.succeeded) == set(factories)


def run_middleware(duration=10.0):
    """The per-event path: scaffold dispatch + connector + network."""
    scenario = build_client_server(seed=4)
    clock = SimClock()
    system = DistributedSystem(scenario.model, clock, seed=4)
    workload = InteractionWorkload(scenario.model, clock, system.emit,
                                   seed=5).start()
    clock.run(duration)
    workload.stop()


def timed(func):
    started = time.perf_counter()
    func()
    return time.perf_counter() - started


def best_of_interleaved(func):
    """Best-of-REPEATS for bare vs disabled-bundle, interleaved so
    machine-load drift hits both variants equally."""
    bare = installed = float("inf")
    for __ in range(REPEATS):
        bare = min(bare, timed(func))
        with observe(NULL_OBS):
            installed = min(installed, timed(func))
    return bare, installed


def test_noop_bundle_is_free_on_e1c_portfolio_path():
    run_portfolio()  # warm imports, kernels, caches
    bare, installed = best_of_interleaved(run_portfolio)
    ratio = installed / bare
    print_table(
        "Obs overhead: E1c portfolio (10x40), disabled bundle",
        ["variant", "best (s)", "ratio"],
        [("bare", bare, 1.0), ("disabled bundle", installed, ratio)])
    assert installed < bare * MARGIN, \
        f"disabled-bundle {installed:.6f}s vs bare {bare:.6f}s"


def test_noop_bundle_is_cheap_on_middleware_event_path():
    run_middleware()  # warm
    bare, installed = best_of_interleaved(run_middleware)
    ratio = installed / bare
    print_table(
        "Obs overhead: middleware event path (client-server, 10s sim)",
        ["variant", "best (s)", "ratio"],
        [("bare", bare, 1.0), ("disabled bundle", installed, ratio)])
    assert installed < bare * MARGIN, \
        f"disabled-bundle {installed:.6f}s vs bare {bare:.6f}s"
