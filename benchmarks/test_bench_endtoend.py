"""E9 — End-to-end closed loop (Figures 2/3/6; the integration the paper's
tool suite exists for).

A live simulated system runs the full monitor -> model -> analyzer ->
algorithm -> effector cycle while the network degrades mid-run.  We report
the availability trajectory for (a) the centralized framework on the crisis
scenario, (b) the same system with the framework disabled (control), and
(c) the decentralized framework on the sensor field.
"""

import pytest

from repro.core import AvailabilityObjective
from repro.core.framework import CentralizedFramework
from repro.decentralized import DecentralizedFramework
from repro.middleware import DistributedSystem
from repro.scenarios import (
    CrisisConfig, build_crisis_scenario, build_sensor_field,
)
from repro.sim import InteractionWorkload, SimClock, StepChange
from conftest import print_table


def run_centralized(managed: bool, duration=60.0, seed=100):
    scenario = build_crisis_scenario(CrisisConfig(
        commanders=2, troops_per_commander=2, seed=13))
    model = scenario.model
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host=scenario.hq,
                               seed=seed)
    objective = AvailabilityObjective()
    framework = None
    if managed:
        framework = CentralizedFramework(
            system, objective, scenario.constraints,
            user_input=scenario.user_input, monitor_interval=2.0, seed=7)
        framework.start(cycles_per_analysis=2)
    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=seed + 1).start()
    # Both commander uplinks degrade mid-run.
    for commander in scenario.commanders:
        StepChange(system.network, scenario.hq, commander, at=duration / 2,
                   attribute="reliability", value=0.35).start()
    trajectory = []
    for _step in range(int(duration / 10)):
        clock.run(10.0)
        # Score the *actual* placement against ground-truth link state.
        system.network.apply_to_model(model)
        trajectory.append(objective.evaluate(model,
                                             system.actual_deployment()))
    workload.stop()
    if framework is not None:
        framework.stop()
    redeployments = (len(framework.effector.history)
                     if framework is not None else 0)
    return trajectory, redeployments


def test_e9_centralized_loop_vs_unmanaged(benchmark):
    managed, redeployments = run_centralized(managed=True)
    unmanaged, __ = run_centralized(managed=False)
    rows = [
        (f"t={(i + 1) * 10}", unmanaged[i], managed[i])
        for i in range(len(managed))
    ]
    print_table("E9a: availability trajectory, crisis scenario "
                "(uplinks degrade at t=30)",
                ["time", "unmanaged", "framework-managed"], rows)
    print(f"  redeployments effected: {redeployments}")
    # The framework improves on the initial deployment before the incident.
    assert managed[1] >= unmanaged[1] - 1e-9
    # After the degradation, the managed system ends clearly better.
    assert managed[-1] > unmanaged[-1]
    assert redeployments >= 1

    benchmark(lambda: run_centralized(managed=True, duration=20.0))


def test_e9_decentralized_loop(benchmark):
    scenario = build_sensor_field(rows=3, cols=3, aggregators=3, seed=14)
    model = scenario.model
    clock = SimClock()
    system = DistributedSystem(model, clock, decentralized=True, seed=101)
    system.install_monitoring(ping_interval=0.5, pings_per_round=5)
    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=102).start()
    clock.run(10.0)
    framework = DecentralizedFramework(
        system, AvailabilityObjective(), bid_timeout=0.3,
        availability_goal=0.99)
    rows = []
    before = framework.ground_truth_availability()
    for report in framework.run(6):
        rows.append((report.index, report.decision, report.auctions,
                     report.moves, report.availability_after))
    workload.stop()
    after = framework.ground_truth_availability()
    print_table("E9b: decentralized rounds, sensor field (no master host)",
                ["round", "decision", "auctions", "moves", "availability"],
                rows)
    assert after >= before
    assert framework.status()["moves"] >= 1

    def one_round():
        s = build_sensor_field(rows=2, cols=2, aggregators=2, seed=15)
        c = SimClock()
        sys_ = DistributedSystem(s.model, c, decentralized=True, seed=103)
        fw = DecentralizedFramework(sys_, AvailabilityObjective(),
                                    bid_timeout=0.2)
        return fw.improvement_round()
    benchmark(one_round)
