"""E6 — Analyzer policy (Section 5.1's three selection factors).

Reproduces the analyzer's decision table:

* *size of the architecture* — Exact only for tiny systems;
* *availability profile* — expensive suite when stable, cheap when not;
* *overall latency* — availability-winning plans that blow the latency
  budget are vetoed.
"""

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, LatencyObjective,
    MemoryConstraint,
)
from repro.core.analyzer import Analyzer
from repro.desi import Generator, GeneratorConfig
from conftest import print_table


def make_analyzer(latency_guard=None, seed=70):
    return Analyzer(AvailabilityObjective(),
                    ConstraintSet([MemoryConstraint()]),
                    latency_guard=latency_guard, seed=seed)


def test_e6_selection_by_size_and_stability(benchmark):
    tiny = Generator(GeneratorConfig(hosts=3, components=6),
                     seed=71).generate()
    large = Generator(GeneratorConfig(hosts=10, components=30),
                      seed=72).generate()
    rows = []

    analyzer = make_analyzer()
    rows.append(("tiny system, no profile",
                 "+".join(analyzer.select_algorithms(tiny))))
    assert analyzer.select_algorithms(tiny) == ["exact"]

    analyzer = make_analyzer()
    for t in range(5):
        analyzer.history.record(float(t), 0.9)  # rock stable
    stable_choice = analyzer.select_algorithms(large)
    rows.append(("large system, stable profile", "+".join(stable_choice)))
    assert "exact" not in stable_choice
    assert "avala" in stable_choice and "hillclimb" in stable_choice

    analyzer = make_analyzer()
    for t, value in enumerate((0.9, 0.4, 0.8, 0.3, 0.9)):  # thrashing
        analyzer.history.record(float(t), value)
    unstable_choice = analyzer.select_algorithms(large)
    rows.append(("large system, unstable profile",
                 "+".join(unstable_choice)))
    assert unstable_choice == ["stochastic_fast"]

    print_table("E6a: analyzer algorithm selection",
                ["situation", "algorithms chosen"], rows)
    benchmark(lambda: make_analyzer().analyze(tiny))


def test_e6_latency_guard_veto_rate(benchmark):
    """Availability and latency genuinely conflict when collocation is
    memory-blocked and the choice is which link carries the traffic: a
    fast-but-flaky link (latency's pick) or a reliable-but-slow one
    (availability's pick).  The guarded analyzer vetoes the slow move;
    the unguarded one takes it (§5.1: "the analyzer either disallows the
    results of the algorithms to take effect or modifies the solution")."""
    import random as random_module

    def conflict_model(seed):
        rng = random_module.Random(seed)
        model = DeploymentModel(name=f"conflict-{seed}")
        model.add_host("anchor", memory=10.0)
        model.add_host("fast", memory=10.0)
        model.add_host("reliable", memory=10.0)
        # Fast but flaky vs slow but reliable.
        model.connect_hosts("anchor", "fast",
                            reliability=rng.uniform(0.55, 0.7),
                            bandwidth=1000.0, delay=0.001)
        model.connect_hosts("anchor", "reliable",
                            reliability=rng.uniform(0.9, 0.99),
                            bandwidth=rng.uniform(0.5, 2.0), delay=0.3)
        model.connect_hosts("fast", "reliable", reliability=0.5,
                            bandwidth=1.0, delay=0.3)
        model.add_component("x", memory=10.0)  # fills any host alone
        model.add_component("y", memory=10.0)
        model.connect_components("x", "y", frequency=5.0, evt_size=10.0)
        model.deploy("x", "anchor")
        model.deploy("y", "fast")
        return model

    guarded_redeploys = unguarded_redeploys = 0
    trials = 6
    for seed in range(trials):
        guarded = make_analyzer(latency_guard=LatencyObjective())
        guarded.guard_tolerance = 1.10
        guarded.min_improvement = 0.001
        unguarded = make_analyzer()
        unguarded.min_improvement = 0.001
        if guarded.analyze(conflict_model(80 + seed)).will_redeploy:
            guarded_redeploys += 1
        if unguarded.analyze(conflict_model(80 + seed)).will_redeploy:
            unguarded_redeploys += 1
    print_table("E6b: latency guard effect over "
                f"{trials} conflicted architectures",
                ["analyzer", "redeployments approved"],
                [("unguarded", unguarded_redeploys),
                 ("latency-guarded (10% tolerance)", guarded_redeploys)])
    # The unguarded analyzer chases the availability win every time; the
    # guard vetoes it every time.
    assert unguarded_redeploys == trials
    assert guarded_redeploys == 0

    benchmark(lambda: make_analyzer(
        latency_guard=LatencyObjective()).analyze(conflict_model(99)))


def test_e6_min_improvement_suppresses_churn(benchmark):
    """Repeated analysis of an already-improved system stops redeploying."""
    model = Generator(GeneratorConfig(hosts=3, components=6),
                      seed=73).generate()
    analyzer = make_analyzer()
    first = analyzer.analyze(model)
    if first.will_redeploy:
        for component, host in first.plan.target.items():
            model.deploy(component, host)
    second = analyzer.analyze(model)
    third = analyzer.analyze(model)
    rows = [(1, first.action), (2, second.action), (3, third.action)]
    print_table("E6c: repeated analysis cycles", ["cycle", "action"], rows)
    assert not second.will_redeploy
    assert not third.will_redeploy
    benchmark(lambda: analyzer.analyze(model))
