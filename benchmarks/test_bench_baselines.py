"""E8 — Related-work baselines (Section 2's comparison).

* I5/BIP: optimal for remote-communication volume, exponential, and
  hard-wired to that single criterion — it can leave availability on the
  table that the framework's pluggable objectives capture.
* Coign min-cut: optimal for its two-host problem class, structurally
  unable to handle more hosts.
"""

import time

import pytest

from repro.algorithms import (
    AvalaAlgorithm, BIPAlgorithm, ExactAlgorithm, MinCutAlgorithm,
)
from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
from repro.core.constraints import LocationConstraint
from repro.core.errors import AlgorithmError
from repro.core.objectives import CommunicationCostObjective
from repro.desi import Generator, GeneratorConfig
from repro.scenarios import build_client_server
from conftest import print_table, small_architectures


def test_e8_bip_vs_pluggable_objectives(availability, memory_constraints,
                                        benchmark):
    """BIP is optimal for communication volume but hard-wired to that one
    criterion: the availability its solutions achieve trails the
    availability-optimal deployment (Exact with the pluggable objective),
    strictly so in aggregate."""
    models = small_architectures(count=3, seed=8000)
    comm = CommunicationCostObjective()
    rows = []
    bip_total = optimal_total = 0.0
    for model in models:
        bip = BIPAlgorithm(memory_constraints).run(model)
        exact_comm = ExactAlgorithm(comm, memory_constraints).run(model)
        exact_avail = ExactAlgorithm(availability,
                                     memory_constraints).run(model)
        bip_availability = availability.evaluate(model, bip.deployment)
        rows.append((model.name, bip.value, exact_comm.value,
                     bip_availability, exact_avail.value))
        # BIP is exact for its criterion...
        assert bip.value == pytest.approx(exact_comm.value)
        # ...but minimizing volume is not maximizing availability.
        assert exact_avail.value >= bip_availability - 1e-9
        bip_total += bip_availability
        optimal_total += exact_avail.value
    print_table("E8a: I5/BIP criterion mismatch",
                ["architecture", "BIP comm", "optimal comm",
                 "availability of BIP solution",
                 "availability optimum"], rows)
    # Across the batch the single-criterion baseline leaves availability
    # on the table.
    assert optimal_total > bip_total
    benchmark(lambda: BIPAlgorithm(memory_constraints).run(models[0]))


def test_e8_bip_exponential_blowup(memory_constraints, benchmark):
    """BIP's branch-and-bound still explodes with size (I5's limitation)."""
    rows = []
    times = {}
    for components in (6, 8, 10):
        model = Generator(GeneratorConfig(hosts=4, components=components),
                          seed=8100).generate()
        start = time.perf_counter()
        result = BIPAlgorithm(memory_constraints).run(model)
        elapsed = time.perf_counter() - start
        times[components] = elapsed
        rows.append((components, result.extra["nodes_visited"],
                     elapsed * 1000.0))
    print_table("E8b: BIP growth (4 hosts)",
                ["components", "B&B nodes", "time (ms)"], rows)
    assert times[10] > times[6]
    model = Generator(GeneratorConfig(hosts=6, components=40),
                      seed=8101).generate()
    with pytest.raises(AlgorithmError):
        BIPAlgorithm(memory_constraints, max_space=1e6).run(model)
    small = Generator(GeneratorConfig(hosts=4, components=6),
                      seed=8100).generate()
    benchmark(lambda: BIPAlgorithm(memory_constraints).run(small))


def test_e8_mincut_optimal_but_two_hosts_only(benchmark):
    scenario = build_client_server(middle_components=10, seed=81)
    pins = ConstraintSet([
        constraint for constraint in scenario.constraints
        if isinstance(constraint, LocationConstraint)
    ])
    mincut = MinCutAlgorithm(pins).run(scenario.model)
    bip = BIPAlgorithm(pins).run(scenario.model)
    print_table("E8c: Coign min-cut vs BIP on a 2-host client-server app",
                ["algorithm", "remote comm", "time (ms)"],
                [("mincut", mincut.value, mincut.elapsed * 1000.0),
                 ("bip", bip.value, bip.elapsed * 1000.0)])
    # Both optimal on two hosts -> identical objective value; min-cut is a
    # polynomial algorithm and should not be slower by orders of magnitude.
    assert mincut.value == pytest.approx(bip.value)

    # The structural limitation: three hosts and Coign is out.
    three_host = Generator(GeneratorConfig(hosts=3, components=6),
                           seed=82).generate()
    with pytest.raises(AlgorithmError, match="two"):
        MinCutAlgorithm(ConstraintSet()).run(three_host)

    benchmark(lambda: MinCutAlgorithm(pins).run(scenario.model))
