"""E10 — Multi-objective trade-off (Section 6 future work, realized).

"we plan to devise mitigating techniques for situations where different
desired system characteristics may be conflicting".  The WeightedObjective
plus the analyzer guard are those techniques; this bench sweeps the
availability-vs-latency weight and traces the trade-off curve, plus a
security-objective column demonstrating objective pluggability beyond the
paper's two worked examples.
"""

import pytest

from repro.algorithms import HillClimbingAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, LatencyObjective,
    MemoryConstraint,
)
from repro.core.objectives import SecurityObjective, WeightedObjective
from repro.desi import Generator, GeneratorConfig
from conftest import print_table


def trade_off_model(seed=110):
    """Mixed network: some links fast-but-flaky, some reliable-but-slow."""
    import random as random_module
    rng = random_module.Random(seed)
    model = Generator(GeneratorConfig(
        hosts=6, components=16, host_memory=(25.0, 45.0),
        memory_headroom=1.3, reliability=(0.5, 0.99),
        bandwidth=(1.0, 500.0), delay=(0.001, 0.2),
        evt_size=(1.0, 20.0)), seed=seed).generate()
    # Anticorrelate reliability and speed so the objectives fight.
    for link in model.physical_links:
        reliability = link.params.get("reliability")
        speed = 1.0 - (reliability - 0.5) / 0.49  # reliable -> slow
        model.set_physical_link_param(*link.hosts, "bandwidth",
                                      1.0 + 499.0 * max(speed, 0.0))
        model.set_physical_link_param(*link.hosts, "delay",
                                      0.001 + 0.2 * (1.0 - max(speed, 0.0)))
        model.set_physical_link_param(*link.hosts, "security",
                                      rng.uniform(0.3, 1.0))
    return model


def test_e10_weight_sweep(benchmark):
    model = trade_off_model()
    availability = AvailabilityObjective()
    latency = LatencyObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    # Scale latency into availability's unit range using the initial value.
    latency_scale = max(latency.evaluate(model, model.deployment), 1e-9)

    rows = []
    availabilities = {}
    latencies = {}
    weights = (0.0, 0.25, 0.5, 0.75, 1.0)
    for weight in weights:
        combo = WeightedObjective(
            [(availability, weight), (latency, 1.0 - weight)],
            scales=[1.0, latency_scale])
        result = HillClimbingAlgorithm(combo, constraints, seed=1,
                                       max_rounds=200).run(model)
        achieved_availability = availability.evaluate(model,
                                                      result.deployment)
        achieved_latency = latency.evaluate(model, result.deployment)
        availabilities[weight] = achieved_availability
        latencies[weight] = achieved_latency
        rows.append((weight, achieved_availability, achieved_latency))
    print_table("E10: availability/latency trade-off "
                "(weight sweep, hill-climb on WeightedObjective)",
                ["availability weight", "availability", "latency"], rows)

    # Endpoint shape: the all-availability corner achieves at least the
    # availability of the all-latency corner, and vice versa for latency.
    assert availabilities[1.0] >= availabilities[0.0] - 1e-9
    assert latencies[0.0] <= latencies[1.0] + 1e-9
    # The sweep actually explores a trade-off (corners differ).
    assert availabilities[1.0] - availabilities[0.0] > 0.005 or \
        latencies[1.0] - latencies[0.0] > 1e-4

    combo = WeightedObjective([(availability, 0.5), (latency, 0.5)],
                              scales=[1.0, latency_scale])
    benchmark(lambda: HillClimbingAlgorithm(
        combo, constraints, seed=1, max_rounds=30).run(model))


def test_e10_security_objective_pluggability(benchmark):
    """A third objective (security, §3.1's example) plugs into the same
    algorithms unchanged and steers deployments onto secure links."""
    model = trade_off_model(seed=111)
    security = SecurityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    initial = security.evaluate(model, model.deployment)
    result = HillClimbingAlgorithm(security, constraints, seed=1,
                                   max_rounds=200).run(model)
    print_table("E10b: security objective",
                ["deployment", "security score"],
                [("initial", initial), ("optimized", result.value)])
    assert result.valid
    assert result.value >= initial
    benchmark(lambda: HillClimbingAlgorithm(
        security, constraints, seed=1, max_rounds=30).run(model))
