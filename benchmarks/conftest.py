"""Shared helpers for the benchmark harness.

Each ``test_bench_*`` module regenerates one table/figure from DESIGN.md's
per-experiment index (E1-E10).  Benches print the paper-style rows/series to
stdout (run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
assert the *shape* of the result — who wins, in which direction quantities
move — rather than absolute numbers, per the reproduction contract.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, LatencyObjective, MemoryConstraint,
)
from repro.desi import Generator, GeneratorConfig


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Render one paper-style table to stdout."""
    formatted = [
        [f"{cell:.4f}" if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print()
    print(f"== {title} ==")
    print("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in formatted:
        print("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))


@pytest.fixture
def availability():
    return AvailabilityObjective()


@pytest.fixture
def latency():
    return LatencyObjective()


@pytest.fixture
def memory_constraints():
    return ConstraintSet([MemoryConstraint()])


def small_architectures(count=4, seed=1000):
    """Exact-feasible architectures (4 hosts x 8 components).

    Memory is tight and link reliabilities vary widely so the algorithms
    actually separate; with abundant memory every algorithm trivially packs
    one host and scores availability 1.0.
    """
    config = GeneratorConfig(hosts=4, components=8,
                             host_memory=(10.0, 25.0),
                             memory_headroom=1.2,
                             reliability=(0.2, 0.95))
    return Generator(config, seed=seed).generate_many(count, "small")


def large_architectures(count=3, seed=2000):
    """Architectures beyond Exact's reach (10 hosts x 40 components).

    Host memory is tight (headroom 1.15, as on the paper's memory-poor
    PDAs), so deployments must spread across most hosts — the regime where
    greedy cluster-aware assignment beats random restarts.  With abundant
    memory the problem degenerates to "pick the best 2-3 hosts and pack
    them", where many-restart stochastic search can luck into the winner.
    """
    config = GeneratorConfig(hosts=10, components=40,
                             host_memory=(20.0, 50.0),
                             memory_headroom=1.15)
    return Generator(config, seed=seed).generate_many(count, "large")
