"""E-S — the batched simulation core vs the pre-optimization baseline.

Runs a churn-heavy fault campaign (crisis scenario with every
interaction frequency scaled up, random-churn plan, improvement loop
on) through two configurations of the very same codebase:

* **fast** — the shipping simulation core: tuple-heap ``SimClock`` with
  a ready deque, pooled ``post``/``defer`` primitives and inlined run
  loops, vectorized ``send_many`` with per-link batch delivery,
  connector message coalescing, route/neighbor/location caches, and
  the event wire/size fast paths;
* **legacy** — :class:`~repro.sim.clock.LegacySimClock` (the verbatim
  pre-optimization scheduler kept in-tree) plus :func:`legacy_mode`,
  which temporarily reinstates verbatim ports of every pre-optimization
  shared path this PR rewrote (per-event dispatch through
  ``clock.schedule``, monitor notification via ``notify_monitors``,
  uncached routing/neighbors/locate, per-call workload arithmetic,
  encoder-backed ``Event.size_kb``/``to_wire``, no coalescing), so the
  baseline pays the same per-message costs the seed implementation
  paid.

Equivalence before performance: both configurations must render
byte-identical :class:`ResilienceReport` JSON for every size, and the
``run_campaign(workers=N)`` suite must render byte-identically to its
serial twin, before any timing is trusted.  Timing uses
``time.process_time()`` for the throughput ratio — both configurations
saturate a single core, so CPU time tracks wall time on an idle
machine but is robust to the tens-of-percent wall jitter of shared
runners.

The size axis is message pressure: every size runs the same campaign
plan over the same simulated duration with the interaction-frequency
multiplier (``rate_scale``) as the size.  Message volume scales
linearly with it, which is the honest axis for a throughput benchmark
— and the regime where the batched core's advantages (C-level heap
tie-breaks, ready-deque zero-delay drains, pooled event objects)
compound, whereas a longer *duration* at fixed rate mostly adds
low-traffic tail after churn has killed most links.

Results go to stdout as paper-style tables and machine-readable to
``BENCH_sim.json`` in the repository root (see docs/PERFORMANCE.md).

Two modes:

* full (default): rate scales up to 200x (roughly 21M messages);
  asserts the core throughput ratio floor at the largest size.
* smoke (``BENCH_SIM_SMOKE=1``): one small rate scale for CI; asserts
  only that the fast core is not slower.

On single-core throughput: the byte-identity contract pins the entire
per-message middleware chain (emit, monitor notifications, routing,
dispatch-as-an-event, wire round-trip, delivery) — batching can only
remove scheduler/network bookkeeping *around* that chain, so the
single-process ratio climbs with message pressure but saturates well
short of the multiples a from-scratch rewrite could post.  Measured
core ratios on the reference runner: ~1.5-1.7x at rate 10 rising to
~2.0-2.3x at rates 100-200 (the batched core scales *sublinearly* in
message count as batching amortizes, while the seed scheduler scales
superlinearly with queue depth).  Aggregate campaign throughput scales further with
``workers=N`` on multi-core hardware (the suite section measures
exactly that), which is where the >= 3x aggregate figure is reachable.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.errors import (
    MiddlewareError, SerializationError, UnknownEntityError,
)
from repro.faults import generate_campaign, run_campaign
from repro.middleware.bricks import Architecture, Component
from repro.middleware.connectors import DistributionConnector
from repro.faults import report as faults_report
from repro.middleware.events import (
    ADMIN_PREFIX, EVENT_OVERHEAD_KB, REPLY, REQUEST, Event,
)
from repro.middleware.monitors import (
    EvtFrequencyMonitor, NetworkReliabilityMonitor,
)
from repro.middleware.runtime import DistributedSystem
from repro.middleware.scaffold import Scaffold, SimScaffold
from repro.obs import get_observability
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim.clock import LegacySimClock
from repro.sim.network import SimulatedNetwork
from repro.sim.workload import InteractionWorkload

from conftest import print_table

SMOKE = os.environ.get("BENCH_SIM_SMOKE", "") not in ("", "0")
#: Simulated campaign duration (seconds); fixed across sizes.
DURATION = 6.0 if SMOKE else 8.0
#: Benchmark sizes: interaction-frequency multipliers (message volume
#: scales linearly with the rate scale at fixed duration).
SIZES = [10.0] if SMOKE else [10.0, 40.0, 100.0, 200.0]
#: Core-ratio floor at the largest size.  Full-mode measurements on the
#: reference runner put the CPU-time ratio at ~2.2x there; 1.8 leaves
#: margin for runner variance while still failing loudly if a
#: regression eats the batching gains.
REQUIRED_RATIO = 1.0 if SMOKE else 1.8
SCENARIO_SEED = 3
CAMPAIGN_SEED = 5
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def churn_plan():
    built = build_crisis_scenario(CrisisConfig(seed=SCENARIO_SEED))
    return generate_campaign("random-churn", built.model,
                             duration=DURATION, seed=CAMPAIGN_SEED)


@contextmanager
def legacy_mode():
    """Reinstate the pre-optimization shared paths for a baseline run.

    Each shim is a verbatim port of the seed implementation this PR
    replaced: dispatch through ``clock.schedule(0.0, ...)`` with a
    cancellation handle per event, monitor probing via the
    ``notify_monitors`` method, routing/neighbor/location scans redone
    per message, workload rescheduling through separate methods with a
    division per event, event sizes and wire validation through the
    real JSON encoder on every call, and no connector coalescing.
    Correctness of the pairing is enforced by the caller: the legacy
    and fast configurations must render byte-identical reports.
    """
    connector_init = DistributionConnector.__init__
    neighbors = SimulatedNetwork.neighbors
    locate = DistributedSystem.locate
    size_kb = Event.size_kb
    to_wire = Event.to_wire
    event_init = Event.__init__
    is_admin = Event.is_admin
    scaffold_init = SimScaffold.__init__
    sim_dispatch = SimScaffold.dispatch
    invoke = Scaffold._invoke
    component_send = Component.send
    route_from = Architecture.route_from
    interarrival = InteractionWorkload._interarrival
    schedule_next = InteractionWorkload._schedule_next
    fire = InteractionWorkload._fire
    pause_gc = faults_report.PAUSE_GC_DURING_CAMPAIGNS
    freq_init = EvtFrequencyMonitor.__init__
    freq_notify = EvtFrequencyMonitor.notify
    freq_collect = EvtFrequencyMonitor.collect
    freq_reset = EvtFrequencyMonitor.reset
    freq_counts = EvtFrequencyMonitor.__dict__["counts"]
    freq_sizes = EvtFrequencyMonitor.__dict__["sizes"]
    rel_notify = NetworkReliabilityMonitor.notify
    run_while_pending = LegacySimClock.run_while_pending

    def uncoalesced_init(self, *args, **kwargs):
        connector_init(self, *args, **kwargs)
        self.coalesce = False

    def uncached_neighbors(self, name):
        out = []
        for (end_a, end_b), link in self._links.items():
            if not link.connected:
                continue
            if end_a == name:
                out.append(end_b)
            elif end_b == name:
                out.append(end_a)
        return tuple(sorted(out))

    def uncached_locate(self, component_id):
        for host, architecture in self.architectures.items():
            if architecture.has_component(component_id):
                return host
        raise UnknownEntityError("component", component_id)

    def encoder_size_kb(self):
        if self._size_kb is not None:
            return self._size_kb
        try:
            body = len(json.dumps(self.payload))
        except (TypeError, ValueError):
            body = 256
        return EVENT_OVERHEAD_KB + body / 1024.0

    def set_size_kb(self, value):
        self._size_kb = value

    def encoder_to_wire(self):
        try:
            json.dumps(self.payload)
        except (TypeError, ValueError) as exc:
            raise SerializationError(
                f"event {self.name!r} payload is not "
                f"JSON-serializable: {exc}") from exc
        return {
            "name": self.name,
            "payload": self.payload,
            "event_type": self.event_type,
            "source": self.source,
            "target": self.target,
            "size_kb": self._size_kb,
            "headers": self.headers,
        }

    # The seed allocated event ids through an itertools counter (event
    # ids never reach a report, so the stream needn't be shared with the
    # fast path's plain-int class counter).
    seed_ids = itertools.count(1)

    def seed_event_init(self, name, payload=None, event_type=REQUEST,
                        source=None, target=None, size_kb=None):
        if event_type not in (REQUEST, REPLY):
            raise ValueError(
                f"event_type must be request/reply, got {event_type!r}")
        self.name = name
        self.payload = dict(payload) if payload else {}
        self.event_type = event_type
        self.source = source
        self.target = target
        self._size_kb = size_kb
        self._size_cache = None
        self.headers = {}
        self.event_id = next(seed_ids)

    def seed_scaffold_init(self, clock, obs=None):
        # No lean-dispatch rebinding: every dispatch goes through the
        # class-level seed path below.
        self.clock = clock
        self.dispatched = 0
        obs = obs if obs is not None else get_observability()
        self._c_dispatched = obs.counter("middleware.scaffold.dispatched")
        self._g_queue = obs.gauge("middleware.scaffold.queue_depth")
        self._deliver = (self._observed_invoke if obs.enabled
                         else self._invoke)

    def seed_dispatch(self, brick, event):
        self.dispatched += 1
        self._c_dispatched.inc()
        self._g_queue.add(1)
        self.clock.schedule(0.0, self._deliver, brick, event)

    def seed_invoke(self, brick, event):
        brick.notify_monitors(event, "deliver")
        brick.handle(event)

    def seed_send(self, event):
        if self.architecture is None:
            raise MiddlewareError(
                f"component {self.id!r} is not part of an architecture")
        if event.source is None:
            event.source = self.id
        self.notify_monitors(event, "send")
        self.architecture.route_from(self, event)

    def seed_route_from(self, sender, event):
        touched = False
        for connector in self._connectors.values():
            if sender.id in connector.welded:
                touched = True
                self.scaffold.dispatch(connector, event)
        if not touched:
            self.route(event)

    def seed_interarrival(self, rate, first):
        if self.poisson:
            return self.rng.expovariate(rate)
        period = 1.0 / rate
        if first:
            return period * self.rng.random()
        return period

    def seed_schedule_next(self, index, first=False):
        __, __, rate, __, __period = self._streams[index]
        self.clock.schedule(self._interarrival(rate, first),
                            self._fire, index)

    def seed_fire(self, index):
        if not self._running:
            return
        source, target, __, size, __period = self._streams[index]
        self.emit(source, target, size)
        self.events_emitted += 1
        self._schedule_next(index)

    def seed_freq_init(self, clock=None):
        # Parallel counts/sizes dicts, two lookups per notification.
        self.clock = clock
        self.counts = {}
        self.sizes = {}
        self.window_started = clock.now if clock is not None else 0.0
        self.total_events = 0

    def seed_freq_notify(self, brick, event, direction):
        if direction != "send" or event.is_admin:
            return
        if event.source is None or event.target is None:
            return
        key = (event.source, event.target)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.sizes[key] = self.sizes.get(key, 0.0) + event.size_kb
        self.total_events += 1

    def seed_freq_collect(self):
        now = self.clock.now if self.clock is not None else None
        duration = (None if now is None
                    else max(now - self.window_started, 0.0))
        frequencies = {}
        avg_sizes = {}
        for key, count in self.counts.items():
            if duration:
                frequencies[key] = count / duration
            avg_sizes[key] = self.sizes[key] / count
        return {
            "kind": "evt_frequency",
            "window_start": self.window_started,
            "window_end": now,
            "counts": dict(self.counts),
            "frequencies": frequencies,
            "avg_sizes": avg_sizes,
        }

    def seed_freq_reset(self):
        self.counts.clear()
        self.sizes.clear()
        self.total_events = 0
        if self.clock is not None:
            self.window_started = self.clock.now

    def seed_rel_notify(self, brick, event, direction):
        # is_admin probed on every delivery, three header lookups
        # before the unstamped-event bailout.
        if direction != "deliver" or event.is_admin:
            return
        seq = event.headers.get("seq")
        seq_link = event.headers.get("seq_link")
        arrived_from = event.headers.get("arrived_from")
        if seq is None or seq_link is None or seq_link != arrived_from:
            return
        last = self._last_seq.get(seq_link)
        self._last_seq[seq_link] = seq
        if last is None or seq <= last:
            return
        gap = seq - last
        self.attempts[seq_link] = self.attempts.get(seq_link, 0) + gap
        self.successes[seq_link] = self.successes.get(seq_link, 0) + 1

    DistributionConnector.__init__ = uncoalesced_init
    SimulatedNetwork.neighbors = uncached_neighbors
    DistributedSystem.locate = uncached_locate
    Event.size_kb = property(encoder_size_kb, set_size_kb)
    Event.to_wire = encoder_to_wire
    Event.__init__ = seed_event_init
    Event.is_admin = property(
        lambda self: self.name.startswith(ADMIN_PREFIX))
    SimScaffold.__init__ = seed_scaffold_init
    SimScaffold.dispatch = seed_dispatch
    Scaffold._invoke = seed_invoke
    Component.send = seed_send
    Architecture.route_from = seed_route_from
    InteractionWorkload._interarrival = seed_interarrival
    InteractionWorkload._schedule_next = seed_schedule_next
    InteractionWorkload._fire = seed_fire
    # The seed ran campaigns with the cyclic collector enabled.
    faults_report.PAUSE_GC_DURING_CAMPAIGNS = False
    # Monitors: plain-attribute seed shapes (the shipping class exposes
    # counts/sizes as properties over a fused accumulator, which would
    # shadow the seed __init__'s instance assignments).
    del EvtFrequencyMonitor.counts
    del EvtFrequencyMonitor.sizes
    EvtFrequencyMonitor.__init__ = seed_freq_init
    EvtFrequencyMonitor.notify = seed_freq_notify
    EvtFrequencyMonitor.collect = seed_freq_collect
    EvtFrequencyMonitor.reset = seed_freq_reset
    NetworkReliabilityMonitor.notify = seed_rel_notify
    # Without run_while_pending the redeployment runtime falls back to
    # its duck-typed loop — the seed's per-event step()/now sequence.
    del LegacySimClock.run_while_pending
    try:
        yield
    finally:
        DistributionConnector.__init__ = connector_init
        SimulatedNetwork.neighbors = neighbors
        DistributedSystem.locate = locate
        Event.size_kb = size_kb
        Event.to_wire = to_wire
        Event.__init__ = event_init
        Event.is_admin = is_admin
        SimScaffold.__init__ = scaffold_init
        SimScaffold.dispatch = sim_dispatch
        Scaffold._invoke = invoke
        Component.send = component_send
        Architecture.route_from = route_from
        InteractionWorkload._interarrival = interarrival
        InteractionWorkload._schedule_next = schedule_next
        InteractionWorkload._fire = fire
        faults_report.PAUSE_GC_DURING_CAMPAIGNS = pause_gc
        EvtFrequencyMonitor.__init__ = freq_init
        EvtFrequencyMonitor.notify = freq_notify
        EvtFrequencyMonitor.collect = freq_collect
        EvtFrequencyMonitor.reset = freq_reset
        EvtFrequencyMonitor.counts = freq_counts
        EvtFrequencyMonitor.sizes = freq_sizes
        NetworkReliabilityMonitor.notify = rel_notify
        LegacySimClock.run_while_pending = run_while_pending


def run_once(rate_scale, clock_factory=None):
    plan = churn_plan()
    started = time.perf_counter()
    started_cpu = time.process_time()
    report = run_campaign(plan, seed=SCENARIO_SEED, scenario="crisis",
                          duration=DURATION, rate_scale=rate_scale,
                          clock_factory=clock_factory)
    wall = time.perf_counter() - started
    cpu = time.process_time() - started_cpu
    return report, wall, cpu


def bench_size(rate_scale):
    with legacy_mode():
        legacy_report, legacy_wall, legacy_cpu = run_once(
            rate_scale, clock_factory=LegacySimClock)
    fast_report, fast_wall, fast_cpu = run_once(rate_scale)
    # Equivalence before performance: byte-identical reports.
    assert fast_report.render() == legacy_report.render(), \
        f"legacy and fast reports diverge at rate scale {rate_scale}"
    messages = fast_report.events_sent + fast_report.events_received
    # The headline ratio uses CPU time: both configurations saturate a
    # single core (wall tracks CPU within a few percent when idle), but
    # shared-runner wall clocks jitter by tens of percent while
    # process_time stays within a few percent run to run.
    return {
        "rate_scale": rate_scale,
        "duration": DURATION,
        "messages": messages,
        "events_sent": fast_report.events_sent,
        "legacy_wall": legacy_wall,
        "fast_wall": fast_wall,
        "legacy_cpu": legacy_cpu,
        "fast_cpu": fast_cpu,
        "legacy_throughput": messages / legacy_cpu,
        "fast_throughput": messages / fast_cpu,
        "ratio": legacy_cpu / fast_cpu,
    }


def bench_workers(rate_scale):
    """Campaign *suites*: seed-core serial vs shipping serial vs pool.

    The aggregate ratio is the tentpole's suite-level story: the same
    (plan x seeds) suite run the only way the seed could (one campaign
    after another on the pre-optimization paths) against
    ``run_campaign(workers=N)`` on the batched core.  All three
    executions must render byte-identically before timing counts.  The
    pool speedup is wall-clock by nature; on a single-core runner it is
    ~1 and the aggregate ratio collapses to the core ratio, while every
    additional core multiplies it.
    """
    plan = churn_plan()
    seeds = [CAMPAIGN_SEED, CAMPAIGN_SEED + 1]
    with legacy_mode():
        started = time.perf_counter()
        legacy = run_campaign(plan, scenario="crisis", duration=DURATION,
                              rate_scale=rate_scale, seeds=seeds,
                              workers=1, clock_factory=LegacySimClock)
        legacy_wall = time.perf_counter() - started
    started = time.perf_counter()
    serial = run_campaign(plan, scenario="crisis", duration=DURATION,
                          rate_scale=rate_scale, seeds=seeds, workers=1)
    serial_wall = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_campaign(plan, scenario="crisis", duration=DURATION,
                            rate_scale=rate_scale, seeds=seeds, workers=2)
    parallel_wall = time.perf_counter() - started
    assert serial.render() == parallel.render(), \
        "serial and workers=2 suites diverge"
    assert legacy.render() == serial.render(), \
        "legacy and fast suites diverge"
    messages = sum(r.events_sent + r.events_received for r in serial.runs)
    return {
        "rate_scale": rate_scale,
        "duration": DURATION,
        "seeds": len(seeds),
        "messages": messages,
        "legacy_serial_wall": legacy_wall,
        "serial_wall": serial_wall,
        "parallel_wall": parallel_wall,
        "speedup": serial_wall / parallel_wall,
        "aggregate_ratio": legacy_wall / parallel_wall,
    }


def test_batched_core_beats_legacy_throughput():
    results = [bench_size(rate_scale) for rate_scale in SIZES]
    suite = bench_workers(SIZES[0])

    print_table(
        "E-S: batched simulation core vs pre-optimization baseline "
        f"(churn campaign, {DURATION:g} sim s)",
        ["rate x", "messages", "legacy cpu s", "fast cpu s",
         "legacy msg/s", "fast msg/s", "ratio"],
        [(entry["rate_scale"], entry["messages"], entry["legacy_cpu"],
          entry["fast_cpu"], entry["legacy_throughput"],
          entry["fast_throughput"], entry["ratio"])
         for entry in results])
    print_table(
        "E-S: campaign suite, legacy serial vs run_campaign(workers=N)",
        ["rate x", "seeds", "legacy serial s", "serial s", "workers=2 s",
         "pool speedup", "aggregate ratio"],
        [(suite["rate_scale"], suite["seeds"], suite["legacy_serial_wall"],
          suite["serial_wall"], suite["parallel_wall"], suite["speedup"],
          suite["aggregate_ratio"])])

    payload = {
        "benchmark": "sim-throughput",
        "mode": "smoke" if SMOKE else "full",
        "required_ratio": REQUIRED_RATIO,
        "duration": DURATION,
        "sizes": results,
        "workers": suite,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    largest = results[-1]
    assert largest["ratio"] >= REQUIRED_RATIO, (
        f"batched core only {largest['ratio']:.2f}x the legacy "
        f"throughput at rate scale {largest['rate_scale']:g} "
        f"(need >= {REQUIRED_RATIO}x)")


def test_bench_json_is_readable():
    """The artifact the CI job uploads must parse and carry the headline."""
    if not OUTPUT.exists():  # bench above writes it; ordering is file-local
        test_batched_core_beats_legacy_throughput()
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "sim-throughput"
    assert payload["sizes"], "no sizes recorded"
    for entry in payload["sizes"]:
        assert entry["ratio"] > 0
        assert entry["messages"] > 0
    assert payload["workers"]["speedup"] > 0
    assert payload["workers"]["aggregate_ratio"] > 0
