"""E2 — Algorithm complexity growth (Section 5.1's stated orders).

* Exact is O(k^n): runtime multiplies by ~k per added component, and fixing
  m components cuts the space to O(k^(n-m)).
* Stochastic is O(n^2) per iteration (one full objective evaluation over
  the interaction pairs).
* Avala is polynomial (O(n^3) stated); doubling n must not blow up runtime
  the way it does for Exact.
"""

import time

import pytest

from repro.algorithms import AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm
from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
from repro.core.constraints import fix_component
from repro.desi import Generator, GeneratorConfig
from conftest import print_table


def generate(hosts, components, seed=3000):
    return Generator(GeneratorConfig(hosts=hosts, components=components),
                     seed=seed).generate()


def timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_e2_exact_exponential_in_components(availability, memory_constraints,
                                            benchmark):
    k = 3
    rows = []
    visited = {}
    for n in (5, 6, 7, 8):
        model = generate(k, n)
        result = ExactAlgorithm(availability, memory_constraints,
                                prune=False).run(model)
        visited[n] = result.extra["visited_leaves"]
        rows.append((n, k ** n, result.extra["visited_leaves"],
                     result.elapsed * 1000.0))
    print_table("E2a: Exact growth with n (k=3 hosts)",
                ["components n", "k^n", "visited leaves", "time (ms)"],
                rows)
    # Enumerated work is exactly k^n, i.e. each added component multiplies
    # the work by k.
    for n in (5, 6, 7, 8):
        assert visited[n] == k ** n
    benchmark(lambda: ExactAlgorithm(
        availability, memory_constraints).run(generate(3, 5)))


def test_e2_fixing_components_reduces_to_k_pow_n_minus_m(
        availability, benchmark):
    """O(k^(n-m)): each pinned component divides the visited space by k."""
    k, n = 3, 7
    model = generate(k, n)
    rows = []
    baseline = None
    for m in (0, 1, 2, 3):
        constraints = ConstraintSet(
            [fix_component(c, model.deployment[c])
             for c in model.component_ids[:m]])
        result = ExactAlgorithm(availability, constraints).run(model)
        leaves = result.extra["visited_leaves"]
        if m == 0:
            baseline = leaves
        rows.append((m, k ** (n - m), leaves, result.elapsed * 1000.0))
        assert leaves == k ** (n - m)
    print_table("E2b: Exact with m fixed components (k=3, n=7)",
                ["fixed m", "k^(n-m)", "visited leaves", "time (ms)"], rows)
    assert baseline == k ** n
    benchmark(lambda: ExactAlgorithm(
        availability,
        ConstraintSet([fix_component(model.component_ids[0],
                                     model.deployment[model.component_ids[0]])
                       ])).run(model))


def test_e2_approximative_polynomial_scaling(availability,
                                             memory_constraints, benchmark):
    """Avala/Stochastic runtimes stay polynomial: growing n by 4x grows
    runtime by far less than the 4x-exponent blowup Exact would suffer."""
    rows = []
    times = {}
    for n in (10, 20, 40):
        model = generate(6, n)
        __, avala_time = timed(lambda m=model: AvalaAlgorithm(
            availability, memory_constraints, seed=1).run(m))
        __, stochastic_time = timed(lambda m=model: StochasticAlgorithm(
            availability, memory_constraints, seed=1, iterations=20).run(m))
        times[n] = (avala_time, stochastic_time)
        rows.append((n, avala_time * 1000.0, stochastic_time * 1000.0))
    print_table("E2c: approximative algorithm scaling (6 hosts)",
                ["components n", "avala (ms)", "stochastic (ms)"], rows)
    # 4x the components: allow generous polynomial growth (<= ~n^4), but
    # nothing like the k^30 factor exact would need.
    assert times[40][0] < times[10][0] * 256
    assert times[40][1] < times[10][1] * 256
    benchmark(lambda: AvalaAlgorithm(
        availability, memory_constraints, seed=1).run(generate(6, 20)))


def test_e2_stochastic_cost_linear_in_iterations(availability,
                                                 memory_constraints,
                                                 benchmark):
    model = generate(5, 15)
    __, t10 = timed(lambda: StochasticAlgorithm(
        availability, memory_constraints, seed=1, iterations=10).run(model))
    __, t80 = timed(lambda: StochasticAlgorithm(
        availability, memory_constraints, seed=1, iterations=80).run(model))
    print_table("E2d: Stochastic cost vs iterations (5 hosts x 15)",
                ["iterations", "time (ms)"],
                [(10, t10 * 1000.0), (80, t80 * 1000.0)])
    assert t80 > t10 * 2  # clearly grows with iterations
    assert t80 < t10 * 40  # but only linearly-ish, not worse
    benchmark(lambda: StochasticAlgorithm(
        availability, memory_constraints, seed=1, iterations=10).run(model))
