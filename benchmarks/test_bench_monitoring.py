"""E3 — Monitoring overhead (Section 4.3).

"Our assessment of Prism-MW's monitoring support suggests that monitoring on
each host may induce as little as 0.1% and no greater than 10% in memory and
efficiency overheads."

We measure both dimensions on the crisis scenario running over the
middleware:

* *efficiency*: wall-clock time to push the same simulated workload through
  the system with monitors attached vs. without;
* *traffic*: the share of network kilobytes attributable to monitoring
  (pings + report events) — the distributed-system analogue of memory
  overhead, since both are proportional to the monitoring state carried.
"""

import time

import pytest

from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import InteractionWorkload, SimClock
from conftest import print_table


def run_workload(monitored: bool, duration: float = 60.0, seed: int = 50):
    scenario = build_crisis_scenario(CrisisConfig(
        commanders=2, troops_per_commander=3, seed=9))
    model = scenario.model
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host=scenario.hq,
                               seed=seed)
    if monitored:
        system.install_monitoring(ping_interval=1.0, pings_per_round=5,
                                  report_interval=5.0)
    workload = InteractionWorkload(model, clock, system.emit,
                                   seed=seed + 1).start()
    start = time.perf_counter()
    clock.run(duration)
    wall = time.perf_counter() - start
    workload.stop()
    events = workload.events_emitted
    kb_total = system.network.stats.kb_sent
    return {
        "wall": wall,
        "events": events,
        "kb_total": kb_total,
        "throughput": events / wall,
    }


def test_e3_monitoring_overhead(benchmark):
    baseline = run_workload(monitored=False)
    monitored = run_workload(monitored=True)
    # Re-run baseline and take the best-of-2 to damp wall-clock noise.
    baseline2 = run_workload(monitored=False)
    baseline_wall = min(baseline["wall"], baseline2["wall"])

    efficiency_overhead = (monitored["wall"] - baseline_wall) / baseline_wall
    traffic_overhead = (
        (monitored["kb_total"] - baseline["kb_total"])
        / monitored["kb_total"])

    print_table(
        "E3: monitoring overhead (crisis scenario, 60 simulated s)",
        ["configuration", "wall (s)", "events", "network KB"],
        [("unmonitored", baseline_wall, baseline["events"],
          baseline["kb_total"]),
         ("monitored", monitored["wall"], monitored["events"],
          monitored["kb_total"])])
    print(f"  efficiency overhead: {efficiency_overhead * 100:.1f}% "
          f"(paper: 0.1%..10%)")
    print(f"  monitoring traffic share: {traffic_overhead * 100:.1f}%")

    # Same application work happened in both runs.
    assert monitored["events"] == baseline["events"]
    # The overhead is bounded: the paper claims <= 10% on real hardware; we
    # allow headroom for simulation bookkeeping and wall-clock noise but a
    # blow-up (2x) would falsify the lightweight-monitoring claim.
    assert efficiency_overhead < 1.0
    # Monitoring traffic exists but does not dominate the application's.
    assert 0.0 < traffic_overhead < 0.5

    benchmark(lambda: run_workload(monitored=True, duration=10.0))


def test_e3_overhead_scales_with_ping_rate(benchmark):
    """More aggressive probing costs proportionally more traffic —
    the 'adjustable duration' knob of Section 4.3."""
    def traffic(pings_per_round):
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=2, troops_per_commander=2, seed=9))
        clock = SimClock()
        system = DistributedSystem(scenario.model, clock,
                                   master_host=scenario.hq, seed=51)
        system.install_monitoring(ping_interval=1.0,
                                  pings_per_round=pings_per_round)
        clock.run(30.0)
        return system.network.stats.kb_sent

    light = traffic(1)
    heavy = traffic(20)
    print_table("E3b: monitoring traffic vs probe rate (30 simulated s)",
                ["pings/round", "network KB"],
                [(1, light), (20, heavy)])
    assert heavy > light * 5
    benchmark(lambda: traffic(1))
