"""E-P — packed wave schedules vs the naive all-at-once estimate.

Builds a hub-and-spoke migration bottleneck: every component sits on a
source host and must reach one target host, connected by a single
direct link plus several two-hop relay paths whose legs are individually
slower than the direct link.  In isolation the direct link wins for
every transfer, so the naive schedule (:func:`repro.plan.naive_schedule`
— each move on its isolation-best route, duration computed *with*
contention) piles the whole migration onto one link.  The planner's wave
packer prices that contention and spreads transfers across the relay
paths, so its predicted makespan drops by roughly the ratio of aggregate
route capacity to direct-link capacity.

Both schedules move the identical component set to the identical target
(asserted before any timing is trusted), and both makespans come from
the same contention model (:func:`repro.plan.predict_wave_eta` is the
lint-grade recomputation of what the packer records).  Results go to
stdout as paper-style tables and machine-readable to ``BENCH_plan.json``
in the repository root (see docs/PLANNING.md).

Two modes:

* full (default): up to the 10 hosts x 40 components bench size; asserts
  the packed makespan is >= 2x better than naive at the largest size.
* smoke (``BENCH_PLAN_SMOKE=1``): one tiny size for CI; asserts only
  that packing is no worse than naive.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

from repro.core.model import DeploymentModel
from repro.plan import MigrationPlanner, naive_schedule

from conftest import print_table

SMOKE = os.environ.get("BENCH_PLAN_SMOKE", "") not in ("", "0")
#: (relay hosts, components); total hosts = relays + source + target.
SIZES = [(2, 8)] if SMOKE else [(4, 20), (8, 40)]
REQUIRED_RATIO = 1.0 if SMOKE else 2.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

DIRECT_BW = 100.0
RELAY_BW = 60.0


def build_case(relays, components, seed):
    """Source, target, *relays* relay hosts; all components migrate
    source -> target."""
    model = DeploymentModel()
    model.add_host("src", memory=10000.0)
    model.add_host("dst", memory=10000.0)
    model.connect_hosts("src", "dst", reliability=1.0, bandwidth=DIRECT_BW,
                        delay=0.001)
    for index in range(relays):
        relay = f"relay{index}"
        model.add_host(relay, memory=10000.0)
        model.connect_hosts("src", relay, reliability=1.0,
                            bandwidth=RELAY_BW, delay=0.001)
        model.connect_hosts(relay, "dst", reliability=1.0,
                            bandwidth=RELAY_BW, delay=0.001)
    rng = random.Random(seed)
    target = {}
    for index in range(components):
        component = f"c{index:02d}"
        model.add_component(component, memory=rng.uniform(2.0, 10.0))
        model.deploy(component, "src")
        target[component] = "dst"
    return model, target


def bench_size(relays, components, seed):
    model, target = build_case(relays, components, seed)
    naive = naive_schedule(model, target)
    packed = MigrationPlanner(model, max_wave_moves=None).schedule(target)
    waved = MigrationPlanner(model, max_wave_moves=8).schedule(target)
    # Equivalence before performance: every schedule moves the same
    # components to the same places.
    for schedule in (packed, waved):
        assert schedule.final_state() == naive.final_state(), \
            "schedules disagree on the final deployment"
        assert abs(schedule.total_kb - naive.total_kb) < 1e-6, \
            "schedules disagree on migration volume"
    return {
        "hosts": relays + 2,
        "components": components,
        "total_kb": naive.total_kb,
        "naive_makespan": naive.makespan,
        "packed_makespan": packed.makespan,
        "waved_makespan": waved.makespan,
        "waves": len(waved.waves),
        "ratio": naive.makespan / packed.makespan,
    }


def test_packed_schedule_beats_naive_makespan():
    results = [bench_size(relays, components, seed=70 + index)
               for index, (relays, components) in enumerate(SIZES)]

    print_table(
        "E-P: packed wave schedule vs naive all-at-once prediction",
        ["hosts", "components", "KB", "naive s", "packed s",
         "waved s (8/wave)", "ratio"],
        [(entry["hosts"], entry["components"], entry["total_kb"],
          entry["naive_makespan"], entry["packed_makespan"],
          entry["waved_makespan"], entry["ratio"])
         for entry in results])

    payload = {
        "benchmark": "plan-makespan",
        "mode": "smoke" if SMOKE else "full",
        "required_ratio": REQUIRED_RATIO,
        "sizes": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    largest = results[-1]
    assert largest["ratio"] >= REQUIRED_RATIO, (
        f"packed makespan only {largest['ratio']:.2f}x better than naive "
        f"at {largest['hosts']}x{largest['components']} "
        f"(need >= {REQUIRED_RATIO}x)")


def test_bench_json_is_readable():
    """The artifact the CI job uploads must parse and carry the headline."""
    if not OUTPUT.exists():  # bench above writes it; ordering is file-local
        test_packed_schedule_beats_naive_makespan()
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "plan-makespan"
    assert payload["sizes"], "no sizes recorded"
    for entry in payload["sizes"]:
        assert entry["ratio"] > 0
        assert entry["packed_makespan"] <= entry["naive_makespan"]
