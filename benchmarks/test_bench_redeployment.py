"""E7 — Cost of effecting a redeployment (Section 4.3's protocol).

Live migration over the middleware: transferred kilobytes grow linearly
with the number (and size) of moved components, simulated migration time is
bounded by link characteristics, and buffered application events survive
the move.  Also exercises the Deployer-mediated path between hosts that
share no direct link.
"""

import pytest

from repro.core import DeploymentModel
from repro.middleware import DistributedSystem
from repro.sim import SimClock
from conftest import print_table


def star_model(leaves=4, components=8, component_memory=25.0):
    """hub + leaves; components start scattered on the leaves."""
    model = DeploymentModel()
    model.add_host("hub", memory=10_000.0)
    for index in range(leaves):
        model.add_host(f"leaf{index}", memory=500.0)
        model.connect_hosts("hub", f"leaf{index}", reliability=1.0,
                            bandwidth=100.0, delay=0.01)
    for index in range(components):
        model.add_component(f"c{index}", memory=component_memory)
        model.deploy(f"c{index}", f"leaf{index % leaves}")
    for index in range(components - 1):
        model.connect_components(f"c{index}", f"c{index + 1}", frequency=1.0)
    return model


def test_e7_cost_scales_with_moved_components(benchmark):
    rows = []
    kb_per_count = {}
    for moves in (1, 2, 4, 8):
        model = star_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hub", seed=90)
        target = dict(model.deployment)
        for index in range(moves):
            target[f"c{index}"] = "hub"
        stats = system.redeploy(target)
        kb_per_count[moves] = stats["kb_transferred"]
        rows.append((moves, stats["kb_transferred"],
                     stats["sim_duration"]))
    print_table("E7a: migration cost vs moved components "
                "(25 KB components, 100 KB/s links)",
                ["components moved", "KB transferred", "sim time (s)"],
                rows)
    # Roughly linear in component count: 8 moves cost ~8x one move's
    # payload (control traffic adds a sublinear overhead).
    assert kb_per_count[8] > 6 * kb_per_count[1] * 0.8
    assert kb_per_count[2] > kb_per_count[1]

    def one_move():
        model = star_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hub", seed=90)
        target = dict(model.deployment)
        target["c0"] = "hub"
        return system.redeploy(target)
    benchmark(one_move)


def test_e7_cost_scales_with_component_size(benchmark):
    rows = []
    times = {}
    for size in (10.0, 100.0, 400.0):
        model = star_model(component_memory=size)
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hub", seed=91)
        target = dict(model.deployment)
        target["c0"] = "hub"
        stats = system.redeploy(target)
        times[size] = stats["sim_duration"]
        rows.append((size, stats["kb_transferred"], stats["sim_duration"]))
    print_table("E7b: migration cost vs component size (one move)",
                ["component KB", "KB transferred", "sim time (s)"], rows)
    # A 40x bigger component takes decisively longer to ship.
    assert times[400.0] > times[10.0] * 5

    benchmark(lambda: star_model(component_memory=100.0))


def test_e7_mediated_migration_costs_two_hops(benchmark):
    """Moving between unlinked leaves relays via the hub: double payload on
    the wire, roughly double the time of a direct hop."""
    def migrate(direct: bool):
        model = DeploymentModel()
        model.add_host("hub", memory=1000.0)
        model.add_host("a", memory=1000.0)
        model.add_host("b", memory=1000.0)
        model.connect_hosts("hub", "a", bandwidth=100.0, delay=0.01)
        model.connect_hosts("hub", "b", bandwidth=100.0, delay=0.01)
        if direct:
            model.connect_hosts("a", "b", bandwidth=100.0, delay=0.01)
        model.add_component("x", memory=50.0)
        model.deploy("x", "a")
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hub", seed=92)
        return system.redeploy({"x": "b"})

    direct = migrate(direct=True)
    mediated = migrate(direct=False)
    print_table("E7c: direct vs Deployer-mediated migration (50 KB payload)",
                ["path", "KB transferred", "sim time (s)"],
                [("direct link", direct["kb_transferred"],
                  direct["sim_duration"]),
                 ("mediated via hub", mediated["kb_transferred"],
                  mediated["sim_duration"])])
    assert mediated["kb_transferred"] > direct["kb_transferred"] * 1.5
    assert mediated["sim_duration"] > direct["sim_duration"]

    benchmark(lambda: migrate(direct=True))
