"""E-S — incremental search engine vs the pre-rewire scan loop.

Replays full steepest-ascent trajectories (hill-climb rounds, and
swap-search rounds with the pairwise-exchange neighborhood) two ways:

* **legacy**: the scan loop the algorithms used before the rewire — every
  round re-probes all C x H moves through ``ConstraintSet.allows`` (object
  path, O(C) per probe) and re-scores them through ``engine.move_delta``
  (string-keyed, O(C) re-encode per call);
* **incremental**: :class:`repro.algorithms.search.SearchState` — compiled
  O(1) constraint checks, cached move deltas with dirty-move invalidation,
  and the indexed delta entry point.

Both sides follow the identical canonical selection rule, and the bench
*asserts the trajectories are move-for-move identical* before trusting any
timing: the speedup is real only if the answers are the same.  Results go
to stdout as paper-style tables and machine-readable to
``BENCH_search.json`` in the repository root (see docs/PERFORMANCE.md).

Two modes:

* full (default): sizes up to 10 hosts x 40 components; asserts the
  incremental engine reaches >= 5x aggregate (geomean over hill-climb and
  swap rounds) at the largest size.
* smoke (``BENCH_SEARCH_SMOKE=1``): one tiny size for CI; asserts only
  that the incremental engine is no slower.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.algorithms.base import random_valid_deployment
from repro.algorithms.engine import EvaluationEngine
from repro.algorithms.search import SearchState
from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, LocationConstraint,
    MemoryConstraint,
)
from repro.core.objectives import AvailabilityObjective
from repro.desi.generator import Generator, GeneratorConfig
from conftest import print_table

SMOKE = os.environ.get("BENCH_SEARCH_SMOKE", "") not in ("", "0")
SIZES = [(4, 10)] if SMOKE else [(6, 20), (10, 40)]
#: Required aggregate (geomean over the two neighborhoods) speedup at the
#: largest size.
REQUIRED_SPEEDUP = 1.0 if SMOKE else 5.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"
MAX_ROUNDS = 1000


def build_case(hosts, components, seed):
    config = GeneratorConfig(hosts=hosts, components=components,
                             host_memory=(20.0, 50.0),
                             memory_headroom=1.3,
                             reliability=(0.2, 0.95))
    model = Generator(config, seed=seed).generate(
        f"bench-search-{hosts}x{components}")
    comps = model.component_ids
    constraints = ConstraintSet([
        MemoryConstraint(),
        LocationConstraint(comps[0], forbidden=[model.host_ids[0]]),
        CollocationConstraint([comps[1], comps[2]], together=True),
        CollocationConstraint([comps[3], comps[4]], together=False),
    ])
    initial = random_valid_deployment(model, constraints,
                                      random.Random(seed * 13 + 1))
    assert initial is not None, "bench seed must start valid"
    return model, constraints, initial


# ---------------------------------------------------------------------------
# The two implementations of the same trajectory
# ---------------------------------------------------------------------------

def legacy_hillclimb(model, constraints, objective, initial):
    """The pre-rewire hill-climb round: full scan, object-path probes."""
    engine = EvaluationEngine(objective, constraints)
    assignment = dict(initial)
    moves = []
    for __ in range(MAX_ROUNDS):
        best_delta = 0.0
        best_move = None
        for component in model.component_ids:
            current_host = assignment[component]
            for host in model.host_ids:
                if host == current_host:
                    continue
                if not constraints.allows(model, assignment, component,
                                          host):
                    continue
                delta = engine.move_delta(model, assignment, component, host)
                gain = delta if objective.direction == "max" else -delta
                if gain > best_delta + 1e-12:
                    best_delta = gain
                    best_move = (component, host)
        if best_move is None:
            break
        assignment[best_move[0]] = best_move[1]
        moves.append(best_move)
    return assignment, moves


def incremental_hillclimb(model, constraints, objective, initial):
    engine = EvaluationEngine(objective, constraints)
    state = SearchState(model, constraints, engine, objective, initial)
    for __ in range(MAX_ROUNDS):
        step = state.best_move()
        if step is None:
            break
        state.apply(step[0], step[1])
    return state.mapping, list(state.moves)


def legacy_swapsearch(model, constraints, objective, initial):
    """The pre-rewire swap-search round: moves + pairwise swaps, object
    path throughout (dict rebuilds per swap-feasibility probe)."""
    engine = EvaluationEngine(objective, constraints)
    assignment = dict(initial)
    components = model.component_ids
    hosts = model.host_ids
    log = []

    def gain_of(delta):
        return delta if objective.direction == "max" else -delta

    for __ in range(MAX_ROUNDS):
        best_gain = 1e-12
        best_action = None
        for component in components:
            for host in hosts:
                if host == assignment[component]:
                    continue
                if not constraints.allows(model, assignment, component,
                                          host):
                    continue
                gain = gain_of(engine.move_delta(model, assignment,
                                                 component, host))
                if gain > best_gain:
                    best_gain = gain
                    best_action = ("move", component, host)
        for i, comp_a in enumerate(components):
            for comp_b in components[i + 1:]:
                if assignment[comp_a] == assignment[comp_b]:
                    continue
                host_a, host_b = assignment[comp_a], assignment[comp_b]
                without_b = {c: h for c, h in assignment.items()
                             if c != comp_b}
                if not constraints.allows(model, without_b, comp_a, host_b):
                    continue
                trial = dict(assignment)
                trial[comp_a] = host_b
                trial[comp_b] = host_a
                if not constraints.is_satisfied_partial(model, trial):
                    continue
                first = engine.move_delta(model, assignment, comp_a, host_b)
                assignment[comp_a] = host_b
                second = engine.move_delta(model, assignment, comp_b, host_a)
                assignment[comp_a] = host_a
                gain = gain_of(first + second)
                if gain > best_gain:
                    best_gain = gain
                    best_action = ("swap", comp_a, comp_b)
        if best_action is None:
            break
        if best_action[0] == "move":
            __kind, component, host = best_action
            assignment[component] = host
            log.append((component, host))
        else:
            __kind, comp_a, comp_b = best_action
            assignment[comp_a], assignment[comp_b] = \
                assignment[comp_b], assignment[comp_a]
            log.append((comp_a, assignment[comp_a]))
            log.append((comp_b, assignment[comp_b]))
    return assignment, log


def incremental_swapsearch(model, constraints, objective, initial):
    engine = EvaluationEngine(objective, constraints)
    state = SearchState(model, constraints, engine, objective, initial)
    indices = [state.component_index(c) for c in model.component_ids]
    array = state.array

    def gain_of(delta):
        return delta if objective.direction == "max" else -delta

    for __ in range(MAX_ROUNDS):
        best_gain = 1e-12
        best_action = None
        step = state.best_move()
        if step is not None:
            best_gain = gain_of(step[2])
            best_action = ("move", step[0], step[1])
        for i, ca in enumerate(indices):
            for cb in indices[i + 1:]:
                if array[ca] == array[cb]:
                    continue
                if not state.swap_allowed(ca, cb):
                    continue
                gain = gain_of(state.swap_delta(ca, cb))
                if gain > best_gain:
                    best_gain = gain
                    best_action = ("swap", ca, cb)
        if best_action is None:
            break
        if best_action[0] == "move":
            state.apply(best_action[1], best_action[2])
        else:
            state.apply_swap(best_action[1], best_action[2])
    return state.mapping, list(state.moves)


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def best_time(fn, repeats):
    """Minimum wall time of *repeats* runs (first result returned)."""
    result = fn()
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_neighborhood(name, legacy, incremental, case, repeats):
    model, constraints, initial = case
    objective = AvailabilityObjective()
    legacy_result, legacy_t = best_time(
        lambda: legacy(model, constraints, objective, initial), repeats)
    fast_result, fast_t = best_time(
        lambda: incremental(model, constraints, objective, initial), repeats)
    # Equivalence before performance: same final assignment, same moves.
    assert fast_result[0] == legacy_result[0], f"{name}: assignments differ"
    assert fast_result[1] == legacy_result[1], f"{name}: move logs differ"
    return {
        "neighborhood": name,
        "moves_in_trajectory": len(legacy_result[1]),
        "legacy_seconds": legacy_t,
        "incremental_seconds": fast_t,
        "speedup": legacy_t / fast_t,
    }


def bench_size(hosts, components, seed):
    case = build_case(hosts, components, seed)
    repeats = 1 if (hosts * components >= 400 and not SMOKE) else 2
    rounds = {}
    for name, legacy, incremental in (
            ("hillclimb-rounds", legacy_hillclimb, incremental_hillclimb),
            ("swap-rounds", legacy_swapsearch, incremental_swapsearch)):
        rounds[name] = bench_neighborhood(name, legacy, incremental, case,
                                          repeats)
    speedups = [entry["speedup"] for entry in rounds.values()]
    aggregate = 1.0
    for value in speedups:
        aggregate *= value
    aggregate **= 1.0 / len(speedups)
    return {
        "hosts": hosts,
        "components": components,
        "neighborhoods": rounds,
        "aggregate_speedup": aggregate,
    }


def test_incremental_search_beats_scan_loop():
    results = [bench_size(hosts, components, seed=40 + index)
               for index, (hosts, components) in enumerate(SIZES)]

    for entry in results:
        rows = [(data["neighborhood"], data["moves_in_trajectory"],
                 data["legacy_seconds"], data["incremental_seconds"],
                 data["speedup"])
                for data in entry["neighborhoods"].values()]
        print_table(
            f"E-S: incremental search vs scan loop "
            f"({entry['hosts']} hosts x {entry['components']} components)",
            ["neighborhood", "moves", "legacy s", "incremental s",
             "speedup"], rows)

    payload = {
        "benchmark": "incremental-search",
        "mode": "smoke" if SMOKE else "full",
        "required_speedup": REQUIRED_SPEEDUP,
        "sizes": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    largest = results[-1]
    assert largest["aggregate_speedup"] >= REQUIRED_SPEEDUP, (
        f"incremental search only "
        f"{largest['aggregate_speedup']:.2f}x the scan loop at "
        f"{largest['hosts']}x{largest['components']} "
        f"(need >= {REQUIRED_SPEEDUP}x)")


def test_bench_json_is_readable():
    """The artifact the CI job uploads must parse and carry the headline."""
    if not OUTPUT.exists():  # bench above writes it; ordering is file-local
        test_incremental_search_beats_scan_loop()
    payload = json.loads(OUTPUT.read_text())
    assert payload["benchmark"] == "incremental-search"
    assert payload["sizes"], "no sizes recorded"
    for entry in payload["sizes"]:
        assert entry["aggregate_speedup"] > 0
        for data in entry["neighborhoods"].values():
            assert data["speedup"] > 0
