"""E1 — Algorithm suite comparison (Section 5.1's three centralized
algorithms, plus the extension suite, on DeSi-generated architectures).

Reproduces the shape of the companion report's comparison table: on
exact-feasible systems, Exact finds the optimum, Avala lands close behind,
Stochastic (with modest iterations) trails, and everything beats the random
initial deployment.  On large systems Exact is inapplicable and the
approximative algorithms' ordering persists.
"""

import statistics

import pytest

from repro.algorithms import (
    AvalaAlgorithm, ExactAlgorithm, GeneticAlgorithm, HillClimbingAlgorithm,
    SimulatedAnnealingAlgorithm, StochasticAlgorithm,
)
from conftest import large_architectures, print_table, small_architectures


def run_suite(models, availability, constraints, include_exact):
    factories = {
        "initial": None,
        "stochastic": lambda: StochasticAlgorithm(
            availability, constraints, seed=1, iterations=30),
        "avala": lambda: AvalaAlgorithm(availability, constraints, seed=1),
        "hillclimb": lambda: HillClimbingAlgorithm(
            availability, constraints, seed=1),
        "annealing": lambda: SimulatedAnnealingAlgorithm(
            availability, constraints, seed=1, steps=3000),
        "genetic": lambda: GeneticAlgorithm(
            availability, constraints, seed=1, population_size=24,
            generations=25),
    }
    if include_exact:
        factories["exact"] = lambda: ExactAlgorithm(availability, constraints)
    table = {}
    for name, factory in factories.items():
        values, elapsed, moves = [], [], []
        for model in models:
            if factory is None:
                values.append(availability.evaluate(model, model.deployment))
                elapsed.append(0.0)
                moves.append(0)
                continue
            result = factory().run(model)
            assert result.valid, f"{name} invalid on {model.name}"
            values.append(result.value)
            elapsed.append(result.elapsed)
            moves.append(result.moves_from_initial)
        table[name] = {
            "availability": statistics.mean(values),
            "time_ms": statistics.mean(elapsed) * 1000.0,
            "moves": statistics.mean(moves),
        }
    return table


def test_e1_small_systems(availability, memory_constraints, benchmark):
    models = small_architectures(count=4)
    table = run_suite(models, availability, memory_constraints,
                      include_exact=True)
    print_table(
        "E1a: availability by algorithm (4 hosts x 8 components, mean of 4)",
        ["algorithm", "availability", "time (ms)", "moves"],
        [(name, row["availability"], row["time_ms"], row["moves"])
         for name, row in sorted(table.items(),
                                 key=lambda kv: -kv[1]["availability"])])
    # Paper shape: Exact optimal, Avala close, everything beats initial.
    assert table["exact"]["availability"] >= \
        table["avala"]["availability"] - 1e-9
    assert table["exact"]["availability"] >= \
        table["stochastic"]["availability"] - 1e-9
    assert table["avala"]["availability"] >= \
        table["initial"]["availability"]
    assert table["stochastic"]["availability"] >= \
        table["initial"]["availability"]
    # Avala within 10% of optimal (the companion report's headline).
    assert table["avala"]["availability"] >= \
        table["exact"]["availability"] - 0.10
    # Exact is orders of magnitude slower than the approximative suite.
    assert table["exact"]["time_ms"] > 10 * table["avala"]["time_ms"]

    benchmark(lambda: AvalaAlgorithm(availability, memory_constraints,
                                     seed=1).run(models[0]))


def test_e1_large_systems(availability, memory_constraints, benchmark):
    models = large_architectures(count=3)
    table = run_suite(models, availability, memory_constraints,
                      include_exact=False)
    print_table(
        "E1b: availability by algorithm (10 hosts x 40 components, mean of 3)",
        ["algorithm", "availability", "time (ms)", "moves"],
        [(name, row["availability"], row["time_ms"], row["moves"])
         for name, row in sorted(table.items(),
                                 key=lambda kv: -kv[1]["availability"])])
    assert table["avala"]["availability"] > table["initial"]["availability"]
    assert table["stochastic"]["availability"] > \
        table["initial"]["availability"]
    # Greedy beats blind random restarts at scale under memory pressure —
    # the Avala claim — despite stochastic spending ~6x its runtime here.
    assert table["avala"]["availability"] >= \
        table["stochastic"]["availability"]
    assert table["avala"]["time_ms"] < table["stochastic"]["time_ms"]

    benchmark(lambda: AvalaAlgorithm(availability, memory_constraints,
                                     seed=1).run(models[0]))


def test_e1_portfolio_evaluation_savings(availability, memory_constraints,
                                         benchmark):
    """E1c — the memoized portfolio engine pays for measurably fewer full
    ``Objective.evaluate`` calls than the sequential seed path.

    Three accountings of the same three-algorithm suite:

    * *logical* — evaluations the algorithms request (the seed path paid one
      full evaluation for each of these);
    * *isolated* — full evaluations with one private engine per algorithm
      (delta fast path + per-run memo, no sharing);
    * *portfolio* — full evaluations with the engines sharing one
      :class:`DeploymentCache` across the portfolio.
    """
    from repro.algorithms.engine import PortfolioRunner

    model = large_architectures(count=1)[0]
    factories = {
        "stochastic": lambda: StochasticAlgorithm(
            availability, memory_constraints, seed=1, iterations=30),
        "avala": lambda: AvalaAlgorithm(availability, memory_constraints,
                                        seed=1),
        "hillclimb": lambda: HillClimbingAlgorithm(
            availability, memory_constraints, seed=1),
    }

    isolated = {name: factory().run(model.copy())
                for name, factory in factories.items()}
    logical = sum(r.evaluations for r in isolated.values())
    isolated_full = sum(r.extra["engine"]["full_evaluations"]
                        for r in isolated.values())

    runner = PortfolioRunner(parallel=False)
    report = runner.run(model.copy(), factories)
    counters = report.counters()

    print_table(
        "E1c: full Objective.evaluate calls by accounting (10x40 system)",
        ["accounting", "full evaluations"],
        [("logical (seed path)", logical),
         ("isolated engines", isolated_full),
         ("shared-cache portfolio", counters["full_evaluations"])])

    assert set(report.succeeded) == set(factories)
    # Memoization + delta fast path beat the pay-full-price seed path...
    assert counters["full_evaluations"] < logical
    assert isolated_full < logical
    # ...and sharing the cache across the portfolio saves further.
    assert counters["full_evaluations"] <= isolated_full
    assert counters["cache_hits"] > 0
    # The portfolio decision is identical to the sequential seed path's.
    for name, result in isolated.items():
        assert report.outcome(name).result.value == \
            pytest.approx(result.value)

    benchmark(lambda: PortfolioRunner(parallel=False).run(
        model.copy(), factories))


def test_e1_exact_infeasible_at_scale(availability, memory_constraints,
                                      benchmark):
    """Exact aborts on large architectures — its O(k^n) guard trips."""
    from repro.core.errors import AlgorithmError
    model = large_architectures(count=1)[0]
    with pytest.raises(AlgorithmError):
        ExactAlgorithm(availability, memory_constraints).run(model)
    benchmark(lambda: StochasticAlgorithm(
        availability, memory_constraints, seed=1, iterations=5).run(model))
