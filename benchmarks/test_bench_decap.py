"""E5 — DecAp: decentralized availability improvement vs awareness (§5.2).

The paper's decentralized claim: the auction-based DecAp "significantly
improves the system's overall availability" using only locally-maintained
information, and (from the companion report [10]) solution quality grows
with each host's awareness of the system, approaching the centralized
algorithms at full awareness.

The bench sweeps the awareness fraction from connectivity-only to full and
compares against the initial deployment, the centralized Avala, and a
hill-climb-refined upper reference.
"""

import statistics

import pytest

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, HillClimbingAlgorithm,
)
from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
from repro.decentralized import from_connectivity, random_awareness
from repro.desi import Generator, GeneratorConfig
from conftest import print_table


def sparse_architectures(count=4, seed=4000):
    """Sparse, unreliable networks — the decentralized habitat."""
    config = GeneratorConfig(hosts=8, components=20,
                             physical_density=0.35,
                             reliability=(0.2, 0.95),
                             host_memory=(40.0, 80.0),
                             memory_headroom=1.4)
    return Generator(config, seed=seed).generate_many(count, "sparse")


def test_e5_awareness_sweep(availability, memory_constraints, benchmark):
    models = sparse_architectures()
    fractions = (None, 0.4, 0.6, 0.8, 1.0)  # None = connectivity-derived
    sweep = {}
    for fraction in fractions:
        values = []
        for index, model in enumerate(models):
            if fraction is None:
                awareness = from_connectivity(model).as_map()
                label = "connectivity"
            else:
                awareness = random_awareness(model, fraction,
                                             seed=index).as_map()
                label = f"{fraction:.1f}"
            result = DecApAlgorithm(availability, memory_constraints,
                                    seed=1, awareness=awareness,
                                    max_rounds=15).run(model)
            values.append(result.value)
        sweep[label] = statistics.mean(values)

    initial = statistics.mean(
        availability.evaluate(m, m.deployment) for m in models)
    avala = statistics.mean(
        AvalaAlgorithm(availability, memory_constraints, seed=1).run(m).value
        for m in models)
    refined = statistics.mean(
        HillClimbingAlgorithm(availability, memory_constraints,
                              seed=1).run(m).value
        for m in models)

    rows = [("initial (random)", initial)]
    rows += [(f"DecAp awareness={label}", value)
             for label, value in sweep.items()]
    rows += [("Avala (centralized)", avala),
             ("hill-climb (centralized)", refined)]
    print_table("E5: availability vs awareness "
                "(8 hosts x 20 components, sparse links, mean of 4)",
                ["configuration", "availability"], rows)

    # Shape assertions:
    # 1. DecAp improves on the initial deployment at every awareness level.
    for label, value in sweep.items():
        assert value > initial, f"awareness {label} failed to improve"
    # 2. Full awareness is at least as good as connectivity-only awareness.
    assert sweep["1.0"] >= sweep["connectivity"] - 0.01
    # 3. Centralized search with global knowledge is the ceiling:
    #    decentralized quality does not exceed it by more than noise.
    assert sweep["1.0"] <= max(avala, refined) + 0.05

    model = models[0]
    benchmark(lambda: DecApAlgorithm(
        availability, memory_constraints, seed=1,
        awareness=from_connectivity(model).as_map(),
        max_rounds=5).run(model))


def test_e5_decap_convergence_rounds(availability, memory_constraints,
                                     benchmark):
    """DecAp converges in a handful of system-wide auction rounds."""
    rows = []
    for model in sparse_architectures(count=3, seed=4100):
        result = DecApAlgorithm(availability, memory_constraints, seed=1,
                                max_rounds=50).run(model)
        rows.append((model.name, result.extra["rounds"],
                     result.extra["auctions"], result.extra["moves"],
                     result.value))
        assert result.extra["rounds"] < 50
    print_table("E5b: DecAp convergence",
                ["architecture", "rounds", "auctions", "moves",
                 "availability"], rows)
    model = sparse_architectures(count=1, seed=4100)[0]
    benchmark(lambda: DecApAlgorithm(
        availability, memory_constraints, seed=1,
        max_rounds=50).run(model))
