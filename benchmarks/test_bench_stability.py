"""E4 — ε-stability detection of monitored data (Sections 3.1 / 4.3).

"monitoring is performed in short intervals of adjustable duration.  Once
the monitored data is stable (i.e., the difference in the data across a
desired number [of] consecutive intervals is less than an adjustable value
ε), the AdminComponent sends [it on]".

The bench feeds the monitoring hub reliability estimates measured off a
simulated link in three regimes — steady, drifting (random walk), and a
step change — and reports how many intervals each takes to be released to
the model.
"""

import pytest

from repro.core import DeploymentModel
from repro.core.monitoring import MonitoringHub, StabilityDetector
from repro.middleware import DistributedSystem
from repro.middleware.monitors import NetworkReliabilityMonitor
from repro.sim import RandomWalkFluctuation, SimClock, StepChange
from conftest import print_table


def two_host_model(reliability=0.8):
    model = DeploymentModel()
    model.add_host("h0", memory=100.0)
    model.add_host("h1", memory=100.0)
    model.connect_hosts("h0", "h1", reliability=reliability, bandwidth=100.0)
    model.add_component("a", memory=1.0)
    model.add_component("b", memory=1.0)
    model.connect_components("a", "b", frequency=1.0)
    model.deploy("a", "h0")
    model.deploy("b", "h1")
    return model


def measure_intervals_to_stable(fluctuation: str, epsilon=0.05, window=3,
                                intervals=40, seed=60):
    model = two_host_model()
    clock = SimClock()
    system = DistributedSystem(model, clock, seed=seed)
    system.install_monitoring(ping_interval=0.2, pings_per_round=10)
    if fluctuation == "walk":
        RandomWalkFluctuation(system.network, "h0", "h1", step=0.2,
                              interval=0.5, seed=seed).start()
    elif fluctuation == "step":
        StepChange(system.network, "h0", "h1", at=10.0,
                   attribute="reliability", value=0.2).start()
    hub = MonitoringHub(model, epsilon=epsilon, window=window)
    first_stable = None
    updates = 0
    for interval in range(1, intervals + 1):
        clock.run(1.0)
        for host in model.host_ids:
            hub.ingest(host, system.admin(host).collect_report())
        applied = hub.process_interval()
        updates += len(applied)
        if applied and first_stable is None:
            first_stable = interval
    return first_stable, updates, model.reliability("h0", "h1")


def test_e4_stability_regimes(benchmark):
    steady_first, steady_updates, steady_value = \
        measure_intervals_to_stable("steady")
    walk_first, walk_updates, __ = measure_intervals_to_stable("walk")
    step_first, step_updates, step_value = \
        measure_intervals_to_stable("step")
    rows = [
        ("steady 0.8", steady_first, steady_updates, steady_value),
        ("random walk", walk_first, walk_updates, "-"),
        ("step 0.8->0.2 @t=10", step_first, step_updates, step_value),
    ]
    print_table("E4: intervals until monitored reliability reaches the "
                "model (epsilon=0.05, window=3)",
                ["link regime", "first stable interval", "model updates",
                 "final model value"], rows)
    # Steady data stabilizes as soon as the window fills.
    assert steady_first is not None and steady_first <= 5
    assert abs(steady_value - 0.8) < 0.1
    # A violent random walk yields far fewer releases than steady data.
    assert walk_updates < steady_updates
    # After the step the hub re-stabilizes on the new value.
    assert step_updates > 0
    assert abs(step_value - 0.2) < 0.1

    benchmark(lambda: measure_intervals_to_stable("steady", intervals=10))


def test_e4_window_and_epsilon_knobs(benchmark):
    """Larger windows delay release; larger epsilon accelerates it.

    Ping estimates carry sampling noise (std ~0.04 at 100 probes/interval),
    so a tight epsilon may legitimately never stabilize within the horizon —
    "never" is treated as later-than-everything.
    """
    rows = []
    results = {}
    horizon = 25
    for window, epsilon in ((2, 0.2), (5, 0.2), (3, 0.02), (3, 0.4)):
        first, updates, __ = measure_intervals_to_stable(
            "steady", epsilon=epsilon, window=window, intervals=horizon)
        results[(window, epsilon)] = first if first is not None \
            else horizon + 1
        rows.append((window, epsilon,
                     first if first is not None else "never", updates))
    print_table("E4b: knob sensitivity (steady link)",
                ["window", "epsilon", "first stable", "updates"], rows)
    assert results[(2, 0.2)] <= results[(5, 0.2)]
    assert results[(3, 0.4)] <= results[(3, 0.02)]

    detector = StabilityDetector(epsilon=0.05, window=3)
    benchmark(lambda: [detector.update(0.5) for __ in range(100)])
