"""Property-based determinism: batched paths == unbatched paths.

The batched simulation core (tuple-heap clock with a ready deque,
``schedule_many``, vectorized ``send_many``) promises *bit-for-bit* the
same event order as the pre-optimization implementations.  These
properties drive randomized schedules and traffic through both and
require identical observable histories — same-instant FIFO ties,
cancellations, lossy links, and callback interleavings included.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import SimClock, SimulatedNetwork
from repro.sim.clock import LegacySimClock

#: Delays drawn from a small set so same-instant collisions (the FIFO
#: tie-break cases) are common, with exact float arithmetic.
DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0])

SCHEDULE_SPECS = st.lists(
    st.tuples(DELAYS, st.lists(DELAYS, max_size=3)),
    min_size=1, max_size=25)


def _drive(clock_cls, spec, cancel_picks, batch):
    """Replay one randomized schedule on *clock_cls*; return the firing
    log.  Each top-level event may schedule follow-ups from inside its
    callback (exercising mid-run scheduling at the current instant)."""
    clock = clock_cls()
    log = []

    def fire(tag, followups):
        log.append((clock.now, tag))
        for index, delay in enumerate(followups):
            clock.schedule(delay, fire, f"{tag}.{index}", ())

    if batch:
        handles = clock.schedule_many(
            [(delay, fire, (str(i), tuple(follow)))
             for i, (delay, follow) in enumerate(spec)])
    else:
        handles = [clock.schedule(delay, fire, str(i), tuple(follow))
                   for i, (delay, follow) in enumerate(spec)]
    for pick in cancel_picks:
        handles[pick % len(handles)].cancel()
    clock.run(50.0)
    return log, clock.now, clock.pending


class TestClockParity:
    @settings(max_examples=60, deadline=None)
    @given(spec=SCHEDULE_SPECS,
           cancel_picks=st.lists(st.integers(0, 10 ** 6), max_size=8))
    def test_fast_clock_matches_legacy_firing_order(self, spec,
                                                    cancel_picks):
        fast = _drive(SimClock, spec, cancel_picks, batch=False)
        legacy = _drive(LegacySimClock, spec, cancel_picks, batch=False)
        assert fast == legacy

    @settings(max_examples=60, deadline=None)
    @given(spec=SCHEDULE_SPECS,
           cancel_picks=st.lists(st.integers(0, 10 ** 6), max_size=8))
    def test_schedule_many_matches_serial_scheduling(self, spec,
                                                     cancel_picks):
        batched = _drive(SimClock, spec, cancel_picks, batch=True)
        serial = _drive(SimClock, spec, cancel_picks, batch=False)
        assert batched == serial


def _run_traffic(batch, seed, reliability, items, disconnect_after):
    """One lossy-link traffic run; returns the full delivery history."""
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=seed)
    network.add_endpoint("a")
    network.add_endpoint("b")
    network.add_link("a", "b", reliability=reliability, bandwidth=100.0,
                     delay=0.05)
    log = []
    network.attach_handler(
        "b", lambda s, p, k: log.append((clock.now, p, k)))
    if disconnect_after is not None:
        clock.schedule(disconnect_after,
                       network.set_connected, "a", "b", False)
    if batch:
        results = network.send_many("a", "b", items)
    else:
        results = [network.send("a", "b", payload, size)
                   for payload, size in items]
    clock.run(30.0)
    stats = network.stats
    return (results, log, stats.sent, stats.delivered, stats.dropped,
            stats.kb_sent, stats.kb_delivered)


class TestNetworkParity:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           reliability=st.floats(0.0, 1.0, allow_nan=False),
           sizes=st.lists(st.sampled_from([0.5, 1.0, 1.0, 2.0, 25.0]),
                          min_size=1, max_size=30))
    def test_send_many_matches_send_loop(self, seed, reliability, sizes):
        items = [(f"m{i}", size) for i, size in enumerate(sizes)]
        batched = _run_traffic(True, seed, reliability, items, None)
        serial = _run_traffic(False, seed, reliability, items, None)
        assert batched == serial

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           count=st.integers(1, 20),
           disconnect_after=st.sampled_from([0.0, 0.05, 0.1, 0.3]))
    def test_partition_mid_flight_matches_serial(self, seed, count,
                                                 disconnect_after):
        # A link cut while batched messages are on the wire must drop
        # exactly the messages the serial path would drop.
        items = [(f"m{i}", 1.0) for i in range(count)]
        batched = _run_traffic(True, seed, 0.9, items, disconnect_after)
        serial = _run_traffic(False, seed, 0.9, items, disconnect_after)
        assert batched == serial
