"""Unit tests for the discrete-event clock."""

import pytest

from repro.sim import LegacySimClock, SimClock


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append("late"))
        clock.schedule(1.0, lambda: fired.append("early"))
        clock.schedule(2.0, lambda: fired.append("middle"))
        clock.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_fifo(self):
        clock = SimClock()
        fired = []
        for index in range(5):
            clock.schedule(1.0, fired.append, index)
        clock.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        clock = SimClock()
        times = []
        clock.schedule(2.5, lambda: times.append(clock.now))
        clock.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        clock = SimClock(start=10.0)
        fired = []
        clock.schedule_at(12.0, lambda: fired.append(clock.now))
        clock.run()
        assert fired == [12.0]

    def test_zero_delay_runs_after_current_queue(self):
        clock = SimClock()
        fired = []

        def outer():
            clock.schedule(0.0, lambda: fired.append("inner"))
            fired.append("outer")

        clock.schedule(0.0, outer)
        clock.run()
        assert fired == ["outer", "inner"]

    def test_cancel(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        clock.run()
        assert fired == []
        assert clock.pending == 0


class TestScheduleMany:
    def test_matches_individual_schedules(self):
        batched, looped = SimClock(), SimClock()
        fired_batched, fired_looped = [], []
        items = [(delay, fired_batched.append, (index,))
                 for index, delay in enumerate([2.0, 0.0, 1.0, 0.0, 2.0])]
        handles = batched.schedule_many(items)
        for index, delay in enumerate([2.0, 0.0, 1.0, 0.0, 2.0]):
            looped.schedule(delay, fired_looped.append, index)
        assert len(handles) == 5
        batched.run()
        looped.run()
        assert fired_batched == fired_looped
        assert batched.processed == looped.processed

    def test_handles_support_cancel(self):
        clock = SimClock()
        fired = []
        handles = clock.schedule_many(
            [(1.0, fired.append, (index,)) for index in range(4)])
        handles[1].cancel()
        handles[3].cancel()
        clock.run()
        assert fired == [0, 2]

    def test_negative_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule_many([(1.0, print, ()), (-0.5, print, ())])


class TestCancelCompaction:
    def test_heap_stays_bounded_under_cancel_heavy_workload(self):
        """Retry/timeout pattern: schedule a far-future timeout, cancel
        it almost immediately, repeat.  The cancelled entries must not
        accumulate until their distant timestamps."""
        clock = SimClock()
        live = 64  # a plausible steady-state of genuinely pending work
        keepers = [clock.schedule(1e6 + i, lambda: None)
                   for i in range(live)]
        high_water = 0
        for round_number in range(200):
            handles = [clock.schedule(1000.0 + i, lambda: None)
                       for i in range(100)]
            for handle in handles:
                handle.cancel()
            high_water = max(high_water, len(clock._heap))
        # 20k cancels passed through; without compaction the heap would
        # hold all of them.  With it, it never exceeds a small multiple
        # of the live set + one uncompacted batch.
        assert high_water < 4 * (live + 100)
        assert clock.pending == live
        for keeper in keepers:
            keeper.cancel()

    def test_pending_is_exact_under_cancels(self):
        clock = SimClock()
        handles = [clock.schedule(float(i % 7), lambda: None)
                   for i in range(50)]
        for handle in handles[::2]:
            handle.cancel()
        assert clock.pending == 25
        clock.run()
        assert clock.pending == 0
        assert clock.processed == 25

    def test_cancel_after_fire_is_a_noop(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, fired.append, "x")
        clock.run()
        handle.cancel()  # must not corrupt the live-event count
        handle.cancel()
        assert fired == ["x"]
        assert clock.pending == 0
        clock.schedule(1.0, fired.append, "y")
        assert clock.pending == 1

    def test_cancel_during_callback_within_same_instant(self):
        clock = SimClock()
        fired = []
        later = clock.schedule(0.0, fired.append, "later")

        def killer():
            fired.append("killer")
            later.cancel()

        # killer was scheduled after `later` but fires first? No —
        # FIFO: later was scheduled first, so it fires first.
        clock.schedule(0.0, killer)
        clock.run()
        assert fired == ["later", "killer"]

        # Now the reverse: the killer is scheduled first and cancels a
        # same-instant successor before it fires.
        clock2 = SimClock()
        fired2 = []
        target = {}

        def killer2():
            fired2.append("killer")
            target["handle"].cancel()

        clock2.schedule(0.0, killer2)
        target["handle"] = clock2.schedule(0.0, fired2.append, "victim")
        clock2.run()
        assert fired2 == ["killer"]


class TestLegacyParity:
    """LegacySimClock is the pre-batching reference implementation; the
    two clocks must fire identical sequences on mixed schedules."""

    def test_interleaved_zero_and_positive_delays(self):
        def drive(clock):
            fired = []

            def cascade(label, budget):
                fired.append((clock.now, label))
                if budget:
                    clock.schedule(0.0, cascade, f"{label}.z", budget - 1)
                    clock.schedule(0.5, cascade, f"{label}.p", budget - 1)

            clock.schedule(0.0, cascade, "a", 3)
            clock.schedule(1.0, cascade, "b", 2)
            clock.schedule(1.0, cascade, "c", 1)
            clock.run(10.0)
            return fired, clock.processed, clock.now

        assert drive(SimClock()) == drive(LegacySimClock())

    def test_cancellation_parity(self):
        def drive(clock):
            fired = []
            handles = [clock.schedule(float(i % 3), fired.append, i)
                       for i in range(12)]
            for handle in handles[1::3]:
                handle.cancel()
            clock.run()
            return fired, clock.processed

        assert drive(SimClock()) == drive(LegacySimClock())


class TestRun:
    def test_run_with_duration_stops_at_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(5.0, lambda: fired.append(5))
        clock.run(2.0)
        assert fired == [1]
        assert clock.now == 2.0  # time advances to the deadline
        clock.run(10.0)
        assert fired == [1, 5]

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append(3))
        clock.run_until(3.0)
        assert fired == [3]
        with pytest.raises(ValueError):
            clock.run_until(1.0)

    def test_events_scheduled_during_run_fire_within_window(self):
        clock = SimClock()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                clock.schedule(1.0, chain, n + 1)

        clock.schedule(1.0, chain, 0)
        clock.run(10.0)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert SimClock().step() is False

    def test_processed_counter(self):
        clock = SimClock()
        for __ in range(4):
            clock.schedule(1.0, lambda: None)
        clock.run()
        assert clock.processed == 4

    def test_max_events_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(0.1, forever)

        clock.schedule(0.1, forever)
        fired = clock.run(1e9, max_events=100)
        assert fired == 100


class TestAdvance:
    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_cannot_skip_events(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        with pytest.raises(ValueError, match="skip"):
            clock.advance(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        clock = SimClock()
        ticks = []
        clock.every(1.0, lambda: ticks.append(clock.now))
        clock.run(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_stops_future_firings(self):
        clock = SimClock()
        ticks = []
        task = clock.every(1.0, lambda: ticks.append(clock.now))
        clock.run(3.0)
        task.cancel()
        clock.run(5.0)
        assert len(ticks) == 3
        assert task.firings == 3

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            SimClock().every(0.0, lambda: None)
