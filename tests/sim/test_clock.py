"""Unit tests for the discrete-event clock."""

import pytest

from repro.sim import SimClock


class TestScheduling:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append("late"))
        clock.schedule(1.0, lambda: fired.append("early"))
        clock.schedule(2.0, lambda: fired.append("middle"))
        clock.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_fifo(self):
        clock = SimClock()
        fired = []
        for index in range(5):
            clock.schedule(1.0, fired.append, index)
        clock.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        clock = SimClock()
        times = []
        clock.schedule(2.5, lambda: times.append(clock.now))
        clock.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        clock = SimClock(start=10.0)
        fired = []
        clock.schedule_at(12.0, lambda: fired.append(clock.now))
        clock.run()
        assert fired == [12.0]

    def test_zero_delay_runs_after_current_queue(self):
        clock = SimClock()
        fired = []

        def outer():
            clock.schedule(0.0, lambda: fired.append("inner"))
            fired.append("outer")

        clock.schedule(0.0, outer)
        clock.run()
        assert fired == ["outer", "inner"]

    def test_cancel(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        clock.run()
        assert fired == []
        assert clock.pending == 0


class TestRun:
    def test_run_with_duration_stops_at_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule(1.0, lambda: fired.append(1))
        clock.schedule(5.0, lambda: fired.append(5))
        clock.run(2.0)
        assert fired == [1]
        assert clock.now == 2.0  # time advances to the deadline
        clock.run(10.0)
        assert fired == [1, 5]

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.schedule(3.0, lambda: fired.append(3))
        clock.run_until(3.0)
        assert fired == [3]
        with pytest.raises(ValueError):
            clock.run_until(1.0)

    def test_events_scheduled_during_run_fire_within_window(self):
        clock = SimClock()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                clock.schedule(1.0, chain, n + 1)

        clock.schedule(1.0, chain, 0)
        clock.run(10.0)
        assert fired == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert SimClock().step() is False

    def test_processed_counter(self):
        clock = SimClock()
        for __ in range(4):
            clock.schedule(1.0, lambda: None)
        clock.run()
        assert clock.processed == 4

    def test_max_events_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(0.1, forever)

        clock.schedule(0.1, forever)
        fired = clock.run(1e9, max_events=100)
        assert fired == 100


class TestAdvance:
    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_cannot_skip_events(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        with pytest.raises(ValueError, match="skip"):
            clock.advance(2.0)

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        clock = SimClock()
        ticks = []
        clock.every(1.0, lambda: ticks.append(clock.now))
        clock.run(5.0)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_cancel_stops_future_firings(self):
        clock = SimClock()
        ticks = []
        task = clock.every(1.0, lambda: ticks.append(clock.now))
        clock.run(3.0)
        task.cancel()
        clock.run(5.0)
        assert len(ticks) == 3
        assert task.firings == 3

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            SimClock().every(0.0, lambda: None)
