"""Unit tests for the simulated network."""

import pytest

from repro.core import DeploymentModel
from repro.core.errors import NetworkError, UnknownEntityError
from repro.sim import SimClock, SimulatedNetwork


def two_host_network(reliability=1.0, bandwidth=100.0, delay=0.01, seed=1):
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=seed)
    network.add_endpoint("a")
    network.add_endpoint("b")
    network.add_link("a", "b", reliability=reliability, bandwidth=bandwidth,
                     delay=delay)
    return clock, network


class TestTopology:
    def test_duplicate_endpoint_rejected(self):
        clock, network = two_host_network()
        with pytest.raises(NetworkError):
            network.add_endpoint("a")

    def test_duplicate_link_rejected(self):
        clock, network = two_host_network()
        with pytest.raises(NetworkError):
            network.add_link("b", "a")

    def test_link_to_unknown_endpoint_rejected(self):
        clock, network = two_host_network()
        with pytest.raises(UnknownEntityError):
            network.add_link("a", "ghost")

    def test_parameter_validation(self):
        clock, network = two_host_network()
        network.add_endpoint("c")
        with pytest.raises(NetworkError):
            network.add_link("a", "c", reliability=1.5)
        # Runtime setters clamp instead of raising: the injector and the
        # fluctuation engine may push values past the edge of the range.
        network.set_reliability("a", "b", -0.1)
        assert network.link("a", "b").reliability == 0.0
        network.set_reliability("a", "b", 1.7)
        assert network.link("a", "b").reliability == 1.0
        network.set_bandwidth("a", "b", -1.0)
        assert network.link("a", "b").bandwidth == 0.0
        with pytest.raises(NetworkError):
            network.set_reliability("a", "b", float("nan"))
        with pytest.raises(NetworkError):
            network.set_bandwidth("a", "b", float("nan"))

    def test_neighbors_reflect_link_state(self):
        clock, network = two_host_network()
        assert network.neighbors("a") == ("b",)
        network.set_connected("a", "b", False)
        assert network.neighbors("a") == ()


class TestTransmission:
    def test_delivery_after_transmission_time(self):
        clock, network = two_host_network(bandwidth=100.0, delay=0.5)
        arrivals = []
        network.attach_handler("b", lambda src, payload, kb: arrivals.append(
            (clock.now, payload)))
        network.send("a", "b", "hello", size_kb=50.0)
        clock.run()
        assert arrivals == [(0.5 + 0.5, "hello")]  # delay + 50/100

    def test_loopback_is_instant_and_reliable(self):
        clock, network = two_host_network(reliability=0.0)
        arrivals = []
        network.attach_handler("a", lambda src, payload, kb: arrivals.append(
            payload))
        network.send("a", "a", "self")
        clock.run()
        assert arrivals == ["self"]

    def test_loss_rate_matches_reliability(self):
        clock, network = two_host_network(reliability=0.3, seed=7)
        delivered = []
        network.attach_handler("b", lambda *args: delivered.append(1))
        for __ in range(1000):
            network.send("a", "b", None, size_kb=0.1)
        clock.run()
        assert len(delivered) == pytest.approx(300, abs=50)
        assert network.stats.dropped + network.stats.delivered == 1000

    def test_reliable_flag_skips_loss(self):
        clock, network = two_host_network(reliability=0.0)
        delivered = []
        network.attach_handler("b", lambda *args: delivered.append(1))
        for __ in range(20):
            network.send("a", "b", None, reliable=True)
        clock.run()
        assert len(delivered) == 20

    def test_reliable_flag_cannot_cross_down_link(self):
        clock, network = two_host_network()
        network.set_connected("a", "b", False)
        assert network.send("a", "b", None, reliable=True) is False

    def test_no_link_means_drop_with_callback(self):
        clock = SimClock()
        network = SimulatedNetwork(clock, seed=1)
        network.add_endpoint("a")
        network.add_endpoint("b")
        dropped = []
        ok = network.send("a", "b", "payload",
                          on_dropped=lambda dst, p: dropped.append(p))
        assert ok is False
        assert dropped == ["payload"]

    def test_disconnect_mid_flight_drops_message(self):
        clock, network = two_host_network(delay=1.0)
        delivered = []
        network.attach_handler("b", lambda *args: delivered.append(1))
        network.send("a", "b", None)
        clock.run(0.5)
        network.set_connected("a", "b", False)
        clock.run(5.0)
        assert delivered == []
        assert network.stats.dropped == 1

    def test_zero_bandwidth_link_raises(self):
        clock, network = two_host_network(bandwidth=0.0)
        with pytest.raises(NetworkError, match="zero bandwidth"):
            network.send("a", "b", None, size_kb=1.0)

    def test_observers_notified_on_link_transitions(self):
        clock, network = two_host_network()
        events = []
        network.observers.append(lambda name, payload: events.append(name))
        network.set_connected("a", "b", False)
        network.set_connected("a", "b", False)  # no-op, no event
        network.set_connected("a", "b", True)
        assert events == ["link_down", "link_up"]


class TestPing:
    def test_ping_success_rate(self):
        clock, network = two_host_network(reliability=0.8, seed=4)
        successes = sum(network.ping("a", "b") for __ in range(1000))
        assert successes == pytest.approx(800, abs=50)

    def test_ping_self_always_succeeds(self):
        clock, network = two_host_network(reliability=0.0)
        assert network.ping("a", "a")

    def test_ping_down_link_fails(self):
        clock, network = two_host_network()
        network.set_connected("a", "b", False)
        assert not network.ping("a", "b")

    def test_ping_no_link_fails(self):
        clock = SimClock()
        network = SimulatedNetwork(clock)
        network.add_endpoint("a")
        network.add_endpoint("b")
        assert not network.ping("a", "b")


class TestModelInterop:
    def test_from_model_mirrors_links(self, tiny_model):
        clock = SimClock()
        network = SimulatedNetwork.from_model(tiny_model, clock, seed=1)
        assert set(network.endpoints) == {"hA", "hB"}
        link = network.link("hA", "hB")
        assert link.reliability == 0.5
        assert link.bandwidth == 100.0

    def test_apply_to_model_writes_truth_back(self, tiny_model):
        clock = SimClock()
        network = SimulatedNetwork.from_model(tiny_model, clock, seed=1)
        network.set_reliability("hA", "hB", 0.123)
        network.apply_to_model(tiny_model)
        assert tiny_model.physical_link("hA", "hB").params.get(
            "reliability") == 0.123

    def test_stats_observed_reliability(self):
        clock, network = two_host_network(reliability=0.5, seed=2)
        for __ in range(400):
            network.send("a", "b", None)
        clock.run()
        link = network.link("a", "b")
        assert link.stats.observed_reliability() == pytest.approx(0.5,
                                                                  abs=0.08)


def _recording_pair(reliability=1.0, bandwidth=100.0, delay=0.01, seed=7):
    """Two identical networks whose 'b' handler logs (time, payload)."""
    out = []
    for __ in range(2):
        clock, network = two_host_network(reliability=reliability,
                                          bandwidth=bandwidth, delay=delay,
                                          seed=seed)
        log = []
        network.attach_handler(
            "b", lambda s, p, k, log=log, c=clock: log.append((c.now, s, p, k)))
        out.append((clock, network, log))
    return out


class TestSendMany:
    """send_many must be byte-for-byte equivalent to a send() loop."""

    def _compare(self, items, reliability=1.0, bandwidth=100.0, delay=0.01,
                 seed=7, reliable=False, run_for=60.0):
        (c1, n1, log1), (c2, n2, log2) = _recording_pair(
            reliability=reliability, bandwidth=bandwidth, delay=delay,
            seed=seed)
        serial = [n1.send("a", "b", p, k, reliable=reliable)
                  for p, k in items]
        batched = n2.send_many("a", "b", items, reliable=reliable)
        c1.run(run_for)
        c2.run(run_for)
        assert batched == serial
        assert log1 == log2
        for a, b in ((n1.stats, n2.stats),
                     (n1.link("a", "b").stats, n2.link("a", "b").stats)):
            assert (a.sent, a.delivered, a.dropped, a.kb_sent,
                    a.kb_delivered) == (b.sent, b.delivered, b.dropped,
                                        b.kb_sent, b.kb_delivered)
        return log2

    def test_uniform_batch_single_delivery_order(self):
        log = self._compare([(f"m{i}", 2.0) for i in range(10)])
        assert [p for __, __, p, __ in log] == [f"m{i}" for i in range(10)]

    def test_mixed_sizes_preserve_order_and_times(self):
        self._compare([("a0", 1.0), ("a1", 1.0), ("big", 40.0),
                       ("a2", 1.0), ("a3", 1.0)])

    def test_lossy_link_consumes_same_rng_stream(self):
        for seed in range(6):
            self._compare([(f"m{i}", 1.0) for i in range(40)],
                          reliability=0.5, seed=seed)

    def test_reliable_flag_skips_loss_in_batch(self):
        log = self._compare([(f"m{i}", 1.0) for i in range(20)],
                            reliability=0.0, reliable=True)
        assert len(log) == 20

    def test_loopback_batch_delivers_instantly(self):
        clock, network = two_host_network()
        seen = []
        network.attach_handler("a", lambda s, p, k: seen.append(p))
        results = network.send_many("a", "a", [("x", 1.0), ("y", 2.0)])
        assert results == [True, True]
        assert seen == ["x", "y"]

    def test_missing_link_batch_drops_with_callback(self):
        clock, network = two_host_network()
        network.add_endpoint("c")
        dropped = []
        results = network.send_many(
            "a", "c", [("x", 1.0), ("y", 1.0)],
            on_dropped=lambda d, p: dropped.append(p))
        assert results == [False, False]
        assert dropped == ["x", "y"]
        assert network.stats.dropped == 2

    def test_disconnected_link_batch_matches_serial(self):
        (c1, n1, log1), (c2, n2, log2) = _recording_pair()
        n1.set_connected("a", "b", False)
        n2.set_connected("a", "b", False)
        dropped1, dropped2 = [], []
        serial = [n1.send("a", "b", p, k,
                          on_dropped=lambda d, p: dropped1.append(p))
                  for p, k in [("x", 1.0), ("y", 1.0)]]
        batched = n2.send_many("a", "b", [("x", 1.0), ("y", 1.0)],
                               on_dropped=lambda d, p: dropped2.append(p))
        assert batched == serial == [False, False]
        assert dropped1 == dropped2 == ["x", "y"]

    def test_on_dropped_callback_closes_open_group(self):
        # A callback that itself sends must interleave exactly as it
        # would serially; compare the full delivery logs.
        (c1, n1, log1), (c2, n2, log2) = _recording_pair(reliability=0.6,
                                                         seed=11)

        def resend1(destination, payload):
            n1.send("a", "b", ("resend", payload), 1.0)

        def resend2(destination, payload):
            n2.send("a", "b", ("resend", payload), 1.0)

        items = [(f"m{i}", 1.0) for i in range(30)]
        serial = [n1.send("a", "b", p, k, on_dropped=resend1)
                  for p, k in items]
        batched = n2.send_many("a", "b", items, on_dropped=resend2)
        c1.run(60.0)
        c2.run(60.0)
        assert batched == serial
        assert log1 == log2

    def test_in_flight_gauge_returns_to_zero(self):
        clock, network = two_host_network()
        network.send_many("a", "b", [(f"m{i}", 1.0) for i in range(8)])
        link = network.link("a", "b")
        assert link.in_flight == 8
        clock.run(10.0)
        assert link.in_flight == 0

    def test_unknown_endpoints_rejected(self):
        clock, network = two_host_network()
        with pytest.raises(UnknownEntityError):
            network.send_many("ghost", "b", [("x", 1.0)])
        with pytest.raises(UnknownEntityError):
            network.send_many("a", "ghost", [("x", 1.0)])
