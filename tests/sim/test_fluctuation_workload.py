"""Unit tests for fluctuation processes and the workload generator."""

import pytest

from repro.core import DeploymentModel
from repro.core.errors import NetworkError
from repro.sim import (
    DisconnectionProcess, InteractionWorkload, RandomWalkFluctuation,
    SimClock, SimulatedNetwork, StepChange, empirical_frequencies,
    generate_trace,
)


def make_network(seed=1):
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=seed)
    network.add_endpoint("a")
    network.add_endpoint("b")
    network.add_link("a", "b", reliability=0.8, bandwidth=100.0)
    return clock, network


class TestRandomWalk:
    def test_stays_within_bounds(self):
        clock, network = make_network()
        walk = RandomWalkFluctuation(network, "a", "b", step=0.3,
                                     interval=0.5, seed=3).start()
        clock.run(100.0)
        link = network.link("a", "b")
        assert 0.0 <= link.reliability <= 1.0
        assert walk.perturbations == 200

    def test_changes_value(self):
        clock, network = make_network()
        RandomWalkFluctuation(network, "a", "b", step=0.1, interval=1.0,
                              seed=3).start()
        clock.run(10.0)
        assert network.link("a", "b").reliability != 0.8

    def test_bandwidth_walk_non_negative(self):
        clock, network = make_network()
        RandomWalkFluctuation(network, "a", "b", attribute="bandwidth",
                              step=80.0, interval=0.5, seed=3).start()
        clock.run(50.0)
        assert network.link("a", "b").bandwidth >= 0.0

    def test_stop_halts_perturbation(self):
        clock, network = make_network()
        walk = RandomWalkFluctuation(network, "a", "b", step=0.1,
                                     interval=1.0, seed=3).start()
        clock.run(5.0)
        walk.stop()
        count = walk.perturbations
        clock.run(5.0)
        assert walk.perturbations == count

    def test_unknown_attribute_rejected(self):
        clock, network = make_network()
        with pytest.raises(NetworkError):
            RandomWalkFluctuation(network, "a", "b", attribute="nonsense")

    def test_double_start_rejected(self):
        clock, network = make_network()
        walk = RandomWalkFluctuation(network, "a", "b", seed=1).start()
        with pytest.raises(NetworkError):
            walk.start()


class TestDisconnection:
    def test_link_alternates(self):
        clock, network = make_network()
        process = DisconnectionProcess(network, "a", "b", mean_uptime=2.0,
                                       mean_downtime=1.0, seed=5).start()
        clock.run(100.0)
        assert process.transitions > 10

    def test_stop_leaves_link_up(self):
        clock, network = make_network()
        process = DisconnectionProcess(network, "a", "b", mean_uptime=0.5,
                                       mean_downtime=50.0, seed=5).start()
        clock.run(5.0)  # almost surely down now
        process.stop()
        assert network.link("a", "b").connected

    def test_durations_validated(self):
        clock, network = make_network()
        with pytest.raises(NetworkError):
            DisconnectionProcess(network, "a", "b", mean_uptime=0.0)


class TestStepChange:
    def test_applies_at_scheduled_time(self):
        clock, network = make_network()
        change = StepChange(network, "a", "b", at=5.0,
                            attribute="reliability", value=0.1).start()
        clock.run(4.0)
        assert network.link("a", "b").reliability == 0.8
        assert not change.applied
        clock.run(2.0)
        assert network.link("a", "b").reliability == 0.1
        assert change.applied

    def test_connected_attribute_uses_network_api(self):
        clock, network = make_network()
        events = []
        network.observers.append(lambda name, payload: events.append(name))
        StepChange(network, "a", "b", at=1.0, attribute="connected",
                   value=False).start()
        clock.run(2.0)
        assert events == ["link_down"]


class TestWorkload:
    def two_component_model(self, frequency=4.0):
        model = DeploymentModel()
        model.add_component("x")
        model.add_component("y")
        model.connect_components("x", "y", frequency=frequency, evt_size=2.0)
        return model

    def test_periodic_rate_matches_model(self):
        model = self.two_component_model(frequency=4.0)
        trace = generate_trace(model, duration=100.0, seed=1)
        rates = empirical_frequencies(trace, 100.0)
        assert rates[("x", "y")] == pytest.approx(4.0, rel=0.05)

    def test_poisson_rate_matches_model(self):
        model = self.two_component_model(frequency=4.0)
        trace = generate_trace(model, duration=200.0, poisson=True, seed=1)
        rates = empirical_frequencies(trace, 200.0)
        assert rates[("x", "y")] == pytest.approx(4.0, rel=0.15)

    def test_both_directions_emitted(self):
        model = self.two_component_model()
        trace = generate_trace(model, duration=50.0, seed=2)
        sources = {record.source for record in trace}
        assert sources == {"x", "y"}

    def test_event_sizes_from_logical_link(self):
        model = self.two_component_model()
        trace = generate_trace(model, duration=10.0, seed=2)
        assert all(record.size_kb == 2.0 for record in trace)

    def test_zero_frequency_links_silent(self):
        model = self.two_component_model(frequency=0.0)
        assert generate_trace(model, duration=50.0, seed=1) == []

    def test_rate_scale(self):
        model = self.two_component_model(frequency=2.0)
        clock = SimClock()
        count = []
        workload = InteractionWorkload(model, clock,
                                       lambda s, t, kb: count.append(1),
                                       seed=1, rate_scale=5.0).start()
        clock.run(100.0)
        workload.stop()
        assert len(count) == pytest.approx(2.0 * 5.0 * 100.0, rel=0.05)

    def test_stop_halts_emission(self):
        model = self.two_component_model()
        clock = SimClock()
        count = []
        workload = InteractionWorkload(model, clock,
                                       lambda s, t, kb: count.append(1),
                                       seed=1).start()
        clock.run(10.0)
        workload.stop()
        size = len(count)
        clock.run(10.0)
        assert len(count) == size
