"""Structural tests for the scenario builders."""

import pytest

from repro.core import AvailabilityObjective, MemoryConstraint
from repro.core.constraints import LocationConstraint
from repro.core.errors import ModelError
from repro.scenarios import (
    CrisisConfig, build_client_server, build_crisis_scenario,
    build_sensor_field,
)


class TestCrisisScenario:
    def test_topology_matches_paper_description(self):
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=3, troops_per_commander=2, seed=1))
        model = scenario.model
        # HQ networked to every commander.
        for commander in scenario.commanders:
            assert model.physical_link(scenario.hq, commander) is not None
        # Commanders connected directly to each other.
        for i, cmd_a in enumerate(scenario.commanders):
            for cmd_b in scenario.commanders[i + 1:]:
                assert model.physical_link(cmd_a, cmd_b) is not None
        # Troops attach to their commander, not to HQ.
        for troop in scenario.troops:
            assert model.physical_link(scenario.hq, troop) is None

    def test_initial_deployment_valid(self):
        scenario = build_crisis_scenario(CrisisConfig(seed=2))
        scenario.model.validate_deployment()
        assert MemoryConstraint().is_satisfied(scenario.model,
                                               scenario.model.deployment)
        assert scenario.constraints.is_satisfied(scenario.model,
                                                 scenario.model.deployment)

    def test_architect_constraints_present(self):
        scenario = build_crisis_scenario(CrisisConfig(seed=3))
        locations = [c for c in scenario.constraints
                     if isinstance(c, LocationConstraint)]
        display_pin = [c for c in locations
                       if c.component == "status_display"]
        assert display_pin and display_pin[0].permits_host(scenario.hq)
        coordinator_bans = [c for c in locations
                            if c.component.startswith("coordinator")]
        assert all(not c.permits_host(scenario.hq) for c in coordinator_bans)

    def test_security_user_input(self):
        scenario = build_crisis_scenario(CrisisConfig(seed=4))
        for commander in scenario.commanders:
            link = scenario.model.physical_link(scenario.hq, commander)
            assert link.params.get("security") == 0.9

    def test_deterministic_with_seed(self):
        first = build_crisis_scenario(CrisisConfig(seed=7))
        second = build_crisis_scenario(CrisisConfig(seed=7))
        availability = AvailabilityObjective()
        assert availability.evaluate(first.model, first.model.deployment) == \
            availability.evaluate(second.model, second.model.deployment)

    def test_invalid_config_rejected(self):
        with pytest.raises(ModelError):
            build_crisis_scenario(CrisisConfig(commanders=0))

    def test_scales_with_config(self):
        small = build_crisis_scenario(CrisisConfig(
            commanders=2, troops_per_commander=2, seed=1))
        large = build_crisis_scenario(CrisisConfig(
            commanders=4, troops_per_commander=5, seed=1))
        assert len(large.model.host_ids) > len(small.model.host_ids)
        assert len(large.troops) == 20


class TestClientServerScenario:
    def test_two_hosts_one_link(self):
        scenario = build_client_server(seed=1)
        assert len(scenario.model.host_ids) == 2
        assert len(scenario.model.physical_links) == 1

    def test_pins(self):
        scenario = build_client_server(seed=1)
        assert dict(scenario.model.deployment)["ui"] == "client"
        assert dict(scenario.model.deployment)["db"] == "server"

    def test_movable_population(self):
        scenario = build_client_server(middle_components=11, seed=1)
        assert len(scenario.movable) == 11
        for component in scenario.movable:
            assert scenario.model.logical_link(component, "ui") is not None
            assert scenario.model.logical_link(component, "db") is not None


class TestSensorFieldScenario:
    def test_grid_links_are_neighbor_only(self):
        scenario = build_sensor_field(rows=3, cols=3, seed=1)
        model = scenario.model
        assert len(model.host_ids) == 9
        # Corner node has exactly two links.
        corner = scenario.node(0, 0)
        assert len(model.host_neighbors(corner)) == 2
        # No diagonal shortcut.
        assert model.physical_link(scenario.node(0, 0),
                                   scenario.node(1, 1)) is None

    def test_components_deployed_and_valid(self):
        scenario = build_sensor_field(seed=2)
        scenario.model.validate_deployment()
        assert MemoryConstraint().is_satisfied(scenario.model,
                                               scenario.model.deployment)

    def test_one_sampler_per_node(self):
        scenario = build_sensor_field(rows=2, cols=2, seed=3)
        samplers = [c for c in scenario.model.component_ids
                    if c.startswith("sampler")]
        assert len(samplers) == 4

    def test_invalid_grid_rejected(self):
        with pytest.raises(ModelError):
            build_sensor_field(rows=0)
