"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.desi import xadl


@pytest.fixture
def architecture_file(tmp_path):
    path = str(tmp_path / "arch.xml")
    code = main(["generate", "--hosts", "3", "--components", "6",
                 "--seed", "4", "-o", path])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_xadl(self, architecture_file):
        model = xadl.load(architecture_file)
        assert len(model.host_ids) == 3
        assert len(model.component_ids) == 6
        model.validate_deployment()

    def test_stdout_mode(self, capsys):
        assert main(["generate", "--hosts", "2", "--components", "3"]) == 0
        out = capsys.readouterr().out
        assert "<deploymentArchitecture" in out

    def test_seed_reproducibility(self, tmp_path):
        a = str(tmp_path / "a.xml")
        b = str(tmp_path / "b.xml")
        main(["generate", "--seed", "9", "-o", a])
        main(["generate", "--seed", "9", "-o", b])
        assert open(a).read() == open(b).read()


class TestInspect:
    def test_tables(self, architecture_file, capsys):
        assert main(["inspect", architecture_file]) == 0
        out = capsys.readouterr().out
        assert "PARAMETERS / hosts" in out
        assert "availability of current deployment" in out

    def test_graph_and_dot(self, architecture_file, capsys):
        main(["inspect", architecture_file, "--graph"])
        assert "physical links:" in capsys.readouterr().out
        main(["inspect", architecture_file, "--dot"])
        assert capsys.readouterr().out.startswith("graph deployment {")


class TestImprove:
    def test_reports_results(self, architecture_file, capsys):
        code = main(["improve", architecture_file, "-a", "avala",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initial availability" in out
        assert "avala:" in out

    def test_apply_writes_back(self, architecture_file, tmp_path):
        before = dict(xadl.load(architecture_file).deployment)
        output = str(tmp_path / "improved.xml")
        code = main(["improve", architecture_file, "-a", "exact",
                     "--apply", "-o", output, "--seed", "1"])
        assert code == 0
        improved = xadl.load(output)
        from repro.core import AvailabilityObjective
        objective = AvailabilityObjective()
        original = xadl.load(architecture_file)
        assert objective.evaluate(improved, improved.deployment) >= \
            objective.evaluate(original, before) - 1e-9

    def test_multiple_objectives(self, architecture_file, capsys):
        code = main(["improve", architecture_file, "-a", "hillclimb",
                     "--objective", "latency", "--seed", "1"])
        assert code == 0
        assert "latency" in capsys.readouterr().out


class TestSweep:
    def test_table_output(self, capsys):
        code = main(["sweep", "--family", "tiny:3:5", "-a", "avala",
                     "--replicates", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "best for tiny: avala" in out

    def test_bad_family_spec(self, capsys):
        assert main(["sweep", "--family", "nonsense", "-a", "avala"]) == 2


class TestSimulate:
    def test_crisis_trajectory(self, capsys):
        code = main(["simulate", "--scenario", "crisis", "--duration",
                     "20", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t=0" in out
        assert "availability" in out
        assert "redeploy" in out  # at least one cycle summary printed


BAD_CAPACITY = """
<deploymentArchitecture name="overloaded">
  <host id="h1"><param name="memory" value="10.0" type="float"/></host>
  <host id="h2"><param name="memory" value="10.0" type="float"/></host>
  <physicalLink hostA="h1" hostB="h2">
    <param name="reliability" value="0.9" type="float"/>
  </physicalLink>
  <component id="c1"><param name="memory" value="25.0" type="float"/></component>
  <deployment component="c1" host="h1"/>
</deploymentArchitecture>
"""

BAD_DANGLING = """
<deploymentArchitecture name="dangling">
  <host id="h1"/>
  <component id="c1"/>
  <logicalLink componentA="c1" componentB="ghost"/>
  <deployment component="c1" host="h1"/>
</deploymentArchitecture>
"""


class TestLint:
    def write(self, tmp_path, text):
        path = tmp_path / "arch.xml"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_bundled_scenarios_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        for scenario in ("crisis", "sensorfield", "clientserver"):
            assert f"scenario {scenario}" in out

    def test_capacity_violation_fails(self, tmp_path, capsys):
        path = self.write(tmp_path, BAD_CAPACITY)
        assert main(["lint", path]) == 1
        assert "MV003" in capsys.readouterr().out

    def test_dangling_link_fails(self, tmp_path, capsys):
        path = self.write(tmp_path, BAD_DANGLING)
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "XD002" in out and "ghost" in out

    def test_force_reports_but_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, BAD_CAPACITY)
        assert main(["lint", path, "--force"]) == 0
        assert "MV003" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        import json
        path = self.write(tmp_path, BAD_CAPACITY)
        assert main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["error"] == 1
        assert payload["findings"][0]["rule"] == "MV003"

    def test_fail_on_threshold(self, capsys):
        # sensorfield has info-level findings (isolated components) only.
        assert main(["lint", "sensorfield"]) == 0
        capsys.readouterr()
        assert main(["lint", "sensorfield", "--fail-on", "info"]) == 1

    def test_unknown_target_is_usage_error(self, capsys):
        assert main(["lint", "not-a-scenario-or-file"]) == 2

    def test_code_analyzer_on_clean_file(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("def f(x):\n    return x\n", encoding="utf-8")
        assert main(["lint", "--code", str(clean)]) == 0

    def test_code_analyzer_flags_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        assert main(["lint", "--code", str(bad)]) == 1
        assert "CD006" in capsys.readouterr().out

    def test_generated_architecture_lints_clean(self, architecture_file):
        assert main(["lint", architecture_file]) == 0


class TestLintExitCodeMatrix:
    """The --fail-on × severity contract, --force, output modes, and
    empty input, exercised end-to-end through main()."""

    ERROR_SRC = "def f(x=[]):\n    return x\n"          # CD006 (error)
    WARNING_SRC = ("def f():\n"
                   "    try:\n"
                   "        g()\n"
                   "    except ValueError:\n"
                   "        pass\n")                     # CD005 (warning)
    CLEAN_SRC = "def f(x):\n    return x\n"

    def write(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)

    def test_error_finding_across_thresholds(self, tmp_path, capsys):
        path = self.write(tmp_path, self.ERROR_SRC)
        for fail_on in ("error", "warning", "info"):
            capsys.readouterr()
            assert main(["lint", "--code", path,
                         "--fail-on", fail_on]) == 1

    def test_warning_finding_across_thresholds(self, tmp_path, capsys):
        path = self.write(tmp_path, self.WARNING_SRC)
        assert main(["lint", "--code", path, "--fail-on", "error"]) == 0
        capsys.readouterr()
        assert main(["lint", "--code", path, "--fail-on", "warning"]) == 1
        capsys.readouterr()
        assert main(["lint", "--code", path, "--fail-on", "info"]) == 1

    def test_clean_file_across_thresholds(self, tmp_path, capsys):
        path = self.write(tmp_path, self.CLEAN_SRC)
        for fail_on in ("error", "warning", "info"):
            capsys.readouterr()
            assert main(["lint", "--code", path,
                         "--fail-on", fail_on]) == 0

    def test_force_wins_at_every_threshold(self, tmp_path, capsys):
        path = self.write(tmp_path, self.ERROR_SRC)
        for fail_on in ("error", "warning", "info"):
            capsys.readouterr()
            assert main(["lint", "--code", path, "--fail-on", fail_on,
                         "--force"]) == 0
            assert "ignored (--force)" in capsys.readouterr().err

    def test_json_mode_keeps_exit_code(self, tmp_path, capsys):
        import json
        path = self.write(tmp_path, self.ERROR_SRC)
        assert main(["lint", "--code", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "CD006"

    def test_quiet_mode_keeps_exit_code(self, tmp_path, capsys):
        path = self.write(tmp_path, self.ERROR_SRC)
        assert main(["lint", "--code", path, "--quiet"]) == 1
        out = capsys.readouterr().out
        assert "error" in out and "CD006" not in out

    def test_quiet_on_clean_input(self, tmp_path, capsys):
        path = self.write(tmp_path, self.CLEAN_SRC)
        assert main(["lint", "--code", path, "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == "clean"

    def test_empty_directory_is_clean(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(["lint", "--code", str(empty)]) == 0

    def test_missing_target_is_error(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.py")
        assert main(["lint", "--code", missing]) != 0


class TestLintPlumbingCli:
    def test_sarif_output_to_file(self, tmp_path, capsys):
        import json
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        out = str(tmp_path / "report.sarif")
        assert main(["lint", "--code", str(bad), "--sarif",
                     "-o", out]) == 1
        with open(out, "r", encoding="utf-8") as handle:
            log = json.load(handle)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"][0]["ruleId"] == "CD006"

    def test_baseline_suppresses_and_write_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--code", str(bad),
                     "--write-baseline", baseline]) == 0
        capsys.readouterr()
        assert main(["lint", "--code", str(bad),
                     "--baseline", baseline]) == 0
        assert main(["lint", "--code", str(bad)]) == 1

    def test_cache_flag_hits_on_second_run(self, tmp_path, capsys):
        src = tmp_path / "ok.py"
        src.write_text("VALUE = 1\n", encoding="utf-8")
        cache = str(tmp_path / "cache.json")
        assert main(["lint", "--code", str(src), "--cache", cache]) == 0
        assert "misses=1" in capsys.readouterr().err
        assert main(["lint", "--code", str(src), "--cache", cache]) == 0
        assert "hits=1 misses=0" in capsys.readouterr().err

    def test_no_cache_disables_cache(self, tmp_path, capsys):
        src = tmp_path / "ok.py"
        src.write_text("VALUE = 1\n", encoding="utf-8")
        cache = str(tmp_path / "cache.json")
        assert main(["lint", "--code", str(src), "--cache", cache,
                     "--no-cache"]) == 0
        assert "lint cache" not in capsys.readouterr().err
        assert not (tmp_path / "cache.json").exists()

    def test_jobs_flag_matches_serial(self, tmp_path, capsys):
        for index in range(3):
            (tmp_path / f"m{index}.py").write_text(
                "def f(x=[]):\n    return x\n", encoding="utf-8")
        assert main(["lint", "--code", str(tmp_path), "--json"]) == 1
        serial = capsys.readouterr().out
        assert main(["lint", "--code", str(tmp_path), "--json",
                     "--jobs", "2"]) == 1
        assert capsys.readouterr().out == serial


class TestObsVerb:
    @pytest.fixture
    def capture_file(self, tmp_path, capsys):
        path = str(tmp_path / "capture.jsonl")
        code = main(["obs", "record", "-o", path, "--duration", "12",
                     "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "subsystems" in out
        return path

    def test_record_then_report(self, capture_file, capsys):
        assert main(["obs", "report", capture_file]) == 0
        out = capsys.readouterr().out
        assert "spans (sim-time" in out
        assert "metrics:" in out
        # The required subsystems all show up in one rendered report.
        for subsystem in ("middleware", "sim.network", "monitoring",
                          "algorithms", "effector"):
            assert subsystem in out, subsystem

    def test_report_json_reemits_canonical_lines(self, capture_file,
                                                 capsys):
        assert main(["obs", "report", capture_file, "--json"]) == 0
        out = capsys.readouterr().out
        assert out == open(capture_file).read()

    def test_report_sections_can_be_suppressed(self, capture_file, capsys):
        main(["obs", "report", capture_file, "--metrics-only"])
        assert "spans" not in capsys.readouterr().out
        main(["obs", "report", capture_file, "--spans-only"])
        assert "metrics" not in capsys.readouterr().out

    def test_diff_of_identical_captures(self, capture_file, capsys):
        assert main(["obs", "diff", capture_file, capture_file]) == 0
        out = capsys.readouterr().out
        assert "metrics: identical" in out
        assert "spans: identical" in out

    def test_report_on_missing_file_is_error(self, capsys):
        assert main(["obs", "report", "/nonexistent/capture.jsonl"]) == 2
        assert "cannot read capture" in capsys.readouterr().err

    def test_report_on_garbage_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["obs", "report", str(path)]) == 2
        assert "cannot read capture" in capsys.readouterr().err


class TestUnifiedOutputFlags:
    FAMILY = ["--family", "f:3:5", "-a", "avala", "--replicates", "1"]

    def test_sweep_json(self, capsys):
        assert main(["sweep", *self.FAMILY, "--json"]) == 0
        import json as _json
        data = _json.loads(capsys.readouterr().out)
        assert data["objective"] == "availability"
        assert data["cells"][0]["algorithm"] == "avala"
        assert "engine_counters" in data["cells"][0]

    def test_sweep_quiet(self, capsys):
        assert main(["sweep", *self.FAMILY, "--quiet"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.count("\n") == 0
        assert "sweep" in out

    def test_improve_json(self, architecture_file, capsys):
        assert main(["improve", architecture_file, "-a", "avala",
                     "--json"]) == 0
        import json as _json
        data = _json.loads(capsys.readouterr().out)
        assert data[0]["algorithm"] == "avala"
        assert "deployment" in data[0]

    def test_improve_quiet(self, architecture_file, capsys):
        assert main(["improve", architecture_file, "-a", "avala",
                     "--quiet"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.count("\n") == 0
        assert "avala" in out

    def test_json_and_quiet_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", *self.FAMILY, "--json", "--quiet"])

    def test_lint_quiet(self, capsys):
        assert main(["lint", "crisis", "--quiet"]) == 0
        out = capsys.readouterr().out.strip()
        assert out == "clean" or "error" not in out

    def test_faults_run_quiet_and_capture(self, tmp_path, capsys):
        capture = str(tmp_path / "faults.jsonl")
        assert main(["faults", "run", "--scenario", "clientserver",
                     "--duration", "10", "--quiet",
                     "--capture", capture]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip().count("\n") == 0
        assert "delivered" in captured.out
        assert "observability capture" in captured.err
        from repro.obs.capture import Capture
        loaded = Capture.load(capture)
        assert "faults" in loaded.subsystems()

    def test_faults_run_json(self, capsys):
        assert main(["faults", "run", "--scenario", "clientserver",
                     "--duration", "10", "--json"]) == 0
        import json as _json
        data = _json.loads(capsys.readouterr().out)
        assert "availability" in data


class TestPlan:
    def build(self, architecture_file, tmp_path, *extra):
        path = str(tmp_path / "schedule.json")
        code = main(["plan", "build", architecture_file, "--seed", "3",
                     "-o", path, *extra])
        assert code == 0
        return path

    def test_build_writes_loadable_schedule(self, architecture_file,
                                            tmp_path, capsys):
        path = self.build(architecture_file, tmp_path)
        from repro.plan import schedule_from_json
        schedule = schedule_from_json(open(path).read())
        assert schedule.final_state() == schedule.target
        assert "wrote schedule to" in capsys.readouterr().out

    def test_build_stdout_render(self, architecture_file, capsys):
        assert main(["plan", "build", architecture_file,
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "waves" in out

    def test_show_round_trip(self, architecture_file, tmp_path, capsys):
        path = self.build(architecture_file, tmp_path)
        capsys.readouterr()
        assert main(["plan", "show", path]) == 0
        assert "waves" in capsys.readouterr().out

    def test_lint_clean_schedule_exits_zero(self, architecture_file,
                                            tmp_path, capsys):
        path = self.build(architecture_file, tmp_path)
        assert main(["plan", "lint", path, "--model",
                     architecture_file]) == 0
        out = capsys.readouterr().out
        assert "PL" not in out or "0 findings" in out

    def test_lint_drifted_model_reports_pl003(self, architecture_file,
                                              tmp_path, capsys):
        path = self.build(architecture_file, tmp_path)
        other = str(tmp_path / "drifted.xml")
        main(["generate", "--hosts", "3", "--components", "6",
              "--seed", "5", "-o", other])
        capsys.readouterr()
        code = main(["plan", "lint", path, "--model", other])
        out = capsys.readouterr().out
        # Either the drifted world happens to satisfy the schedule, or
        # the verifier must say why it does not.
        assert code in (0, 1)
        if code:
            assert "PL" in out

    def test_diff_naive_vs_packed(self, architecture_file, tmp_path,
                                  capsys):
        packed = self.build(architecture_file, tmp_path)
        naive = str(tmp_path / "naive.json")
        assert main(["plan", "build", architecture_file, "--seed", "3",
                     "--naive", "-o", naive]) == 0
        capsys.readouterr()
        assert main(["plan", "diff", packed, naive]) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_show_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["plan", "show", str(tmp_path / "nope.json")]) == 2
        assert "cannot read schedule" in capsys.readouterr().err
