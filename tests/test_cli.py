"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.desi import xadl


@pytest.fixture
def architecture_file(tmp_path):
    path = str(tmp_path / "arch.xml")
    code = main(["generate", "--hosts", "3", "--components", "6",
                 "--seed", "4", "-o", path])
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_xadl(self, architecture_file):
        model = xadl.load(architecture_file)
        assert len(model.host_ids) == 3
        assert len(model.component_ids) == 6
        model.validate_deployment()

    def test_stdout_mode(self, capsys):
        assert main(["generate", "--hosts", "2", "--components", "3"]) == 0
        out = capsys.readouterr().out
        assert "<deploymentArchitecture" in out

    def test_seed_reproducibility(self, tmp_path):
        a = str(tmp_path / "a.xml")
        b = str(tmp_path / "b.xml")
        main(["generate", "--seed", "9", "-o", a])
        main(["generate", "--seed", "9", "-o", b])
        assert open(a).read() == open(b).read()


class TestInspect:
    def test_tables(self, architecture_file, capsys):
        assert main(["inspect", architecture_file]) == 0
        out = capsys.readouterr().out
        assert "PARAMETERS / hosts" in out
        assert "availability of current deployment" in out

    def test_graph_and_dot(self, architecture_file, capsys):
        main(["inspect", architecture_file, "--graph"])
        assert "physical links:" in capsys.readouterr().out
        main(["inspect", architecture_file, "--dot"])
        assert capsys.readouterr().out.startswith("graph deployment {")


class TestImprove:
    def test_reports_results(self, architecture_file, capsys):
        code = main(["improve", architecture_file, "-a", "avala",
                     "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initial availability" in out
        assert "avala:" in out

    def test_apply_writes_back(self, architecture_file, tmp_path):
        before = dict(xadl.load(architecture_file).deployment)
        output = str(tmp_path / "improved.xml")
        code = main(["improve", architecture_file, "-a", "exact",
                     "--apply", "-o", output, "--seed", "1"])
        assert code == 0
        improved = xadl.load(output)
        from repro.core import AvailabilityObjective
        objective = AvailabilityObjective()
        original = xadl.load(architecture_file)
        assert objective.evaluate(improved, improved.deployment) >= \
            objective.evaluate(original, before) - 1e-9

    def test_multiple_objectives(self, architecture_file, capsys):
        code = main(["improve", architecture_file, "-a", "hillclimb",
                     "--objective", "latency", "--seed", "1"])
        assert code == 0
        assert "latency" in capsys.readouterr().out


class TestSweep:
    def test_table_output(self, capsys):
        code = main(["sweep", "--family", "tiny:3:5", "-a", "avala",
                     "--replicates", "2", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "best for tiny: avala" in out

    def test_bad_family_spec(self, capsys):
        assert main(["sweep", "--family", "nonsense", "-a", "avala"]) == 2


class TestSimulate:
    def test_crisis_trajectory(self, capsys):
        code = main(["simulate", "--scenario", "crisis", "--duration",
                     "20", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t=0" in out
        assert "availability" in out
        assert "redeploy" in out  # at least one cycle summary printed
