"""Unit tests for the span tracer."""

from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0


class TestTracer:
    def test_nesting_builds_parent_child_tree(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b"):
                pass
        assert [r.name for r in tracer.roots] == ["parent"]
        assert [c.name for c in tracer.roots[0].children] == \
            ["child.a", "child.b"]

    def test_durations_come_from_bound_time_source(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind(lambda: clock.now)
        with tracer.span("outer"):
            clock.now = 2.0
            with tracer.span("inner"):
                clock.now = 5.0
        outer = tracer.roots[0]
        assert outer.start == 0.0 and outer.end == 5.0
        assert outer.duration == 5.0
        inner = outer.children[0]
        assert inner.start == 2.0 and inner.end == 5.0

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", phase="x") as span:
            span.set(moves=3, path=("a", "b"))
        recorded = tracer.roots[0].attributes
        assert recorded["phase"] == "x"
        assert recorded["moves"] == 3
        # Tuples are sanitized to lists at record time (JSON-safe).
        assert recorded["path"] == ["a", "b"]

    def test_exception_still_closes_span(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind(lambda: clock.now)
        try:
            with tracer.span("failing"):
                clock.now = 1.0
                raise ValueError("boom")
        except ValueError:
            pass
        assert tracer.roots[0].end == 1.0
        assert tracer.current() is None

    def test_current_and_clear(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("s"):
            assert tracer.current().name == "s"
        assert len(tracer.roots) == 1
        tracer.clear()
        assert tracer.roots == []

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        assert [s.name for s in tracer.walk()] == ["a", "b", "c", "d"]


class TestNullTracer:
    def test_null_span_is_shared_and_inert(self):
        with NULL_TRACER.span("anything", x=1) as span:
            assert span is NULL_SPAN
            span.set(y=2)  # must not raise or record
        assert list(NULL_TRACER.walk()) == []
        assert NULL_TRACER.current() is None
        assert not NULL_TRACER.enabled


class TestSpan:
    def test_duration_never_negative(self):
        span = Span("s", start=5.0, end=3.0)
        assert span.duration == 0.0
