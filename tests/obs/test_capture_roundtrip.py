"""Property: a capture exported to JSON lines re-imports *exactly*.

Span ids are assigned depth-first at export and parents refer to earlier
ids, so a one-pass reader rebuilds the original trees; floats survive at
``repr`` precision and attributes are sanitized at record time.  Together
those make the round trip an equality, not an approximation — which is
what hypothesis checks here, against arbitrary span forests and metric
mixes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ReproError
from repro.obs.capture import Capture
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="._-"),
    min_size=1, max_size=20)
floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e9, max_value=1e9)
attr_values = st.one_of(
    st.none(), st.booleans(), st.integers(-10**9, 10**9), floats, names)
attributes = st.dictionaries(names, attr_values, max_size=4)


@st.composite
def spans(draw, depth=0):
    span = Span(draw(names), start=draw(floats), end=draw(floats),
                attributes=draw(attributes))
    if depth < 3:
        span.children = draw(st.lists(spans(depth=depth + 1), max_size=3))
    return span


@st.composite
def registries(draw):
    registry = MetricsRegistry()
    labels = st.dictionaries(st.sampled_from(["link", "kind", "host"]),
                             names, max_size=2)
    for name in draw(st.lists(names, max_size=4, unique=True)):
        registry.counter(name, **draw(labels)).inc(
            draw(st.floats(min_value=0, max_value=1e9)))
    for name in draw(st.lists(names, max_size=3, unique=True)):
        gauge = registry.gauge("g." + name)
        for value in draw(st.lists(floats, max_size=4)):
            gauge.set(value)
    for name in draw(st.lists(names, max_size=2, unique=True)):
        hist = registry.histogram("h." + name)
        for value in draw(st.lists(floats, max_size=5)):
            hist.observe(value)
    return registry


@settings(max_examples=60, deadline=None)
@given(metrics=registries(), roots=st.lists(spans(), max_size=4),
       label=names | st.just(""))
def test_capture_round_trips_exactly(metrics, roots, label):
    capture = Capture(metrics, roots, label)
    text = capture.dumps()
    rebuilt = Capture.loads(text)
    assert rebuilt.label == capture.label
    assert rebuilt.metrics.to_lines() == capture.metrics.to_lines()
    assert rebuilt.spans == capture.spans  # dataclass equality, recursive
    # And the rebuilt capture serializes to the same bytes.
    assert rebuilt.dumps() == text


class TestMalformedCaptures:
    def test_bad_json_rejected(self):
        with pytest.raises(ReproError, match="invalid JSON"):
            Capture.loads('{"type": "meta", broken\n')

    def test_unknown_version_rejected(self):
        with pytest.raises(ReproError, match="version"):
            Capture.loads('{"type": "meta", "version": 99, "label": ""}\n')

    def test_unknown_line_type_rejected(self):
        with pytest.raises(ReproError, match="unknown type"):
            Capture.loads('{"type": "mystery"}\n')

    def test_forward_parent_reference_rejected(self):
        line = ('{"type": "span", "id": 0, "parent": 7, "name": "x", '
                '"start": 0.0, "end": 1.0, "attrs": {}}')
        with pytest.raises(ReproError, match="parent"):
            Capture.loads(line + "\n")

    def test_blank_lines_ignored(self):
        capture = Capture.loads(
            '{"type": "meta", "version": 1, "label": "ok"}\n\n\n')
        assert capture.label == "ok"
