"""Unit tests for the metric instruments and registry."""

import pytest

from repro.core.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_BUCKETS, MetricsRegistry, NULL_METRICS,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.hits")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("a.hits")
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.hits", link="x") \
            is registry.counter("a.hits", link="x")
        assert registry.counter("a.hits", link="x") \
            is not registry.counter("a.hits", link="y")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a.level")
        with pytest.raises(ReproError):
            registry.gauge("a.level")


class TestGauge:
    def test_set_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("q.depth")
        gauge.set(3)
        gauge.set(10)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high == 10

    def test_add_is_relative(self):
        gauge = MetricsRegistry().gauge("q.depth")
        gauge.add(5)
        gauge.add(-3)
        assert gauge.value == 2
        assert gauge.high == 5


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert hist.count == 3
        assert hist.sum == 55.5
        assert hist.min == 0.5
        assert hist.max == 50.0

    def test_boundaries_must_increase(self):
        with pytest.raises(ReproError):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ReproError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_default_buckets_cover_decades(self):
        assert DEFAULT_BUCKETS[0] == 0.001
        assert DEFAULT_BUCKETS[-1] == 1000.0
        assert all(a < b for a, b in zip(DEFAULT_BUCKETS,
                                         DEFAULT_BUCKETS[1:]))


class TestRegistry:
    def test_iteration_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b.second")
        registry.counter("a.first", link="z")
        registry.counter("a.first", link="a")
        names = [(i.name, i.labels) for i in registry]
        assert names == sorted(names)

    def test_value_convenience(self):
        registry = MetricsRegistry()
        registry.counter("a.hits").inc(7)
        assert registry.value("a.hits") == 7
        assert registry.value("missing") == 0.0

    def test_lines_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", link="x").inc(3)
        gauge = registry.gauge("g")
        gauge.set(9)
        gauge.set(1)
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(99.0)
        rebuilt = MetricsRegistry()
        for line in registry.to_lines():
            rebuilt.load_line(line)
        assert rebuilt.to_lines() == registry.to_lines()

    def test_merge_counters_add_gauges_max_histograms_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(5)
        b.gauge("g").set(4)
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("c") == 5
        assert a.get("g").value == 5
        hist = a.get("h")
        assert hist.counts == [1, 1]
        assert hist.count == 2
        assert hist.min == 0.5
        assert hist.max == 2.0


class TestNullMetrics:
    def test_null_instruments_are_shared_and_inert(self):
        first = NULL_METRICS.counter("a", x=1)
        second = NULL_METRICS.counter("b")
        assert first is second
        first.inc(100)
        assert first.value == 0.0
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert len(NULL_METRICS) == 0
        assert not NULL_METRICS.enabled
