"""End-to-end instrumentation: the improvement loop fills a capture.

Acceptance contract for the observability layer: one instrumented
Analyzer improvement cycle must surface spans and metrics from at least
five subsystems (middleware, sim, monitoring, algorithms, effector), the
same seed must produce a byte-identical capture, and running with a
disabled bundle must behave exactly like not passing one at all.
"""

from repro.core import AvailabilityObjective
from repro.core.framework import CentralizedFramework
from repro.faults import rolling_partitions, run_campaign
from repro.middleware import DistributedSystem
from repro.obs import (
    NULL_OBS, Observability, get_observability, observe, set_observability,
)
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import InteractionWorkload, SimClock


def drive_crisis_loop(duration=12.0, seed=0, obs=None):
    """One instrumented closed-loop run; returns (framework, capture)."""
    obs = obs if obs is not None else Observability()
    scenario = build_crisis_scenario(CrisisConfig(seed=seed))
    clock = SimClock()
    obs.bind_clock(clock)
    system = DistributedSystem(scenario.model, clock,
                               master_host=scenario.hq, seed=seed, obs=obs)
    framework = CentralizedFramework(
        system, AvailabilityObjective(), scenario.constraints,
        user_input=scenario.user_input, monitor_interval=2.0,
        seed=seed, obs=obs)
    framework.start(cycles_per_analysis=2)
    workload = InteractionWorkload(scenario.model, clock, system.emit,
                                   seed=seed + 1).start()
    clock.run(duration)
    workload.stop()
    framework.stop()
    return framework, obs.capture(label="test")


class TestImprovementCycleCapture:
    def test_capture_spans_at_least_five_subsystems(self):
        framework, capture = drive_crisis_loop()
        assert framework.cycles, "loop must have analyzed at least once"
        subsystems = set(capture.subsystems())
        assert {"middleware", "sim", "monitoring", "algorithms",
                "effector"} <= subsystems

    def test_cycle_span_tree_shape(self):
        __, capture = drive_crisis_loop()
        rollup = capture.span_rollup()
        assert ("framework.window",) in rollup
        assert ("framework.window", "monitoring.interval") in rollup
        assert ("framework.window", "analyzer.cycle") in rollup
        assert ("framework.window", "analyzer.cycle",
                "analyzer.portfolio") in rollup

    def test_core_counters_populated(self):
        framework, capture = drive_crisis_loop()
        metrics = capture.metrics
        assert metrics.value("framework.cycles") == len(framework.cycles)
        assert metrics.value("monitoring.windows") > 0
        assert metrics.value("middleware.scaffold.dispatched") > 0
        assert metrics.value("algorithms.portfolio_runs") > 0
        delivered = sum(inst.value for inst in metrics
                        if inst.name == "sim.network.delivered")
        assert delivered > 0

    def test_same_seed_byte_identical_capture(self):
        __, first = drive_crisis_loop(seed=3)
        __, second = drive_crisis_loop(seed=3)
        assert first.dumps() == second.dumps()

    def test_render_mentions_spans_and_metrics(self):
        __, capture = drive_crisis_loop()
        text = capture.render()
        assert "framework.window" in text
        assert "middleware.scaffold.dispatched" in text
        assert capture.render(show_spans=False).count("framework.window") == 0


class TestDisabledBundle:
    def test_disabled_is_the_shared_null_bundle(self):
        assert Observability.disabled() is NULL_OBS
        assert not NULL_OBS.enabled

    def test_disabled_run_matches_unobserved_run(self):
        plain, __ = drive_crisis_loop(seed=5, obs=NULL_OBS)
        # Same run with no instrumentation wiring at all.
        scenario = build_crisis_scenario(CrisisConfig(seed=5))
        clock = SimClock()
        system = DistributedSystem(scenario.model, clock,
                                   master_host=scenario.hq, seed=5)
        framework = CentralizedFramework(
            system, AvailabilityObjective(), scenario.constraints,
            user_input=scenario.user_input, monitor_interval=2.0, seed=5)
        framework.start(cycles_per_analysis=2)
        workload = InteractionWorkload(scenario.model, clock, system.emit,
                                       seed=6).start()
        clock.run(12.0)
        workload.stop()
        framework.stop()
        def deterministic(cycle):
            # Wall-clock elapsed varies run to run; compare what the loop
            # actually decided and did.
            return (cycle.time, cycle.monitoring_updates,
                    cycle.decision.action,
                    dict(cycle.decision.selected.deployment),
                    None if cycle.effect is None
                    else (cycle.effect.moves_executed,
                          cycle.effect.sim_duration))

        assert [deterministic(c) for c in plain.cycles] == \
            [deterministic(c) for c in framework.cycles]

    def test_disabled_capture_is_empty(self):
        __, capture = drive_crisis_loop(seed=5, obs=NULL_OBS)
        assert capture.subsystems() == []
        assert capture.spans == []


class TestProcessDefaultInjection:
    def test_observe_contextmanager_scopes_the_default(self):
        bundle = Observability()
        assert get_observability() is NULL_OBS
        with observe(bundle) as active:
            assert active is bundle
            assert get_observability() is bundle
        assert get_observability() is NULL_OBS

    def test_set_observability_returns_previous(self):
        bundle = Observability()
        previous = set_observability(bundle)
        try:
            assert previous is NULL_OBS
            assert get_observability() is bundle
        finally:
            set_observability(None)
        assert get_observability() is NULL_OBS

    def test_system_constructed_under_observe_is_instrumented(self):
        bundle = Observability()
        scenario = build_crisis_scenario(CrisisConfig(seed=1))
        clock = SimClock()
        with observe(bundle):
            system = DistributedSystem(scenario.model, clock,
                                       master_host=scenario.hq, seed=1)
        assert system.obs is bundle
        workload = InteractionWorkload(scenario.model, clock, system.emit,
                                       seed=2).start()
        clock.run(2.0)
        workload.stop()
        assert bundle.metrics.value("middleware.scaffold.dispatched") > 0


class TestFaultCampaignCapture:
    def test_run_campaign_obs_hook(self):
        scenario = build_crisis_scenario(CrisisConfig(seed=3))
        plan = rolling_partitions(scenario.model, 15.0,
                                  exclude_hosts=("hq",))
        bundle = Observability()
        observed = run_campaign(plan, seed=11, duration=15.0, obs=bundle)
        unobserved = run_campaign(plan, seed=11, duration=15.0)
        # Observation is read-only: the resilience report is unchanged.
        assert observed.render() == unobserved.render()
        capture = bundle.capture()
        assert "faults" in capture.subsystems()
        fired = sum(inst.value for inst in bundle.metrics
                    if inst.name == "faults.actions")
        assert fired == observed.faults_injected
