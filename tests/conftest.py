"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.desi import Generator, GeneratorConfig


@pytest.fixture
def tiny_model() -> DeploymentModel:
    """2 hosts, 3 components — small enough to reason about by hand.

    Topology::

        hA (mem 100) --- hB (mem 100)     reliability 0.5
        c1 -- c2 (freq 4), c2 -- c3 (freq 1)
        initial: c1,c2 on hA; c3 on hB
    """
    model = DeploymentModel(name="tiny")
    model.add_host("hA", memory=100.0)
    model.add_host("hB", memory=100.0)
    model.connect_hosts("hA", "hB", reliability=0.5, bandwidth=100.0,
                        delay=0.01)
    model.add_component("c1", memory=10.0)
    model.add_component("c2", memory=10.0)
    model.add_component("c3", memory=10.0)
    model.connect_components("c1", "c2", frequency=4.0, evt_size=2.0)
    model.connect_components("c2", "c3", frequency=1.0, evt_size=1.0)
    model.deploy("c1", "hA")
    model.deploy("c2", "hA")
    model.deploy("c3", "hB")
    return model


@pytest.fixture
def small_model() -> DeploymentModel:
    """4 hosts x 8 components, generated deterministically."""
    return Generator(GeneratorConfig(hosts=4, components=8), seed=11).generate()


@pytest.fixture
def medium_model() -> DeploymentModel:
    """8 hosts x 24 components, generated deterministically."""
    return Generator(GeneratorConfig(hosts=8, components=24),
                     seed=23).generate()


@pytest.fixture
def availability() -> AvailabilityObjective:
    return AvailabilityObjective()


@pytest.fixture
def memory_constraints() -> ConstraintSet:
    return ConstraintSet([MemoryConstraint()])
