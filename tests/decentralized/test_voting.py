"""Unit tests for the voting and polling coordination protocols."""

import pytest

from repro.core.errors import SynchronizationError
from repro.decentralized import (
    AwarenessGraph, PollingProtocol, Voter, VotingProtocol,
)


class ScriptedVoter(Voter):
    """Votes and prefers according to fixed scripts."""

    def __init__(self, host, yes=True, prefers=None):
        self._host = host
        self.yes = yes
        self.prefers = prefers
        self.votes_cast = 0

    @property
    def host(self):
        return self._host

    def vote(self, proposal):
        self.votes_cast += 1
        return self.yes

    def preference(self, options, context):
        self.votes_cast += 1
        if self.prefers in options:
            return self.prefers
        return options[0]


def make_world(yes_hosts, no_hosts, awareness_edges=None):
    hosts = list(yes_hosts) + list(no_hosts)
    edges = awareness_edges
    if edges is None:  # fully aware by default
        edges = [(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]]
    graph = AwarenessGraph(hosts, edges)
    participants = {h: ScriptedVoter(h, yes=h in yes_hosts) for h in hosts}
    return graph, participants


class TestVotingProtocol:
    def test_majority_passes(self):
        graph, participants = make_world(["a", "b"], ["c"])
        protocol = VotingProtocol(graph)
        outcome = protocol.conduct(participants["a"], participants,
                                   {"type": "auction_round"})
        assert outcome.passed
        assert set(outcome.yes) == {"a", "b"}
        assert outcome.no == ("c",)

    def test_tie_fails(self):
        graph, participants = make_world(["a"], ["b"])
        protocol = VotingProtocol(graph)
        outcome = protocol.conduct(participants["a"], participants, {})
        assert not outcome.passed

    def test_awareness_limits_electorate(self):
        # a only aware of b; c's (no) vote is never solicited.
        graph, participants = make_world(
            ["a", "b"], ["c"], awareness_edges=[("a", "b"), ("b", "c")])
        protocol = VotingProtocol(graph)
        outcome = protocol.conduct(participants["a"], participants, {})
        assert outcome.participation == 2
        assert participants["c"].votes_cast == 0

    def test_quorum_fraction(self):
        graph, participants = make_world(["a", "b"], ["c", "d"])
        strict = VotingProtocol(graph, quorum_fraction=0.75)
        outcome = strict.conduct(participants["a"], participants, {})
        assert not outcome.passed  # 2/4 < 75%

    def test_invalid_quorum_rejected(self):
        graph, __ = make_world(["a"], [])
        with pytest.raises(SynchronizationError):
            VotingProtocol(graph, quorum_fraction=2.0)

    def test_history_recorded(self):
        graph, participants = make_world(["a"], ["b"])
        protocol = VotingProtocol(graph)
        protocol.conduct(participants["a"], participants, {})
        protocol.conduct(participants["b"], participants, {})
        assert len(protocol.history) == 2


class TestPollingProtocol:
    def test_plurality_wins(self):
        hosts = ["a", "b", "c"]
        graph = AwarenessGraph(hosts, [("a", "b"), ("a", "c"), ("b", "c")])
        participants = {
            "a": ScriptedVoter("a", prefers="go"),
            "b": ScriptedVoter("b", prefers="go"),
            "c": ScriptedVoter("c", prefers="defer"),
        }
        protocol = PollingProtocol(graph)
        outcome = protocol.conduct(participants["a"], participants,
                                   ["go", "defer"])
        assert outcome.winner == "go"
        assert outcome.tally() == {"go": 2, "defer": 1}

    def test_tie_breaks_toward_first_option(self):
        graph = AwarenessGraph(["a", "b"], [("a", "b")])
        participants = {
            "a": ScriptedVoter("a", prefers="x"),
            "b": ScriptedVoter("b", prefers="y"),
        }
        outcome = PollingProtocol(graph).conduct(
            participants["a"], participants, ["y", "x"])
        assert outcome.winner == "y"

    def test_empty_options_rejected(self):
        graph = AwarenessGraph(["a"])
        voter = ScriptedVoter("a")
        with pytest.raises(SynchronizationError):
            PollingProtocol(graph).conduct(voter, {"a": voter}, [])

    def test_rogue_choice_rejected(self):
        graph = AwarenessGraph(["a"])
        voter = ScriptedVoter("a", prefers="not-an-option")
        voter.preference = lambda options, context: "not-an-option"
        with pytest.raises(SynchronizationError, match="unknown option"):
            PollingProtocol(graph).conduct(voter, {"a": voter}, ["x"])

    def test_awareness_limits_poll(self):
        graph = AwarenessGraph(["a", "b", "c"], [("a", "b")])
        participants = {h: ScriptedVoter(h, prefers="x") for h in "abc"}
        outcome = PollingProtocol(graph).conduct(
            participants["a"], participants, ["x", "y"])
        assert set(outcome.choices) == {"a", "b"}
