"""Tests wiring per-host utility preferences into decentralized analyzers."""

import pytest

from repro.core import (
    AvailabilityObjective, DeploymentModel, UserPreferences, UtilityFunction,
)
from repro.decentralized import DecentralizedFramework
from repro.middleware import DistributedSystem
from repro.sim import SimClock


def split_pair_model():
    model = DeploymentModel()
    model.add_host("h0", memory=100.0)
    model.add_host("h1", memory=100.0)
    model.connect_hosts("h0", "h1", reliability=0.6, bandwidth=200.0)
    model.add_component("a", memory=10.0)
    model.add_component("b", memory=10.0)
    model.connect_components("a", "b", frequency=5.0)
    model.deploy("a", "h0")
    model.deploy("b", "h1")
    return model


def indifferent_user():
    """Satisfied by anything above 10% availability."""
    return UserPreferences("easygoing").add(UtilityFunction(
        AvailabilityObjective(), [(0.0, 0.0), (0.1, 1.0)]))


def demanding_user():
    """Unsatisfied below 99% availability."""
    return UserPreferences("demanding").add(UtilityFunction(
        AvailabilityObjective(), [(0.98, 0.0), (0.99, 1.0)]))


class TestPreferenceDrivenRounds:
    def test_satisfied_users_defer_despite_low_availability(self):
        model = split_pair_model()  # availability 0.6
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True, seed=1)
        framework = DecentralizedFramework(
            system, AvailabilityObjective(),
            preferences={host: indifferent_user()
                         for host in model.host_ids})
        report = framework.improvement_round()
        assert report.decision == "defer"
        assert report.moves == 0

    def test_demanding_users_force_action(self):
        model = split_pair_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True, seed=1)
        framework = DecentralizedFramework(
            system, AvailabilityObjective(),
            preferences={host: demanding_user()
                         for host in model.host_ids})
        framework._ingest_monitoring()
        framework.synchronizer.sync_until_quiet()
        report = framework.improvement_round()
        assert report.decision == "redeploy_now"

    def test_mixed_population_plurality_decides(self):
        model = split_pair_model()
        model.add_host("h2", memory=100.0)
        model.connect_hosts("h0", "h2", reliability=0.9)
        model.connect_hosts("h1", "h2", reliability=0.9)
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True, seed=1)
        framework = DecentralizedFramework(
            system, AvailabilityObjective(),
            preferences={
                "h0": demanding_user(),
                "h1": indifferent_user(),
                "h2": indifferent_user(),
            })
        report = framework.improvement_round()
        # 2 of 3 users are satisfied: the poll defers.
        assert report.decision == "defer"

    def test_hosts_without_preferences_use_availability_goal(self):
        model = split_pair_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True, seed=1)
        framework = DecentralizedFramework(
            system, AvailabilityObjective(), availability_goal=0.95,
            preferences={"h0": indifferent_user()})  # h1 has none
        assert framework.analyzers["h0"].preferences is not None
        assert framework.analyzers["h1"].preferences is None
