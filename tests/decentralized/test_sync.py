"""Unit tests for versioned knowledge bases and gossip synchronization."""

import pytest

from repro.core import AvailabilityObjective, DeploymentModel
from repro.decentralized import (
    AwarenessGraph, KnowledgeBase, ModelSynchronizer, from_connectivity,
)


def line_model(n=4):
    model = DeploymentModel()
    for index in range(n):
        model.add_host(f"h{index}", memory=50.0)
    for index in range(n - 1):
        model.connect_hosts(f"h{index}", f"h{index + 1}", reliability=0.8)
    for index in range(n):
        model.add_component(f"c{index}", memory=5.0)
        model.deploy(f"c{index}", f"h{index}")
    for index in range(n - 1):
        model.connect_components(f"c{index}", f"c{index + 1}", frequency=2.0)
    return model


class TestKnowledgeBase:
    def test_observe_and_get(self):
        kb = KnowledgeBase("h0")
        kb.observe("host", "h0", "memory", 64.0)
        assert kb.get("host", "h0", "memory") == 64.0
        assert kb.get("host", "h0", "cpu", default="none") == "none"
        assert kb.knows("host", "h0", "memory")

    def test_newer_observation_wins_locally(self):
        kb = KnowledgeBase("h0")
        kb.observe("host", "h0", "memory", 64.0)
        kb.observe("host", "h0", "memory", 32.0)
        assert kb.get("host", "h0", "memory") == 32.0

    def test_merge_adopts_unknown_facts(self):
        alpha = KnowledgeBase("a")
        beta = KnowledgeBase("b")
        beta.observe("host", "b", "memory", 10.0)
        adopted = alpha.merge_from(beta)
        assert adopted == 1
        assert alpha.get("host", "b", "memory") == 10.0

    def test_merge_keeps_higher_version(self):
        alpha = KnowledgeBase("a")
        beta = KnowledgeBase("b")
        alpha.observe("deployment", "c", "host", "a")      # version 1@a
        beta.observe("deployment", "c", "host", "old")     # version 1@b
        beta.observe("deployment", "c", "host", "new")     # version 2@b
        alpha.merge_from(beta)
        assert alpha.get("deployment", "c", "host") == "new"

    def test_local_observation_after_merge_supersedes(self):
        alpha = KnowledgeBase("a")
        beta = KnowledgeBase("b")
        for __ in range(5):
            beta.observe("host", "b", "memory", 1.0)
        alpha.merge_from(beta)
        alpha.observe("host", "b", "memory", 99.0)
        beta.merge_from(alpha)
        assert beta.get("host", "b", "memory") == 99.0

    def test_merge_is_idempotent(self):
        alpha = KnowledgeBase("a")
        beta = KnowledgeBase("b")
        beta.observe("host", "b", "memory", 10.0)
        alpha.merge_from(beta)
        assert alpha.merge_from(beta) == 0

    def test_observe_model_slice_is_local_only(self):
        model = line_model()
        kb = KnowledgeBase("h1")
        kb.observe_model(model, hosts=["h1"])
        assert kb.knows("host", "h1")
        assert kb.knows("component", "c1")
        assert kb.get("deployment", "c1", "host") == "h1"
        # Sees its links (and thus knows the far ends exist)...
        assert kb.knows("physical_link", ("h0", "h1"))
        assert kb.knows("host", "h0")
        # ...but not distant hosts or their components' placement.
        assert not kb.knows("host", "h3")
        assert not kb.knows("deployment", "c3", "host")


class TestMaterialize:
    def test_full_knowledge_reconstructs_model(self):
        model = line_model()
        kb = KnowledgeBase("omniscient")
        kb.observe_model(model)
        view = kb.materialize()
        assert view.host_ids == model.host_ids
        assert view.component_ids == model.component_ids
        assert dict(view.deployment) == dict(model.deployment)
        objective = AvailabilityObjective()
        assert objective.evaluate(view, view.deployment) == pytest.approx(
            objective.evaluate(model, model.deployment))

    def test_partial_knowledge_materializes_partially(self):
        model = line_model()
        kb = KnowledgeBase("h0")
        kb.observe_model(model, hosts=["h0"])
        view = kb.materialize()
        assert "h0" in view.host_ids
        assert "h3" not in view.host_ids
        assert view.deployment.get("c0") == "h0"


class TestModelSynchronizer:
    def test_propagation_speed_is_one_hop_per_round(self):
        model = line_model(4)
        synchronizer = ModelSynchronizer(from_connectivity(model))
        synchronizer.seed_from_model(model)
        # h3's deployment fact reaches h0 only after 3 rounds.
        assert not synchronizer.base("h0").knows("deployment", "c3", "host")
        synchronizer.sync_round()
        assert not synchronizer.base("h0").knows("deployment", "c3", "host")
        synchronizer.sync_round()
        synchronizer.sync_round()
        assert synchronizer.base("h0").get(
            "deployment", "c3", "host") == "h3"

    def test_sync_until_quiet_converges_to_identical_knowledge(self):
        model = line_model(5)
        synchronizer = ModelSynchronizer(from_connectivity(model))
        synchronizer.seed_from_model(model)
        rounds = synchronizer.sync_until_quiet()
        assert rounds <= 6
        sizes = {len(synchronizer.base(h)) for h in model.host_ids}
        assert len(sizes) == 1  # every KB holds the same fact count

    def test_disconnected_awareness_stays_partitioned(self):
        model = line_model(4)
        # Awareness graph with NO edges: nothing ever propagates.
        isolated = AwarenessGraph(model.host_ids)
        synchronizer = ModelSynchronizer(isolated)
        synchronizer.seed_from_model(model)
        assert synchronizer.sync_round() == 0
        assert not synchronizer.base("h0").knows("host", "h2")

    def test_updates_ripple_after_convergence(self):
        model = line_model(3)
        synchronizer = ModelSynchronizer(from_connectivity(model))
        synchronizer.seed_from_model(model)
        synchronizer.sync_until_quiet()
        # h2 observes a change; h0 learns it after 2 more rounds.
        synchronizer.base("h2").observe("deployment", "c2", "host", "h0")
        synchronizer.sync_round()
        synchronizer.sync_round()
        assert synchronizer.base("h0").get(
            "deployment", "c2", "host") == "h0"
