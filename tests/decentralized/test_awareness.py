"""Unit tests for awareness graphs."""

import pytest

from repro.core.errors import ModelError, UnknownEntityError
from repro.decentralized import (
    AwarenessGraph, from_connectivity, full_awareness, k_hop_awareness,
    random_awareness,
)
from repro.desi import Generator, GeneratorConfig


@pytest.fixture
def line_model():
    """h0 - h1 - h2 - h3 in a line."""
    from repro.core import DeploymentModel
    model = DeploymentModel()
    for index in range(4):
        model.add_host(f"h{index}")
    for index in range(3):
        model.connect_hosts(f"h{index}", f"h{index + 1}")
    model.add_component("c")
    model.deploy("c", "h0")
    return model


class TestAwarenessGraph:
    def test_symmetric(self):
        graph = AwarenessGraph(["a", "b", "c"], [("a", "b")])
        assert graph.are_aware("a", "b")
        assert graph.are_aware("b", "a")
        assert not graph.are_aware("a", "c")

    def test_needs_hosts(self):
        with pytest.raises(ModelError):
            AwarenessGraph([])

    def test_unknown_hosts_rejected(self):
        with pytest.raises(UnknownEntityError):
            AwarenessGraph(["a"], [("a", "ghost")])
        graph = AwarenessGraph(["a", "b"])
        with pytest.raises(UnknownEntityError):
            graph.add("a", "ghost")
        with pytest.raises(UnknownEntityError):
            graph.aware_of("ghost")

    def test_self_edges_ignored(self):
        graph = AwarenessGraph(["a", "b"], [("a", "a")])
        assert graph.aware_of("a") == ()

    def test_awareness_fraction(self):
        graph = AwarenessGraph(["a", "b", "c"],
                               [("a", "b"), ("b", "c"), ("a", "c")])
        assert graph.awareness_fraction() == pytest.approx(1.0)
        sparse = AwarenessGraph(["a", "b", "c"], [("a", "b")])
        assert sparse.awareness_fraction() == pytest.approx((1 + 1 + 0) / 6)

    def test_single_host_fraction_is_one(self):
        assert AwarenessGraph(["solo"]).awareness_fraction() == 1.0

    def test_edges_deduplicated(self):
        graph = AwarenessGraph(["a", "b"], [("a", "b"), ("b", "a")])
        assert graph.edges() == (("a", "b"),)

    def test_as_map_is_mutable_copy(self):
        graph = AwarenessGraph(["a", "b"], [("a", "b")])
        mapping = graph.as_map()
        mapping["a"].clear()
        assert graph.are_aware("a", "b")


class TestBuilders:
    def test_from_connectivity(self, line_model):
        graph = from_connectivity(line_model)
        assert graph.aware_of("h1") == ("h0", "h2")
        assert not graph.are_aware("h0", "h3")

    def test_full_awareness(self, line_model):
        graph = full_awareness(line_model)
        assert graph.awareness_fraction() == 1.0

    def test_k_hop(self, line_model):
        one_hop = k_hop_awareness(line_model, 1)
        two_hop = k_hop_awareness(line_model, 2)
        three_hop = k_hop_awareness(line_model, 3)
        assert one_hop.aware_of("h0") == ("h1",)
        assert two_hop.aware_of("h0") == ("h1", "h2")
        assert three_hop.awareness_fraction() == 1.0
        with pytest.raises(ModelError):
            k_hop_awareness(line_model, 0)

    def test_random_awareness_reaches_fraction(self):
        model = Generator(GeneratorConfig(hosts=8, components=4,
                                          physical_density=0.0),
                          seed=3).generate()
        graph = random_awareness(model, fraction=0.8, seed=1)
        assert graph.awareness_fraction() >= 0.8 - 1e-9

    def test_random_awareness_includes_connectivity(self, line_model):
        graph = random_awareness(line_model, fraction=0.0, seed=1)
        for link in line_model.physical_links:
            assert graph.are_aware(*link.hosts)

    def test_random_awareness_validates_fraction(self, line_model):
        with pytest.raises(ModelError):
            random_awareness(line_model, fraction=1.5)

    def test_random_awareness_monotone_in_fraction(self, line_model):
        low = random_awareness(line_model, 0.3, seed=2)
        high = random_awareness(line_model, 0.9, seed=2)
        assert high.awareness_fraction() >= low.awareness_fraction()
