"""Tests for the message-level auction protocol and the decentralized
framework (Figure 3 / Section 5.2)."""

import pytest

from repro.core import AvailabilityObjective, DeploymentModel
from repro.decentralized import (
    DecentralizedFramework, agent_id, from_connectivity, full_awareness,
)
from repro.middleware import DistributedSystem
from repro.sim import InteractionWorkload, SimClock


def chatty_pair_model():
    """Two hosts over a mediocre link; a chatty pair is split across it."""
    model = DeploymentModel()
    model.add_host("h0", memory=100.0)
    model.add_host("h1", memory=100.0)
    model.connect_hosts("h0", "h1", reliability=0.6, bandwidth=200.0,
                        delay=0.005)
    model.add_component("a", memory=10.0)
    model.add_component("b", memory=10.0)
    model.add_component("loner", memory=10.0)
    model.connect_components("a", "b", frequency=8.0, evt_size=2.0)
    model.deploy("a", "h0")
    model.deploy("b", "h1")
    model.deploy("loner", "h1")
    return model


def build_decentralized(model, seed=3, **kwargs):
    clock = SimClock()
    system = DistributedSystem(model, clock, decentralized=True, seed=seed)
    framework = DecentralizedFramework(system, AvailabilityObjective(),
                                       **kwargs)
    return clock, system, framework


class TestAuctionProtocol:
    def test_winning_auction_migrates_component(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        framework._ingest_monitoring()
        framework.synchronizer.sync_until_quiet()
        agent = framework.agents["h0"]
        assert agent.initiate_auction("a")
        clock.run(5.0)
        # b's host bid highest (it holds the chatty partner): a moved to h1.
        assert system.actual_deployment()["a"] == "h1"
        record = agent.completed[0]
        assert record.winner == "h1"
        assert record.moved

    def test_auction_with_no_interest_keeps_component(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        framework._ingest_monitoring()
        framework.synchronizer.sync_until_quiet()
        agent = framework.agents["h1"]
        # "loner" interacts with nothing: no bid can beat keeping it.
        assert agent.initiate_auction("loner")
        clock.run(5.0)
        assert system.actual_deployment()["loner"] == "h1"
        assert not agent.completed[0].moved

    def test_busy_neighbor_rule_blocks_concurrent_auctions(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model,
                                                       bid_timeout=1.0)
        framework._ingest_monitoring()
        framework.synchronizer.sync_until_quiet()
        initiator = framework.agents["h0"]
        neighbor = framework.agents["h1"]
        assert initiator.initiate_auction("a")
        clock.run(0.1)  # announcement arrives at h1
        assert not neighbor.may_initiate()
        assert not neighbor.try_initiate()
        clock.run(5.0)  # auction closes, result broadcast
        assert neighbor.may_initiate()

    def test_bidder_without_memory_does_not_bid(self):
        model = chatty_pair_model()
        model.set_host_param("h1", "memory", 20.0)  # b + loner fill it
        clock, system, framework = build_decentralized(model)
        framework._ingest_monitoring()
        framework.synchronizer.sync_until_quiet()
        agent = framework.agents["h0"]
        agent.initiate_auction("a")
        clock.run(5.0)
        assert system.actual_deployment()["a"] == "h0"  # nobody could take it
        assert framework.agents["h1"].bids_submitted == 0

    def test_cannot_auction_foreign_component(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        from repro.core.errors import AuctionError
        with pytest.raises(AuctionError):
            framework.agents["h0"].initiate_auction("b")  # b lives on h1


class TestDecentralizedFramework:
    def test_requires_decentralized_system(self, tiny_model):
        clock = SimClock()
        system = DistributedSystem(tiny_model, clock, seed=1)  # centralized
        from repro.core.errors import MiddlewareError
        with pytest.raises(MiddlewareError):
            DecentralizedFramework(system)

    def test_rounds_improve_availability(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        before = framework.ground_truth_availability()
        framework.run(3)
        after = framework.ground_truth_availability()
        assert after > before
        assert after == pytest.approx(1.0)  # a joins b locally

    def test_satisfied_analyzers_defer(self):
        model = chatty_pair_model()
        model.deploy("a", "h1")  # already collocated: availability 1.0
        clock, system, framework = build_decentralized(
            model, availability_goal=0.95)
        report = framework.improvement_round()
        assert report.decision == "defer"
        assert report.auctions == 0

    def test_voting_mode_works_too(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(
            model, use_polling=False)
        framework.run(2)
        assert framework.ground_truth_availability() == pytest.approx(1.0)
        assert len(framework.voting.history) == 2

    def test_status_shape(self):
        model = chatty_pair_model()
        __, __, framework = build_decentralized(model)
        framework.run(1)
        status = framework.status()
        assert set(status) >= {"rounds", "availability",
                               "awareness_fraction", "auctions", "moves"}

    def test_agents_installed_on_every_host(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        for host in model.host_ids:
            assert system.architecture(host).has_component(agent_id(host))

    def test_monitoring_feeds_local_kbs(self):
        model = chatty_pair_model()
        clock, system, framework = build_decentralized(model)
        system.install_monitoring(ping_interval=0.5, pings_per_round=10)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=4).start()
        clock.run(10.0)
        workload.stop()
        framework._ingest_monitoring()
        kb = framework.synchronizer.base("h0")
        measured = kb.get("physical_link", ("h0", "h1"), "reliability")
        assert measured == pytest.approx(0.6, abs=0.12)


class TestAwarenessEffect:
    def grid_model(self):
        """3-host line where the best move needs 2-hop knowledge."""
        model = DeploymentModel()
        for index in range(3):
            model.add_host(f"h{index}", memory=100.0)
        model.connect_hosts("h0", "h1", reliability=0.9, bandwidth=100.0)
        model.connect_hosts("h1", "h2", reliability=0.9, bandwidth=100.0)
        model.add_component("x", memory=10.0)
        model.add_component("y", memory=10.0)
        model.connect_components("x", "y", frequency=5.0, evt_size=1.0)
        model.deploy("x", "h0")
        model.deploy("y", "h2")
        return model

    def test_full_awareness_at_least_as_good(self):
        limited_model = self.grid_model()
        __, __, limited = build_decentralized(
            limited_model, awareness=from_connectivity(limited_model))
        limited.run(4)
        full_model = self.grid_model()
        __, __, fuller = build_decentralized(
            full_model, awareness=full_awareness(full_model))
        fuller.run(4)
        assert fuller.ground_truth_availability() >= \
            limited.ground_truth_availability() - 1e-9
