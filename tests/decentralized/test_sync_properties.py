"""Property-based tests for knowledge-gossip invariants."""

import pytest
from hypothesis import given, settings, strategies as st

import networkx as nx

from repro.decentralized import AwarenessGraph, KnowledgeBase, ModelSynchronizer
from repro.desi import Generator, GeneratorConfig


@st.composite
def awareness_graphs(draw):
    n = draw(st.integers(2, 7))
    hosts = [f"h{i}" for i in range(n)]
    pairs = [(a, b) for i, a in enumerate(hosts) for b in hosts[i + 1:]]
    edges = [pair for pair in pairs if draw(st.booleans())]
    return AwarenessGraph(hosts, edges)


def _components(graph: AwarenessGraph):
    g = nx.Graph()
    g.add_nodes_from(graph.hosts)
    g.add_edges_from(graph.edges())
    return list(nx.connected_components(g)), g


@settings(max_examples=30, deadline=None)
@given(graph=awareness_graphs(), payload=st.integers())
def test_knowledge_spreads_exactly_within_awareness_components(graph,
                                                               payload):
    """After full convergence, a fact is known exactly by the hosts in the
    originator's awareness-connected component — never beyond."""
    synchronizer = ModelSynchronizer(graph)
    origin = graph.hosts[0]
    synchronizer.base(origin).observe("host", origin, "payload", payload)
    synchronizer.sync_until_quiet(max_rounds=len(graph.hosts) + 2)
    components, __ = _components(graph)
    origin_component = next(c for c in components if origin in c)
    for host in graph.hosts:
        knows = synchronizer.base(host).knows("host", origin, "payload")
        assert knows == (host in origin_component)


@settings(max_examples=20, deadline=None)
@given(graph=awareness_graphs())
def test_convergence_within_diameter_rounds(graph):
    """A single fact needs at most ecc(origin) rounds to reach everyone in
    its component."""
    components, g = _components(graph)
    origin = graph.hosts[0]
    synchronizer = ModelSynchronizer(graph)
    synchronizer.base(origin).observe("host", origin, "x", 1)
    origin_component = next(c for c in components if origin in c)
    if len(origin_component) == 1:
        assert synchronizer.sync_round() == 0 or True
        return
    eccentricity = max(
        nx.shortest_path_length(g, origin, other)
        for other in origin_component)
    for __ in range(eccentricity):
        synchronizer.sync_round()
    for host in origin_component:
        assert synchronizer.base(host).knows("host", origin, "x")


@settings(max_examples=20, deadline=None)
@given(graph=awareness_graphs(),
       values=st.lists(st.integers(), min_size=2, max_size=5))
def test_last_writer_wins_everywhere(graph, values):
    """Successive observations of the same fact by one host converge to the
    final value on every host that can hear it."""
    synchronizer = ModelSynchronizer(graph)
    origin = graph.hosts[-1]
    for value in values:
        synchronizer.base(origin).observe("deployment", "c", "host", value)
    synchronizer.sync_until_quiet(max_rounds=len(graph.hosts) + 2)
    components, __ = _components(graph)
    origin_component = next(c for c in components if origin in c)
    for host in origin_component:
        assert synchronizer.base(host).get(
            "deployment", "c", "host") == values[-1]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 3000))
def test_seeded_sync_converges_to_equal_knowledge(seed):
    """Seeding from a generated model and syncing to quiescence leaves all
    hosts in one awareness component with identical knowledge."""
    model = Generator(GeneratorConfig(hosts=5, components=8,
                                      physical_density=0.5),
                      seed=seed).generate()
    from repro.decentralized import from_connectivity
    graph = from_connectivity(model)
    synchronizer = ModelSynchronizer(graph)
    synchronizer.seed_from_model(model)
    synchronizer.sync_until_quiet(max_rounds=10)
    components, __ = _components(graph)
    for component in components:
        fact_sets = {
            frozenset(
                (fact.key[0], repr(fact.key[1]), fact.key[2],
                 repr(fact.value))
                for fact in synchronizer.base(host).facts())
            for host in component
        }
        assert len(fact_sets) == 1
