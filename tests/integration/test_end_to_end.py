"""Integration tests: the full stack end to end (DESIGN.md E9's shape).

These tests run both framework instantiations over the middleware + network
substrate with live workloads, and DeSi attached to a running system.
"""

import pytest

from repro.algorithms import AvalaAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, LatencyObjective, MemoryConstraint,
)
from repro.core.framework import CentralizedFramework
from repro.decentralized import DecentralizedFramework
from repro.desi import (
    AlgorithmContainer, DeSiModel, MiddlewareAdapter, TableView,
)
from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario, build_sensor_field
from repro.sim import InteractionWorkload, SimClock, StepChange


class TestCentralizedCrisisLoop:
    def test_crisis_scenario_improves_and_survives_degradation(self):
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=2, troops_per_commander=2, seed=10))
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host=scenario.hq,
                                   seed=20)
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            scenario.constraints,
            user_input=scenario.user_input,
            monitor_interval=2.0, seed=30)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=40).start()
        # A commander's HQ uplink degrades mid-run.
        StepChange(system.network, scenario.hq, scenario.commanders[0],
                   at=25.0, attribute="reliability", value=0.3).start()
        initial = framework.modeled_availability()
        framework.start(cycles_per_analysis=2)
        clock.run(60.0)
        framework.stop()
        workload.stop()
        final = framework.modeled_availability()
        assert final >= initial
        # Architect pins survived every redeployment.
        assert model.deployment["status_display"] == scenario.hq
        for index in range(len(scenario.commanders)):
            assert model.deployment[f"coordinator{index}"] != scenario.hq
        # Memory constraint holds on the real system.
        assert MemoryConstraint().is_satisfied(
            model, system.actual_deployment())
        # Ground truth delivery is decent.
        assert framework.app_delivery_ratio() > 0.6

    def test_multiple_redeployments_keep_system_consistent(self):
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=2, troops_per_commander=2, seed=11))
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host=scenario.hq,
                                   seed=21)
        framework = CentralizedFramework(
            system, AvailabilityObjective(), scenario.constraints,
            user_input=scenario.user_input, monitor_interval=1.0, seed=31)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=41).start()
        framework.start(cycles_per_analysis=2)
        clock.run(40.0)
        framework.stop()
        workload.stop()
        # Model and actual placement agree after everything settles.
        assert dict(model.deployment) == system.actual_deployment()
        # No application events were black-holed.
        dead = sum(len(arch.dead_letters)
                   for arch in system.architectures.values())
        assert dead == 0


class TestDecentralizedSensorField:
    def test_sensor_field_improves_without_any_master(self):
        scenario = build_sensor_field(rows=3, cols=3, aggregators=3, seed=5)
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, decentralized=True, seed=6)
        system.install_monitoring(ping_interval=0.5, pings_per_round=5)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=7).start()
        clock.run(10.0)
        framework = DecentralizedFramework(
            system, AvailabilityObjective(), bid_timeout=0.3,
            availability_goal=0.99)
        before = framework.ground_truth_availability()
        framework.run(6)
        workload.stop()
        after = framework.ground_truth_availability()
        assert after >= before
        assert framework.status()["moves"] > 0
        # Decentralization invariant: still no deployer anywhere.
        assert system.deployer is None
        # Memory constraint holds on the ground truth.
        assert MemoryConstraint().is_satisfied(
            model, system.actual_deployment())


class TestDeSiAgainstLiveSystem:
    def test_explore_then_deploy(self):
        """The §4.3 workflow: monitor a real system into DeSi, run an
        algorithm, effect the chosen result, observe the improvement."""
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=2, troops_per_commander=2, seed=12))
        model = scenario.model
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host=scenario.hq,
                                   seed=22)
        desi = DeSiModel(model.copy(name="desi"))
        adapter = MiddlewareAdapter(desi, system, epsilon=0.2, window=2)
        system.install_monitoring(ping_interval=0.5, pings_per_round=10,
                                  report_interval=1.0)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=42).start()
        for __ in range(5):
            clock.run(1.0)
            adapter.sync_from_platform()
        workload.stop()

        objective = AvailabilityObjective()
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            objective, scenario.constraints, seed=2))
        container.invoke("avala")
        best = desi.results.best(objective)
        assert best is not None and best.valid

        before = objective.evaluate(model, system.actual_deployment())
        adapter.deploy_to_platform(best)
        after = objective.evaluate(model, system.actual_deployment())
        assert after >= before - 1e-9
        assert system.actual_deployment() == dict(best.deployment)

        # The Figure-9 page renders against the live-monitored model.
        page = TableView(desi).render()
        assert "avala" in page
