"""Scale tests: "large-scale, highly distributed systems" (the paper's
stated target).  The approximative algorithms and the middleware must stay
well-behaved far beyond Exact's reach."""

import time

import pytest

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, StochasticAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, MemoryConstraint,
)
from repro.desi import Generator, GeneratorConfig
from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import SimClock


@pytest.fixture(scope="module")
def big_model():
    """20 hosts x 100 components (2x the paper's largest DeSi screenshots)."""
    config = GeneratorConfig(hosts=20, components=100,
                             physical_density=0.4,
                             host_memory=(40.0, 100.0),
                             memory_headroom=1.3)
    return Generator(config, seed=777).generate("big")


class TestAlgorithmScale:
    def test_avala_scales(self, big_model, availability,
                          memory_constraints):
        start = time.perf_counter()
        result = AvalaAlgorithm(availability, memory_constraints,
                                seed=1).run(big_model)
        elapsed = time.perf_counter() - start
        assert result.valid
        assert result.value > availability.evaluate(big_model,
                                                    big_model.deployment)
        assert elapsed < 10.0  # polynomial, not exponential

    def test_stochastic_scales(self, big_model, availability,
                               memory_constraints):
        result = StochasticAlgorithm(availability, memory_constraints,
                                     seed=1, iterations=10).run(big_model)
        assert result.valid
        assert set(result.deployment) == set(big_model.component_ids)

    def test_decap_scales(self, big_model, availability,
                          memory_constraints):
        start = time.perf_counter()
        result = DecApAlgorithm(availability, memory_constraints, seed=1,
                                max_rounds=10).run(big_model)
        elapsed = time.perf_counter() - start
        assert result.valid
        assert elapsed < 30.0

    def test_incremental_deltas_pay_off(self, big_model, availability):
        """move_delta on a 100-component system must be far cheaper than a
        full evaluation (this is what makes local search viable at scale)."""
        deployment = dict(big_model.deployment)
        component = big_model.component_ids[0]
        target = big_model.host_ids[-1]
        start = time.perf_counter()
        for __ in range(200):
            availability.move_delta(big_model, deployment, component, target)
        delta_time = time.perf_counter() - start
        start = time.perf_counter()
        for __ in range(200):
            availability.evaluate(big_model, deployment)
        full_time = time.perf_counter() - start
        assert delta_time < full_time / 5


class TestMiddlewareScale:
    def test_large_crisis_system_runs_and_redeploys(self):
        scenario = build_crisis_scenario(CrisisConfig(
            commanders=4, troops_per_commander=5, seed=31))
        model = scenario.model
        assert len(model.host_ids) == 25
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host=scenario.hq,
                                   seed=32)
        availability = AvailabilityObjective()
        result = AvalaAlgorithm(availability, scenario.constraints,
                                seed=1).run(model)
        assert result.valid
        stats = system.redeploy(dict(result.deployment))
        assert system.actual_deployment() == dict(result.deployment)
        assert stats["moves"] > 0
        # All architect pins survived the bulk migration.
        assert system.actual_deployment()["status_display"] == scenario.hq
