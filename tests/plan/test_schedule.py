"""The MigrationSchedule data model: structure, serialization, rendering."""

import json

import pytest

from repro.core.errors import ScheduleError
from repro.plan import (
    MigrationSchedule, ScheduledMove, Wave, schedule_from_dict,
    schedule_from_json,
)


def sample_schedule():
    waves = (
        Wave(index=0, eta=0.5, moves=(
            ScheduledMove("x", "a", "d", kb=5.0, route=("a", "d"),
                          eta=0.5, staged=True),)),
        Wave(index=1, eta=0.3, moves=(
            ScheduledMove("y", "b", "a", kb=4.0, route=("b", "c", "a"),
                          eta=0.3),)),
        Wave(index=2, eta=0.4, moves=(
            ScheduledMove("x", "d", "b", kb=5.0, route=("d", "b"),
                          eta=0.4),)),
    )
    return MigrationSchedule(
        current={"x": "a", "y": "b"}, target={"x": "b", "y": "a"},
        waves=waves, makespan=1.2, total_kb=14.0,
        staged_components=("x",))


class TestStructure:
    def test_moves_flatten_in_execution_order(self):
        schedule = sample_schedule()
        assert [m.component for m in schedule.moves] == ["x", "y", "x"]
        assert schedule.move_count == 3

    def test_state_after_walks_barriers(self):
        schedule = sample_schedule()
        assert schedule.state_after(-1) == {"x": "a", "y": "b"}
        assert schedule.state_after(0) == {"x": "d", "y": "b"}
        assert schedule.state_after(1) == {"x": "d", "y": "a"}
        assert schedule.state_after(2) == {"x": "b", "y": "a"}

    def test_state_after_out_of_range_raises(self):
        with pytest.raises(ScheduleError, match="out of range"):
            sample_schedule().state_after(3)

    def test_barrier_states_iterates_every_wave(self):
        schedule = sample_schedule()
        states = list(schedule.barrier_states())
        assert len(states) == 3
        assert states[-1] == schedule.final_state()

    def test_final_state_of_empty_schedule_is_current(self):
        schedule = MigrationSchedule(current={"x": "a"}, target={"x": "a"},
                                     waves=())
        assert schedule.final_state() == {"x": "a"}

    def test_final_state_reaches_target(self):
        schedule = sample_schedule()
        assert schedule.final_state() == schedule.target


class TestSerialization:
    def test_round_trip_is_byte_identical(self):
        schedule = sample_schedule()
        text = schedule.to_json()
        again = schedule_from_json(text)
        assert again.to_json() == text

    def test_staged_flag_survives_round_trip(self):
        again = schedule_from_dict(sample_schedule().to_dict())
        assert again.moves[0].staged is True
        assert again.moves[1].staged is False
        assert again.staged_components == ("x",)

    def test_canonical_json_sorts_mappings(self):
        data = json.loads(sample_schedule().to_json())
        assert list(data["current"]) == sorted(data["current"])
        assert list(data["target"]) == sorted(data["target"])

    def test_malformed_document_raises(self):
        with pytest.raises(ScheduleError, match="malformed"):
            schedule_from_dict({"current": {}, "target": {}})

    def test_invalid_json_raises(self):
        with pytest.raises(ScheduleError, match="not valid JSON"):
            schedule_from_json("{nope")
        with pytest.raises(ScheduleError, match="JSON object"):
            schedule_from_json("[1, 2]")


class TestRendering:
    def test_summary_line_counts(self):
        line = sample_schedule().summary_line()
        assert "3 moves in 3 waves" in line
        assert "1 staged" in line

    def test_render_shows_routes_and_staging(self):
        text = sample_schedule().render()
        assert "wave 0" in text
        assert "[staged]" in text
        assert "via c" in text
        assert "direct" in text

    def test_render_lists_unreachable(self):
        schedule = MigrationSchedule(current={"x": "a"}, target={"x": "b"},
                                     waves=(), unreachable=("x",))
        assert "unreachable: x" in schedule.render()
        assert "1 unreachable" in schedule.summary_line()


class TestDiff:
    def test_identical_schedules(self):
        assert sample_schedule().diff(sample_schedule()) \
            == "schedules are identical"

    def test_moved_wave_and_removed_move(self):
        ours = sample_schedule()
        data = ours.to_dict()
        # Shift y's move into wave 2 and drop x's final hop.
        move_y = data["waves"][1]["moves"][0]
        data["waves"][1]["moves"] = []
        data["waves"][2]["moves"] = [move_y]
        theirs = schedule_from_dict(data)
        text = ours.diff(theirs)
        assert "~ y: b -> a: wave 1 -> wave 2" in text
        assert "- x: d -> b (wave 2)" in text
