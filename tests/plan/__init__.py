"""Tests for the repro.plan wave-scheduling subsystem."""
