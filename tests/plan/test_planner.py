"""The MigrationPlanner: wave admission, staging, packing, determinism."""

import os
import subprocess
import sys

import pytest

from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, MemoryConstraint,
)
from repro.core.errors import ScheduleError
from repro.core.model import DeploymentModel
from repro.plan import (
    MigrationPlanner, build_schedule, candidate_routes, isolation_route,
    naive_schedule, predict_wave_eta,
)


def mesh_world():
    """Four roomy hosts, full mesh, three small components on a."""
    model = DeploymentModel()
    for host in ("a", "b", "c", "d"):
        model.add_host(host, memory=100.0)
    hosts = ("a", "b", "c", "d")
    for i, first in enumerate(hosts):
        for second in hosts[i + 1:]:
            model.connect_hosts(first, second, reliability=1.0,
                                bandwidth=100.0, delay=0.01)
    for component in ("x", "y", "z"):
        model.add_component(component, memory=5.0)
        model.deploy(component, "a")
    return model


def rotation_world():
    """Three exactly-full hosts in a cycle plus an empty buffer host."""
    model = DeploymentModel()
    for host in ("a", "b", "c", "d"):
        model.add_host(host, memory=10.0)
    for pair in (("a", "b"), ("b", "c"), ("c", "a"),
                 ("a", "d"), ("b", "d"), ("c", "d")):
        model.connect_hosts(*pair, reliability=1.0, bandwidth=100.0,
                            delay=0.01)
    for component, host in (("x", "a"), ("y", "b"), ("z", "c")):
        model.add_component(component, memory=10.0)
        model.deploy(component, host)
    return model, ConstraintSet([MemoryConstraint()])


ROTATION_TARGET = {"x": "b", "y": "c", "z": "a"}


class TestWaves:
    def test_final_state_is_target(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "c", "z": "d"})
        assert schedule.final_state() == {"x": "b", "y": "c", "z": "d"}
        assert schedule.unreachable == ()

    def test_max_wave_moves_caps_wave_size(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "c", "z": "d"},
                                  max_wave_moves=1)
        assert all(len(wave.moves) == 1 for wave in schedule.waves)
        assert len(schedule.waves) == 3

    def test_unmoved_components_are_not_scheduled(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "a", "z": "a"})
        assert [m.component for m in schedule.moves] == ["x"]

    def test_empty_delta_yields_no_waves(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "a", "y": "a", "z": "a"})
        assert schedule.waves == ()
        assert schedule.makespan == 0.0

    def test_moves_sorted_by_component_within_wave(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "c", "z": "d"})
        for wave in schedule.waves:
            names = [m.component for m in wave.moves]
            assert names == sorted(names)

    def test_makespan_is_sum_of_wave_etas(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "c", "z": "d"},
                                  max_wave_moves=1)
        assert schedule.makespan == pytest.approx(
            sum(wave.eta for wave in schedule.waves))

    def test_recorded_etas_match_reference_recomputation(self):
        model = mesh_world()
        schedule = build_schedule(model, {"x": "b", "y": "c", "z": "d"})
        for wave in schedule.waves:
            eta, per_move = predict_wave_eta(model, wave.moves)
            assert wave.eta == pytest.approx(eta)
            for move, expected in zip(wave.moves, per_move):
                assert move.eta == pytest.approx(expected)


class TestAtomicPairsAndStaging:
    def test_swap_is_admitted_as_atomic_pair(self):
        # x and y must trade places between exactly-full hosts: neither
        # single move is feasible, the pair is.
        model = DeploymentModel()
        for host in ("a", "b"):
            model.add_host(host, memory=10.0)
        model.add_host("spare", memory=0.0)
        model.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                            delay=0.01)
        for component, host in (("x", "a"), ("y", "b")):
            model.add_component(component, memory=10.0)
            model.deploy(component, host)
        constraints = ConstraintSet([MemoryConstraint()])
        schedule = build_schedule(model, {"x": "b", "y": "a"},
                                  constraints=constraints,
                                  max_wave_moves=1)
        # The pair lands in ONE wave even under a 1-move cap: atomicity
        # beats granularity.
        assert len(schedule.waves) == 1
        assert len(schedule.waves[0].moves) == 2
        assert schedule.final_state() == {"x": "b", "y": "a"}

    def test_rotation_deadlock_is_staged_through_buffer(self):
        model, constraints = rotation_world()
        schedule = build_schedule(model, ROTATION_TARGET,
                                  constraints=constraints,
                                  max_wave_moves=1)
        assert schedule.staged_components == ("x",)
        staged = [m for m in schedule.moves if m.staged]
        assert len(staged) == 1
        assert staged[0].target == "d"  # parked on the buffer host
        assert schedule.final_state() == ROTATION_TARGET
        # The staged component ships twice; the others once.
        assert [m.component for m in schedule.moves].count("x") == 2

    def test_rotation_without_buffer_raises(self):
        model, constraints = rotation_world()
        # Fill the buffer host too: nowhere to stage.
        model.add_component("w", memory=10.0)
        model.deploy("w", "d")
        with pytest.raises(ScheduleError, match="staging"):
            build_schedule(model, ROTATION_TARGET, constraints=constraints)

    def test_collocated_pair_travels_together(self):
        model = mesh_world()
        constraints = ConstraintSet([
            MemoryConstraint(),
            CollocationConstraint(["x", "y"], together=True),
        ])
        schedule = build_schedule(model, {"x": "b", "y": "b", "z": "a"},
                                  constraints=constraints,
                                  max_wave_moves=1)
        assert schedule.final_state()["x"] == "b"
        assert schedule.final_state()["y"] == "b"
        # Both moves share the wave that keeps the pair collocated.
        wave_of = {m.component: w.index for w in schedule.waves
                   for m in w.moves}
        assert wave_of["x"] == wave_of["y"]


class TestUnreachable:
    def test_unroutable_component_is_excluded_and_recorded(self):
        model = DeploymentModel()
        for host in ("a", "b", "island"):
            model.add_host(host, memory=100.0)
        model.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                            delay=0.01)
        for component in ("x", "y"):
            model.add_component(component, memory=5.0)
            model.deploy(component, "a")
        schedule = build_schedule(model, {"x": "b", "y": "island"})
        assert schedule.unreachable == ("y",)
        assert [m.component for m in schedule.moves] == ["x"]
        assert schedule.final_state() == {"x": "b", "y": "a"}


class TestRouting:
    def bottleneck_world(self):
        """One slow direct link, two relays whose legs are individually
        slower but collectively wider."""
        model = DeploymentModel()
        for host in ("src", "dst", "r1", "r2"):
            model.add_host(host, memory=1000.0)
        model.connect_hosts("src", "dst", reliability=1.0, bandwidth=100.0,
                            delay=0.001)
        for relay in ("r1", "r2"):
            model.connect_hosts("src", relay, reliability=1.0,
                                bandwidth=60.0, delay=0.001)
            model.connect_hosts(relay, "dst", reliability=1.0,
                                bandwidth=60.0, delay=0.001)
        target = {}
        for index in range(6):
            component = f"c{index}"
            model.add_component(component, memory=6.0)
            model.deploy(component, "src")
            target[component] = "dst"
        return model, target

    def test_candidate_routes_include_relays(self):
        model, __ = self.bottleneck_world()
        routes = candidate_routes(model, "src", "dst")
        assert ("src", "dst") in routes
        assert ("src", "r1", "dst") in routes
        assert ("src", "r2", "dst") in routes

    def test_isolation_route_prefers_fast_direct_link(self):
        model, __ = self.bottleneck_world()
        assert isolation_route(model, "src", "dst", 6.0) == ("src", "dst")

    def test_packed_schedule_spreads_and_beats_naive(self):
        model, target = self.bottleneck_world()
        packed = MigrationPlanner(model, max_wave_moves=None) \
            .schedule(target)
        naive = naive_schedule(model, target)
        assert packed.makespan < naive.makespan
        used_routes = {m.route for m in packed.moves}
        assert len(used_routes) > 1, "packer never left the direct link"
        assert packed.final_state() == naive.final_state()

    def test_naive_schedule_is_single_wave_on_isolation_routes(self):
        model, target = self.bottleneck_world()
        naive = naive_schedule(model, target)
        assert len(naive.waves) == 1
        assert {m.route for m in naive.moves} == {("src", "dst")}
        assert naive.detail["strategy"] == "naive-all-at-once"


class TestDeterminism:
    def test_same_inputs_render_byte_identical_json(self):
        model, constraints = rotation_world()
        first = build_schedule(model, ROTATION_TARGET,
                               constraints=constraints)
        model2, constraints2 = rotation_world()
        second = build_schedule(model2, ROTATION_TARGET,
                                constraints=constraints2)
        assert first.to_json() == second.to_json()

    def test_schedule_is_stable_across_hash_seeds(self):
        """Byte-identical schedule JSON under different PYTHONHASHSEED:
        no set/dict iteration order leaks into the document."""
        program = (
            "from tests.plan.test_planner import rotation_world, "
            "ROTATION_TARGET\n"
            "from repro.plan import build_schedule\n"
            "model, constraints = rotation_world()\n"
            "schedule = build_schedule(model, ROTATION_TARGET, "
            "constraints=constraints)\n"
            "print(schedule.to_json())\n")
        outputs = []
        for hash_seed in ("1", "4242"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p)
            result = subprocess.run(
                [sys.executable, "-c", program], env=env, cwd=ROOT,
                capture_output=True, text=True, check=True)
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
