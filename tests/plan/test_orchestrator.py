"""Wave-by-wave orchestration: barrier rollback, re-planning, and the
naive-vs-scheduled acceptance demo under a mid-migration partition."""

import pytest

from repro.core.effector import (
    MiddlewareEffector, plan_redeployment,
)
from repro.core.errors import MigrationError, MigrationTimeoutError
from repro.core.model import DeploymentModel
from repro.faults import FaultAction, FaultInjector, FaultPlan
from repro.middleware import DistributedSystem
from repro.plan import MigrationPlanner
from repro.sim import SimClock


def triangle_world():
    """Master a and slaves b, c; two components on a headed elsewhere."""
    model = DeploymentModel()
    for host in ("a", "b", "c"):
        model.add_host(host, memory=100.0)
    for pair in (("a", "b"), ("a", "c"), ("b", "c")):
        model.connect_hosts(*pair, reliability=1.0, bandwidth=100.0,
                            delay=0.01)
    for component in ("x", "y"):
        model.add_component(component, memory=5.0)
        model.deploy(component, "a")
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host="a", seed=1)
    return model, clock, system


TARGET = {"x": "b", "y": "c"}


def cut_c_fault(system, model):
    """Partition host c shortly after the migration starts; heal later."""
    plan = FaultPlan(name="cut-c", duration=12.0, actions=[
        FaultAction(0.05, "partition", ("c",), {"duration": 6.0}),
    ])
    return FaultInjector(system.network, plan, model=model).arm()


class TestWaveExecution:
    def test_schedule_executes_and_reports_wave_detail(self):
        model, __, system = triangle_world()
        plan = plan_redeployment(model, TARGET, schedule=True)
        effector = MiddlewareEffector(system, seed=1)
        report = effector.effect(plan)
        assert report.succeeded
        assert dict(system.actual_deployment()) == TARGET
        assert report.detail["waves_completed"] == len(plan.schedule.waves)
        assert report.detail["replans"] == 0
        assert report.detail["barrier_rollbacks"] == 0
        data = report.to_dict()
        assert data["plan"]["waves"] == len(plan.schedule.waves)
        assert data["plan"]["predicted_makespan"] == pytest.approx(
            plan.schedule.makespan)

    def test_noop_schedule_short_circuits(self):
        model, __, system = triangle_world()
        plan = plan_redeployment(model, {"x": "a", "y": "a"},
                                 schedule=True)
        report = MiddlewareEffector(system, seed=1).effect(plan)
        assert report.succeeded and report.moves_executed == 0


class TestAcceptanceDemo:
    """The headline comparison: under a partition that outlives the naive
    retry budget, whole-plan rollback loses ALL progress while the
    wave-barrier orchestrator retains the completed wave and finishes."""

    EFFECTOR_OPTS = dict(max_wait=2.0, max_retries=1, backoff_base=1.0,
                         jitter=0.0, seed=1)

    def test_naive_rollback_loses_all_progress(self):
        model, __, system = triangle_world()
        cut_c_fault(system, model)
        plan = plan_redeployment(model, TARGET)
        effector = MiddlewareEffector(system, **self.EFFECTOR_OPTS)
        with pytest.raises(MigrationTimeoutError) as excinfo:
            effector.effect(plan)
        # Transactional whole-plan rollback: x had reached b, but the
        # failure of y's transfer reverted it too.
        assert dict(system.actual_deployment()) == {"x": "a", "y": "a"}
        assert excinfo.value.report.rolled_back
        assert "rollback_scope" not in excinfo.value.report.detail

    def test_wave_barriers_complete_through_the_same_fault(self):
        model, __, system = triangle_world()
        cut_c_fault(system, model)
        planner = MigrationPlanner(model, max_wave_moves=1)
        plan = plan_redeployment(model, TARGET, planner=planner)
        effector = MiddlewareEffector(system, **self.EFFECTOR_OPTS)
        report = effector.effect(plan)
        assert report.succeeded
        assert dict(system.actual_deployment()) == TARGET
        # The partitioned wave had to wait out the heal via backoff.
        assert report.retries >= 1
        assert report.detail["waves_completed"] == 2

    def test_replanning_recovers_without_retry_budget(self):
        model, __, system = triangle_world()
        cut_c_fault(system, model)
        planner = MigrationPlanner(model, max_wave_moves=1)
        plan = plan_redeployment(model, TARGET, planner=planner)
        effector = MiddlewareEffector(system, max_wait=2.0, max_retries=0,
                                      backoff_base=1.0, jitter=0.0,
                                      seed=1, planner=planner,
                                      max_replans=5)
        report = effector.effect(plan)
        assert report.succeeded
        assert dict(system.actual_deployment()) == TARGET
        assert report.detail["replans"] >= 1
        assert report.detail["barrier_rollbacks"] >= 1


class _FailingWaveSystem:
    """Stub system whose redeploy fails permanently for one component.

    The live simulator's event-driven clock jumps to the next scheduled
    event (e.g. a partition heal) inside ``redeploy``, so a heal-scheduled
    fault cannot model a *permanent* failure; this stub can.
    """

    def __init__(self, model, poison="y"):
        self.model = model
        self.clock = SimClock()
        self.poison = poison
        self._deployment = dict(model.deployment.as_dict())

    def actual_deployment(self):
        return dict(self._deployment)

    def redeploy(self, target, max_wait=None):
        moved = 0
        kb = 0.0
        for component, host in sorted(target.items()):
            if self._deployment.get(component) == host:
                continue
            if component == self.poison \
                    and host != self.model.deployment[component]:
                raise MigrationError(
                    f"host {host!r} unreachable for {component!r}")
            kb += self.model.component(component).memory
            self._deployment[component] = host
            moved += 1
        return {"moves": moved, "kb_transferred": kb}

    def reset_redeployment(self):
        return 0


class TestBarrierFailure:
    def test_exhausted_replans_keep_barrier_progress(self):
        model, __, ___ = triangle_world()
        system = _FailingWaveSystem(model, poison="y")
        planner = MigrationPlanner(model, max_wave_moves=1)
        plan = plan_redeployment(model, TARGET, planner=planner)
        effector = MiddlewareEffector(system, max_retries=0,
                                      backoff_base=0.0, jitter=0.0,
                                      seed=1, planner=planner,
                                      max_replans=2)
        with pytest.raises(MigrationTimeoutError) as excinfo:
            effector.effect(plan)
        report = excinfo.value.report
        assert report.detail["rollback_scope"] == "barrier"
        assert report.detail["replans"] == 2
        # x's wave completed before y's poisoned wave failed, and barrier
        # rollback (unlike whole-plan rollback) kept that progress.
        assert system.actual_deployment()["x"] == "b"
        assert report.detail["progress_components"] >= 1
        assert "progress retained" in str(excinfo.value)

    def test_failure_without_planner_stops_at_barrier(self):
        model, __, ___ = triangle_world()
        system = _FailingWaveSystem(model, poison="y")
        plan = plan_redeployment(model, TARGET, schedule=True)
        effector = MiddlewareEffector(system, max_retries=0,
                                      backoff_base=0.0, jitter=0.0, seed=1)
        with pytest.raises(MigrationTimeoutError) as excinfo:
            effector.effect(plan)
        assert excinfo.value.report.detail["replans"] == 0
        assert system.actual_deployment()["y"] == "a"
