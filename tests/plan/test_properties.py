"""Property-based tests: every barrier state a planner emits is as safe
under the compiled constraint path as under the object path.

The planner searches orderings with the compiled checker's incremental
place/undo; these properties pin that the states it promises (every
post-wave intermediate deployment, including staged orders — which are
exactly the states barrier rollback restores) are judged identically by
the compiled kernels and the plain object ``ConstraintSet``, and that no
barrier is worse than the deployment the schedule started from.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.search import make_checker
from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, LocationConstraint,
    MemoryConstraint,
)
from repro.core.errors import ScheduleError
from repro.core.model import DeploymentModel
from repro.plan import MigrationPlanner


@st.composite
def planner_cases(draw):
    """A connected model, a constraint set, and a feasible-ish target."""
    n_hosts = draw(st.integers(2, 5))
    n_components = draw(st.integers(1, 6))
    hosts = [f"h{i}" for i in range(n_hosts)]
    components = [f"c{i}" for i in range(n_components)]
    model = DeploymentModel(name="hyp-plan")
    capacities = [draw(st.floats(8.0, 60.0)) for __ in hosts]
    for host, capacity in zip(hosts, capacities):
        model.add_host(host, memory=capacity)
    # A ring plus random chords keeps every pair routable (directly or
    # via relays) so reachability never empties the move set.
    linked = set()
    for i in range(n_hosts):
        pair = tuple(sorted((hosts[i], hosts[(i + 1) % n_hosts])))
        if pair in linked:
            continue
        linked.add(pair)
        model.connect_hosts(*pair, reliability=1.0,
                            bandwidth=draw(st.floats(10.0, 200.0)),
                            delay=draw(st.floats(0.001, 0.05)))
    for i in range(n_hosts):
        for j in range(i + 2, n_hosts):
            pair = (hosts[i], hosts[j])
            if pair not in linked and draw(st.booleans()):
                linked.add(pair)
                model.connect_hosts(*pair, reliability=1.0,
                                    bandwidth=draw(st.floats(10.0, 200.0)),
                                    delay=draw(st.floats(0.001, 0.05)))
    for component in components:
        model.add_component(component,
                            memory=draw(st.floats(0.5, 8.0)))
        model.deploy(component, draw(st.sampled_from(hosts)))
    constraints = ConstraintSet([MemoryConstraint()])
    if n_components >= 2 and draw(st.booleans()):
        constraints.add(CollocationConstraint(
            [components[0], components[1]],
            together=draw(st.booleans())))
    if draw(st.booleans()):
        constraints.add(LocationConstraint(
            components[-1], forbidden=[draw(st.sampled_from(hosts))]))
    target = {component: draw(st.sampled_from(hosts))
              for component in components}
    max_wave_moves = draw(st.sampled_from([1, 2, 8]))
    return model, constraints, target, max_wave_moves


@given(planner_cases())
@settings(max_examples=60, deadline=None)
def test_barrier_states_agree_across_constraint_paths(case):
    model, constraints, target, max_wave_moves = case
    planner = MigrationPlanner(model, constraints,
                               max_wave_moves=max_wave_moves)
    try:
        schedule = planner.schedule(target)
    except ScheduleError:
        return  # no safe ordering exists for this draw — nothing to check
    compiled = make_checker(model, constraints, use_compiled=True)
    objects = make_checker(model, constraints, use_compiled=False)
    start = dict(schedule.current)
    compiled.reset(start)
    objects.reset(start)
    baseline_compiled = compiled.violation_count()
    assert baseline_compiled == objects.violation_count()
    states = [schedule.state_after(-1)] + list(schedule.barrier_states())
    for state in states:
        compiled.reset(state)
        objects.reset(state)
        compiled_violations = compiled.violation_count()
        assert compiled_violations == objects.violation_count(), \
            f"compiled and object paths disagree on {state}"
        assert compiled.satisfied() == objects.satisfied()
        # Barrier safety: no intermediate state (these are exactly the
        # states rollback can restore) is worse than the start.
        assert compiled_violations <= baseline_compiled
        # Object-path ground truth: the plain ConstraintSet agrees.
        assert (len(constraints.violations(model, state)) ==
                compiled_violations)


@given(planner_cases())
@settings(max_examples=40, deadline=None)
def test_schedule_reaches_target_except_unreachable(case):
    model, constraints, target, max_wave_moves = case
    planner = MigrationPlanner(model, constraints,
                               max_wave_moves=max_wave_moves)
    try:
        schedule = planner.schedule(target)
    except ScheduleError:
        return
    final = schedule.final_state()
    for component, destination in target.items():
        if component in schedule.unreachable:
            assert final[component] == schedule.current[component]
        else:
            assert final[component] == destination
    # Staged components always complete their journey by the last wave.
    for component in schedule.staged_components:
        assert final[component] == target[component]
