"""Tests for DeSi's Model subsystem, Modifier, container, and views."""

import pytest

from repro.algorithms import AvalaAlgorithm, StochasticAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, MemoryConstraint,
)
from repro.core.errors import (
    DuplicateAlgorithmError, ModelError, UnknownAlgorithmError,
)
from repro.desi import (
    AlgorithmContainer, DeSiModel, GraphView, Modifier, TableView,
)


@pytest.fixture
def desi(small_model):
    return DeSiModel(small_model)


class TestReactivity:
    def test_model_changes_notify_views(self, desi):
        seen = []
        desi.system.add_view(lambda aspect, detail: seen.append(
            (aspect, detail["event"])))
        desi.deployment_model.set_host_param(
            desi.deployment_model.host_ids[0], "memory", 1234.0)
        assert ("system", "parameter_changed") in seen

    def test_result_recording_notifies_views(self, desi):
        seen = []
        desi.results.add_view(lambda aspect, detail: seen.append(aspect))
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet([MemoryConstraint()]),
            seed=1))
        container.invoke("avala")
        assert "results" in seen

    def test_replace_model_rewires_listener(self, desi, tiny_model):
        seen = []
        desi.system.add_view(lambda aspect, detail: seen.append(
            detail["event"]))
        desi.system.replace_model(tiny_model)
        tiny_model.deploy("c1", "hB")
        assert "model_replaced" in seen
        assert "deployment_changed" in seen


class TestGraphViewData:
    def test_hosts_white_components_gray(self, desi):
        host_id = desi.deployment_model.host_ids[0]
        component_id = desi.deployment_model.component_ids[0]
        assert desi.graph.host_styles[host_id].color == "white"
        assert desi.graph.component_styles[component_id].color == "gray"

    def test_zoom(self, desi):
        desi.graph.set_zoom(2.5)
        assert desi.graph.zoom == 2.5
        with pytest.raises(ValueError):
            desi.graph.set_zoom(0.0)

    def test_move_host(self, desi):
        host_id = desi.deployment_model.host_ids[0]
        desi.graph.move_host(host_id, 5.0, 6.0)
        style = desi.graph.host_styles[host_id]
        assert (style.x, style.y) == (5.0, 6.0)


class TestAlgoResultData:
    def test_best_picks_highest_for_maximize(self, desi):
        objective = AvailabilityObjective()
        constraints = ConstraintSet([MemoryConstraint()])
        container = AlgorithmContainer(desi)
        container.register("avala",
                           lambda: AvalaAlgorithm(objective, constraints,
                                                  seed=1))
        container.register("stochastic",
                           lambda: StochasticAlgorithm(objective, constraints,
                                                       seed=1, iterations=5))
        container.invoke_all()
        best = desi.results.best(objective)
        assert best is not None
        assert best.value == max(r.value for r in desi.results.results)

    def test_effect_estimates_recorded(self, desi):
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet([MemoryConstraint()]),
            seed=1))
        container.invoke("avala")
        rows = desi.results.table_rows()
        assert len(rows) == 1
        assert rows[0][6] >= 0.0  # effect estimate column

    def test_clear(self, desi):
        desi.results.record  # attribute exists
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet(), seed=1))
        container.invoke("avala")
        desi.results.clear()
        assert desi.results.latest() is None


class TestAlgorithmContainer:
    def test_register_invoke_unregister(self, desi):
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet(), seed=1))
        assert container.algorithm_names == ("avala",)
        result = container.invoke("avala")
        assert result.algorithm == "avala"
        container.unregister("avala")
        assert container.algorithm_names == ()

    def test_duplicate_registration_rejected(self, desi):
        container = AlgorithmContainer(desi)
        container.register("x", lambda: None)
        with pytest.raises(DuplicateAlgorithmError):
            container.register("x", lambda: None)

    def test_invoke_unknown_rejected(self, desi):
        with pytest.raises(UnknownAlgorithmError):
            AlgorithmContainer(desi).invoke("ghost")


class TestModifier:
    def test_edit_and_undo(self, desi):
        model = desi.deployment_model
        host = model.host_ids[0]
        original = model.host(host).memory
        modifier = Modifier(desi)
        modifier.set_host_memory(host, original + 50.0)
        assert model.host(host).memory == original + 50.0
        assert modifier.undo() is not None
        assert model.host(host).memory == original

    def test_undo_all_restores_everything(self, desi):
        model = desi.deployment_model
        modifier = Modifier(desi)
        link = model.physical_links[0]
        component = model.component_ids[0]
        original_reliability = link.params.get("reliability")
        original_host = model.deployment[component]
        other_host = next(h for h in model.host_ids if h != original_host)
        modifier.set_link_reliability(*link.hosts, value=0.111)
        modifier.move_component(component, other_host)
        assert modifier.undo_all() == 2
        assert link.params.get("reliability") == original_reliability
        assert model.deployment[component] == original_host

    def test_edits_log(self, desi):
        modifier = Modifier(desi)
        host = desi.deployment_model.host_ids[0]
        modifier.set_host_memory(host, 1.0)
        assert len(modifier.edits) == 1
        assert host in modifier.edits[0]

    def test_unknown_link_rejected(self, desi):
        modifier = Modifier(desi)
        with pytest.raises(ModelError):
            modifier.set_link_reliability("nope", "nada", 0.5)

    def test_undo_empty_stack(self, desi):
        assert Modifier(desi).undo() is None


class TestViews:
    def test_table_view_contains_all_entities(self, desi):
        view = TableView(desi)
        page = view.render()
        model = desi.deployment_model
        for host in model.host_ids:
            assert host in page
        for component in model.component_ids:
            assert component in page

    def test_results_panel_lists_runs(self, desi):
        container = AlgorithmContainer(desi)
        container.register("avala", lambda: AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet([MemoryConstraint()]),
            seed=1))
        container.invoke("avala")
        panel = TableView(desi).results_panel()
        assert "avala" in panel
        assert "availability" in panel

    def test_table_view_counts_refreshes(self, desi):
        view = TableView(desi)
        desi.deployment_model.set_host_param(
            desi.deployment_model.host_ids[0], "memory", 7.0)
        assert view.refreshes >= 1

    def test_graph_view_text_shows_containment(self, desi):
        text = GraphView(desi).render_text()
        model = desi.deployment_model
        deployment = model.deployment
        component = model.component_ids[0]
        assert f"({component})" in text
        assert f"[{deployment[component]}]" in text

    def test_graph_view_dot_is_wellformed(self, desi):
        dot = GraphView(desi).render_dot()
        assert dot.startswith("graph deployment {")
        assert dot.rstrip().endswith("}")
        assert dot.count("subgraph") == len(desi.deployment_model.host_ids)

    def test_thumbnail_counts(self, desi):
        thumb = GraphView(desi).thumbnail()
        model = desi.deployment_model
        total = sum(
            int(cell.split(":")[1])
            for cell in thumb.strip("[]").split(" | "))
        assert total == len(model.component_ids)

    def test_constraints_panel(self, desi):
        from repro.core.constraints import MemoryConstraint as MC
        desi.deployment_model.constraints.append(MC())
        panel = TableView(desi).constraints_panel()
        assert "MemoryConstraint" in panel
