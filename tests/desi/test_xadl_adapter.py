"""Tests for xADL serialization and the MiddlewareAdapter."""

import pytest

from repro.algorithms import AvalaAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.core.constraints import CollocationConstraint, LocationConstraint
from repro.core.errors import SerializationError, XadlError
from repro.desi import DeSiModel, MiddlewareAdapter, xadl
from repro.middleware import DistributedSystem
from repro.sim import InteractionWorkload, SimClock


class TestXadlRoundTrip:
    def test_structure_preserved(self, small_model):
        clone = xadl.from_xml(xadl.to_xml(small_model))
        assert clone.host_ids == small_model.host_ids
        assert clone.component_ids == small_model.component_ids
        assert len(clone.physical_links) == len(small_model.physical_links)
        assert len(clone.logical_links) == len(small_model.logical_links)

    def test_parameters_preserved(self, small_model):
        clone = xadl.from_xml(xadl.to_xml(small_model))
        for link in small_model.physical_links:
            twin = clone.physical_link(*link.hosts)
            assert twin.params.get("reliability") == pytest.approx(
                link.params.get("reliability"))
        for component in small_model.components:
            assert clone.component(component.id).memory == pytest.approx(
                component.memory)

    def test_deployment_preserved(self, small_model):
        clone = xadl.from_xml(xadl.to_xml(small_model))
        assert dict(clone.deployment) == dict(small_model.deployment)

    def test_constraints_roundtrip(self, tiny_model):
        tiny_model.constraints.append(
            LocationConstraint("c1", allowed=["hA"]))
        tiny_model.constraints.append(
            LocationConstraint("c2", forbidden=["hB"]))
        tiny_model.constraints.append(
            CollocationConstraint(["c1", "c3"], together=False))
        clone = xadl.from_xml(xadl.to_xml(tiny_model))
        location_a, location_b, collocation = clone.constraints
        assert location_a.allowed == {"hA"}
        assert location_b.forbidden == {"hB"}
        assert collocation.components == ("c1", "c3")
        assert collocation.together is False

    def test_bool_and_string_params(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "connected", False)
        clone = xadl.from_xml(xadl.to_xml(tiny_model))
        assert clone.physical_link("hA", "hB").params.get("connected") is False

    def test_file_roundtrip(self, tiny_model, tmp_path):
        path = str(tmp_path / "arch.xml")
        xadl.save(tiny_model, path)
        clone = xadl.load(path)
        assert dict(clone.deployment) == dict(tiny_model.deployment)

    def test_malformed_document_rejected(self):
        with pytest.raises(SerializationError):
            xadl.from_xml("<not-even-close")
        with pytest.raises(SerializationError, match="root"):
            xadl.from_xml("<wrongRoot/>")


class TestReferenceValidation:
    """Dangling references must fail with XadlError before model build."""

    def doc(self, extra=""):
        return f"""
        <deploymentArchitecture name="t">
          <host id="h1"/>
          <component id="c1"/>
          <component id="c2"/>
          <logicalLink componentA="c1" componentB="c2"/>
          <deployment component="c1" host="h1"/>
          {extra}
        </deploymentArchitecture>
        """

    def test_dangling_logical_link_endpoint(self):
        text = self.doc('<logicalLink componentA="c1" componentB="ghost"/>')
        with pytest.raises(XadlError, match="undeclared component 'ghost'"):
            xadl.from_xml(text)

    def test_dangling_physical_link_endpoint(self):
        text = self.doc('<physicalLink hostA="h1" hostB="h9"/>')
        with pytest.raises(XadlError, match="undeclared host 'h9'"):
            xadl.from_xml(text)

    def test_dangling_deployment_component(self):
        text = self.doc('<deployment component="nope" host="h1"/>')
        with pytest.raises(XadlError, match="undeclared component 'nope'"):
            xadl.from_xml(text)

    def test_dangling_deployment_host(self):
        text = self.doc('<deployment component="c2" host="h9"/>')
        with pytest.raises(XadlError, match="undeclared host 'h9'"):
            xadl.from_xml(text)

    def test_duplicate_id_rejected(self):
        text = self.doc('<host id="h1"/>')
        with pytest.raises(XadlError, match="duplicate host id 'h1'"):
            xadl.from_xml(text)

    def test_missing_link_attribute(self):
        text = self.doc('<physicalLink hostA="h1"/>')
        with pytest.raises(XadlError, match="hostB"):
            xadl.from_xml(text)

    def test_xadl_error_is_serialization_error(self):
        assert issubclass(XadlError, SerializationError)


class TestMiddlewareAdapter:
    def build(self):
        model = DeploymentModel()
        for host in ("h0", "h1"):
            model.add_host(host, memory=100.0)
        model.connect_hosts("h0", "h1", reliability=0.7, bandwidth=200.0)
        for component in ("a", "b"):
            model.add_component(component, memory=10.0)
        model.connect_components("a", "b", frequency=4.0, evt_size=1.0)
        model.deploy("a", "h0")
        model.deploy("b", "h1")
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=6)
        # DeSi starts from a *blank-parameter* copy of the topology: the
        # monitored values must come in from the platform.
        desi_model = model.copy(name="desi-view")
        desi_model.set_physical_link_param("h0", "h1", "reliability", 1.0)
        desi = DeSiModel(desi_model)
        adapter = MiddlewareAdapter(desi, system, epsilon=0.1, window=2)
        return model, clock, system, desi, adapter

    def test_monitoring_flows_into_desi_model(self):
        model, clock, system, desi, adapter = self.build()
        system.install_monitoring(ping_interval=0.25, pings_per_round=20,
                                  report_interval=1.0)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=2).start()
        for __ in range(4):
            clock.run(1.0)
            adapter.sync_from_platform()
        workload.stop()
        measured = desi.deployment_model.physical_link(
            "h0", "h1").params.get("reliability")
        assert measured == pytest.approx(0.7, abs=0.1)
        assert adapter.monitor.reports_received >= 3

    def test_effector_deploys_algorithm_result(self):
        model, clock, system, desi, adapter = self.build()
        result = AvalaAlgorithm(
            AvailabilityObjective(), ConstraintSet([MemoryConstraint()]),
            seed=1).run(desi.deployment_model)
        report = adapter.deploy_to_platform(result)
        assert report.succeeded
        assert system.actual_deployment() == dict(result.deployment)
