"""Tests for the batch experiment runner."""

import pytest

from repro.algorithms import AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, MemoryConstraint,
)
from repro.core.errors import ReproError
from repro.desi import ExperimentReport, ExperimentRunner, GeneratorConfig


@pytest.fixture
def runner(availability, memory_constraints):
    return ExperimentRunner(
        availability,
        {
            "avala": lambda: AvalaAlgorithm(availability,
                                            memory_constraints, seed=1),
            "stochastic": lambda: StochasticAlgorithm(
                availability, memory_constraints, seed=1, iterations=10),
        },
        replicates=3, seed=7)


class TestExperimentRunner:
    def test_validation(self, availability):
        with pytest.raises(ReproError):
            ExperimentRunner(availability, {})
        with pytest.raises(ReproError):
            ExperimentRunner(availability, {"a": lambda: None},
                             replicates=0)

    def test_sweep_produces_all_cells(self, runner):
        report = runner.run({
            "tiny": GeneratorConfig(hosts=3, components=5),
            "small": GeneratorConfig(hosts=4, components=8),
        })
        assert len(report.cells) == 4  # 2 families x 2 algorithms
        cell = report.cell("tiny", "avala")
        assert cell.runs == 3
        assert cell.failures == 0
        assert cell.mean_value is not None
        assert cell.mean_value >= cell.mean_initial - 1e-9

    def test_best_algorithm(self, runner):
        report = runner.run({"tiny": GeneratorConfig(hosts=3, components=5)})
        best = report.best_algorithm("tiny")
        assert best in ("avala", "stochastic")
        best_cell = report.cell("tiny", best)
        for other in ("avala", "stochastic"):
            assert best_cell.mean_value >= \
                report.cell("tiny", other).mean_value - 1e-12

    def test_render_contains_everything(self, runner):
        report = runner.run({"tiny": GeneratorConfig(hosts=3, components=5)})
        table = report.render()
        assert "tiny" in table
        assert "avala" in table
        assert "availability" in table

    def test_unknown_cell_raises(self, runner):
        report = runner.run({"tiny": GeneratorConfig(hosts=3, components=5)})
        with pytest.raises(KeyError):
            report.cell("tiny", "ghost")

    def test_failures_counted_not_fatal(self, availability,
                                        memory_constraints):
        """An algorithm whose guard trips (Exact on a too-large family) is
        recorded as failures, not a crash."""
        runner = ExperimentRunner(
            availability,
            {
                "exact": lambda: ExactAlgorithm(
                    availability, memory_constraints, max_space=10),
                "avala": lambda: AvalaAlgorithm(
                    availability, memory_constraints, seed=1),
            },
            replicates=2, seed=3)
        report = runner.run({
            "big": GeneratorConfig(hosts=4, components=10),
        })
        exact_cell = report.cell("big", "exact")
        assert exact_cell.failures == 2
        assert exact_cell.mean_value is None
        assert report.best_algorithm("big") == "avala"

    def test_deterministic_given_seed(self, availability,
                                      memory_constraints):
        def build():
            return ExperimentRunner(
                availability,
                {"avala": lambda: AvalaAlgorithm(
                    availability, memory_constraints, seed=1)},
                replicates=2, seed=11)
        families = {"f": GeneratorConfig(hosts=3, components=6)}
        first = build().run(families).cell("f", "avala")
        second = build().run(families).cell("f", "avala")
        assert first.mean_value == second.mean_value

    def test_runs_do_not_mutate_models(self, runner):
        """The runner copies each model per run: the recorded initial value
        stays the pre-improvement one for every algorithm."""
        report = runner.run({"tiny": GeneratorConfig(hosts=3, components=5)})
        avala = report.cell("tiny", "avala")
        stochastic = report.cell("tiny", "stochastic")
        assert avala.mean_initial == stochastic.mean_initial


class TestPreflight:
    def bad_model(self):
        from repro.core import DeploymentModel
        model = DeploymentModel(name="broken")
        model.add_host("h1", memory=100.0)
        model.add_component("c1", memory=5.0)  # never deployed -> MV001
        return model

    def test_verify_models_rejects_invalid_model(self, runner):
        from repro.core.errors import LintError
        with pytest.raises(LintError, match="broken"):
            runner.verify_models([self.bad_model()])

    def test_lint_error_carries_findings(self, runner):
        from repro.core.errors import LintError
        with pytest.raises(LintError) as excinfo:
            runner.verify_models([self.bad_model()])
        assert any(f.rule == "MV001" for f in excinfo.value.findings)

    def test_preflight_false_disables_gate_in_run(self, availability,
                                                  memory_constraints,
                                                  monkeypatch):
        runner = ExperimentRunner(
            availability,
            {"avala": lambda: AvalaAlgorithm(availability,
                                             memory_constraints, seed=1)},
            replicates=1, seed=3, preflight=False)
        calls = []
        monkeypatch.setattr(runner, "verify_models",
                            lambda models: calls.append(models))
        runner.run({"f": GeneratorConfig(hosts=3, components=5)})
        assert calls == []

    def test_generated_models_pass_preflight(self, runner):
        """The Generator's output must satisfy the deployment rules."""
        report = runner.run({"f": GeneratorConfig(hosts=3, components=5)})
        assert report.cells  # ran to completion with preflight enabled


# Module-level factories: workers mode ships factories to worker processes
# via pickle, which lambdas/closures cannot survive.
def _make_avala():
    from repro.core import ConstraintSet, MemoryConstraint
    return AvalaAlgorithm(AvailabilityObjective(),
                          ConstraintSet([MemoryConstraint()]), seed=1)


def _make_stochastic():
    from repro.core import ConstraintSet, MemoryConstraint
    return StochasticAlgorithm(AvailabilityObjective(),
                               ConstraintSet([MemoryConstraint()]),
                               seed=1, iterations=10)


class TestWorkersMode:
    FAMILIES = {
        "tiny": GeneratorConfig(hosts=3, components=5),
        "small": GeneratorConfig(hosts=4, components=8),
    }

    def build(self, workers=None, obs=None):
        return ExperimentRunner(
            AvailabilityObjective(),
            {"avala": _make_avala, "stochastic": _make_stochastic},
            replicates=2, seed=7, workers=workers, obs=obs)

    def test_workers_validation(self):
        with pytest.raises(ReproError):
            self.build(workers=0)

    def test_unpicklable_factory_rejected_upfront(self):
        runner = ExperimentRunner(
            AvailabilityObjective(),
            {"lambda": lambda: None},
            replicates=1, workers=2)
        with pytest.raises(ReproError, match="picklable"):
            runner.run({"f": GeneratorConfig(hosts=3, components=5)})

    def test_parallel_report_identical_to_serial(self):
        serial = self.build(workers=None).run(self.FAMILIES)
        parallel = self.build(workers=2).run(self.FAMILIES)
        assert serial.render(include_timing=False) == \
            parallel.render(include_timing=False)
        # Beyond the rendering: every non-timing cell field matches exactly.
        for cell_a, cell_b in zip(serial.cells, parallel.cells, strict=True):
            assert cell_a.family == cell_b.family
            assert cell_a.algorithm == cell_b.algorithm
            assert cell_a.runs == cell_b.runs
            assert cell_a.failures == cell_b.failures
            assert cell_a.mean_value == cell_b.mean_value
            assert cell_a.stdev_value == cell_b.stdev_value
            assert cell_a.mean_initial == cell_b.mean_initial
            assert cell_a.mean_moves == cell_b.mean_moves
            assert cell_a.mean_full_evaluations == \
                cell_b.mean_full_evaluations
            assert cell_a.mean_cache_hits == cell_b.mean_cache_hits
            assert cell_a.mean_delta_evaluations == \
                cell_b.mean_delta_evaluations
            assert cell_a.truncated_runs == cell_b.truncated_runs
            # The *full* engine counter dicts must agree too — every key
            # the engine reports (cache_misses, delta_fallbacks, kernel
            # splits...), not just the rendered mean columns.
            assert cell_a.engine_counters == cell_b.engine_counters
            assert cell_a.engine_counters  # populated, not vacuously equal
        assert serial.engine_counters() == parallel.engine_counters()
        assert serial.to_json(include_timing=False) == \
            parallel.to_json(include_timing=False)

    def test_workers_one_equals_serial_path(self):
        explicit = self.build(workers=1).run(self.FAMILIES)
        implicit = self.build(workers=None).run(self.FAMILIES)
        assert explicit.render(include_timing=False) == \
            implicit.render(include_timing=False)

    def test_kernel_counters_flow_into_cells(self):
        report = self.build().run(
            {"tiny": GeneratorConfig(hosts=3, components=5)})
        cell = report.cell("tiny", "avala")
        assert cell.mean_kernel_evaluations > 0

    def test_render_without_timing_drops_column(self):
        report = self.build().run(
            {"tiny": GeneratorConfig(hosts=3, components=5)})
        assert "time (ms)" in report.render()
        assert "time (ms)" not in report.render(include_timing=False)


class TestObservedSweeps:
    """The obs= hook: worker registries merge into the sweep's bundle."""

    FAMILIES = {"tiny": GeneratorConfig(hosts=3, components=5)}

    def observed(self, workers=None):
        from repro.obs import Observability
        obs = Observability()
        report = ExperimentRunner(
            AvailabilityObjective(),
            {"avala": _make_avala, "stochastic": _make_stochastic},
            replicates=2, seed=7, workers=workers, obs=obs).run(self.FAMILIES)
        return report, obs

    def test_serial_and_parallel_sweeps_report_identical_metrics(self):
        serial_report, serial_obs = self.observed(workers=None)
        parallel_report, parallel_obs = self.observed(workers=2)
        assert serial_obs.metrics.to_lines() == parallel_obs.metrics.to_lines()
        assert serial_report.to_json(include_timing=False) == \
            parallel_report.to_json(include_timing=False)

    def test_metrics_match_report_counters(self):
        report, obs = self.observed(workers=2)
        for key, total in report.engine_counters().items():
            observed = sum(
                inst.value for inst in obs.metrics
                if inst.name == f"algorithms.engine.{key}")
            assert observed == total, key
        runs = sum(inst.value for inst in obs.metrics
                   if inst.name == "desi.runs")
        assert runs == sum(cell.runs for cell in report.cells)

    def test_sweep_records_one_span_per_cell(self):
        report, obs = self.observed(workers=2)
        roots = obs.tracer.roots
        assert [r.name for r in roots] == ["desi.sweep"]
        cells = [s for s in roots[0].children if s.name == "desi.cell"]
        assert len(cells) == len(report.cells)
        labelled = {(s.attributes["family"], s.attributes["algorithm"])
                    for s in cells}
        assert labelled == {(c.family, c.algorithm) for c in report.cells}

    def test_disabled_obs_report_identical_to_no_obs(self):
        from repro.obs import Observability
        plain = ExperimentRunner(
            AvailabilityObjective(),
            {"avala": _make_avala}, replicates=2, seed=7).run(self.FAMILIES)
        disabled = ExperimentRunner(
            AvailabilityObjective(),
            {"avala": _make_avala}, replicates=2, seed=7,
            obs=Observability.disabled()).run(self.FAMILIES)
        enabled_report, __ = self.observed(workers=None)
        enabled = ExperimentReport(
            enabled_report.objective_name,
            [c for c in enabled_report.cells if c.algorithm == "avala"])
        assert plain.to_json(include_timing=False) == \
            disabled.to_json(include_timing=False)
        # Observing must not perturb the experiment itself either.
        assert plain.to_json(include_timing=False) == \
            enabled.to_json(include_timing=False)
