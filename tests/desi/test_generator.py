"""Unit tests for DeSi's architecture Generator."""

import pytest

import networkx as nx

from repro.core import MemoryConstraint
from repro.core.errors import ModelError
from repro.desi import Generator, GeneratorConfig


class TestConfigValidation:
    def test_counts_must_be_positive(self):
        with pytest.raises(ModelError):
            GeneratorConfig(hosts=0).validate()
        with pytest.raises(ModelError):
            GeneratorConfig(components=0).validate()

    def test_inverted_ranges_rejected(self):
        with pytest.raises(ModelError, match="inverted"):
            GeneratorConfig(reliability=(0.9, 0.1)).validate()

    def test_densities_bounded(self):
        with pytest.raises(ModelError):
            GeneratorConfig(physical_density=1.5).validate()
        with pytest.raises(ModelError):
            GeneratorConfig(logical_density=-0.1).validate()

    def test_headroom_at_least_one(self):
        with pytest.raises(ModelError):
            GeneratorConfig(memory_headroom=0.9).validate()


class TestGeneratedArchitectures:
    def test_requested_counts(self):
        model = Generator(GeneratorConfig(hosts=6, components=17),
                          seed=1).generate()
        assert len(model.host_ids) == 6
        assert len(model.component_ids) == 17

    def test_parameters_within_ranges(self):
        config = GeneratorConfig(hosts=5, components=12,
                                 reliability=(0.4, 0.6),
                                 component_memory=(3.0, 4.0))
        model = Generator(config, seed=2).generate()
        for link in model.physical_links:
            assert 0.4 <= link.params.get("reliability") <= 0.6
        for component in model.components:
            assert 3.0 <= component.memory <= 4.0

    def test_initial_deployment_memory_feasible(self):
        for seed in range(5):
            model = Generator(GeneratorConfig(hosts=4, components=20,
                                              memory_headroom=1.2),
                              seed=seed).generate()
            assert MemoryConstraint().is_satisfied(model, model.deployment)

    def test_network_is_connected(self):
        """The spanning-tree pass guarantees connectivity at any density."""
        model = Generator(GeneratorConfig(hosts=10, components=5,
                                          physical_density=0.0),
                          seed=3).generate()
        graph = nx.Graph()
        graph.add_nodes_from(model.host_ids)
        graph.add_edges_from(link.hosts for link in model.physical_links)
        assert nx.is_connected(graph)
        # Density 0 means exactly the tree.
        assert len(model.physical_links) == len(model.host_ids) - 1

    def test_full_density_is_complete_graph(self):
        model = Generator(GeneratorConfig(hosts=6, components=5,
                                          physical_density=1.0),
                          seed=3).generate()
        assert len(model.physical_links) == 6 * 5 // 2

    def test_deterministic_with_seed(self):
        config = GeneratorConfig(hosts=4, components=9)
        first = Generator(config, seed=9).generate()
        second = Generator(config, seed=9).generate()
        assert dict(first.deployment) == dict(second.deployment)
        for link in first.physical_links:
            twin = second.physical_link(*link.hosts)
            assert twin.params.get("reliability") == \
                link.params.get("reliability")

    def test_different_seeds_differ(self):
        config = GeneratorConfig(hosts=4, components=9)
        first = Generator(config, seed=1).generate()
        second = Generator(config, seed=2).generate()
        assert dict(first.deployment) != dict(second.deployment)

    def test_memory_headroom_enforced_by_scaling(self):
        config = GeneratorConfig(hosts=2, components=30,
                                 host_memory=(1.0, 2.0),
                                 component_memory=(5.0, 10.0),
                                 memory_headroom=2.0)
        model = Generator(config, seed=4).generate()
        total_host = sum(h.memory for h in model.hosts)
        total_component = sum(c.memory for c in model.components)
        assert total_host >= total_component * 2.0 * 0.999

    def test_generate_many_unique_names(self):
        models = Generator(GeneratorConfig(hosts=2, components=3),
                           seed=5).generate_many(4)
        assert len({model.name for model in models}) == 4

    def test_logical_density_extremes(self):
        none = Generator(GeneratorConfig(hosts=3, components=6,
                                         logical_density=0.0),
                         seed=1).generate()
        assert len(none.logical_links) == 0
        full = Generator(GeneratorConfig(hosts=3, components=6,
                                         logical_density=1.0),
                         seed=1).generate()
        assert len(full.logical_links) == 6 * 5 // 2
