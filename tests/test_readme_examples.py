"""Executes the README's code snippets so documentation cannot rot."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_snippets():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_snippets():
    assert len(python_snippets()) >= 2


@pytest.mark.parametrize("index", range(len(python_snippets())))
def test_readme_snippet_runs(index, capsys):
    snippet = python_snippets()[index]
    namespace = {}
    exec(compile(snippet, f"README.md#snippet{index}", "exec"),  # noqa: S102
         namespace)
    # Snippets print results; they must have produced something.
    assert capsys.readouterr().out


def test_readme_mentions_every_package():
    text = README.read_text(encoding="utf-8")
    for package in ("repro.core", "repro.algorithms", "repro.middleware",
                    "repro.desi", "repro.decentralized", "repro.sim",
                    "repro.scenarios"):
        assert package in text, f"README does not mention {package}"


def test_examples_referenced_in_readme_exist():
    text = README.read_text(encoding="utf-8")
    examples_dir = README.parent / "examples"
    for name in re.findall(r"`(\w+\.py)`", text):
        assert (examples_dir / name).exists(), f"README references {name}"
