"""Tests for the compiled model/deployment views and kernel plumbing."""

from __future__ import annotations

import pytest

from repro.algorithms.compiled import (
    UNDEPLOYED, CompiledDeployment, CompiledModel, compile_kernel,
    compiled_model, register_kernel,
)
from repro.core.model import DeploymentModel
from repro.core.objectives import (
    AvailabilityObjective, LatencyObjective, Objective, ThroughputObjective,
    WeightedObjective,
)


class TestCompiledModel:
    def test_index_maps_follow_sorted_ids(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        assert compiled.host_ids == tiny_model.host_ids
        assert compiled.component_ids == tiny_model.component_ids
        for index, host_id in enumerate(compiled.host_ids):
            assert compiled.host_index[host_id] == index

    def test_edges_match_interaction_pairs(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        pairs = list(tiny_model.interaction_pairs())
        assert len(compiled.edge_a) == len(pairs)
        for edge, (comp_a, comp_b, link) in enumerate(pairs):
            assert compiled.component_ids[compiled.edge_a[edge]] == comp_a
            assert compiled.component_ids[compiled.edge_b[edge]] == comp_b
            assert compiled.edge_frequency[edge] == link.frequency
            assert compiled.edge_evt_size[edge] == link.evt_size

    def test_csr_adjacency_matches_logical_neighbors(self, small_model):
        compiled = CompiledModel(small_model)
        for index, component_id in enumerate(compiled.component_ids):
            neighbors = tuple(
                compiled.component_ids[compiled.adj_neighbor[k]]
                for k in compiled.neighbors(index))
            assert neighbors == small_model.logical_neighbors(component_id)
            assert compiled.degree(index) == len(neighbors)

    def test_matrices_match_derived_queries(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        for i, host_a in enumerate(compiled.host_ids):
            for j, host_b in enumerate(compiled.host_ids):
                assert compiled.reliability[i][j] == \
                    tiny_model.reliability(host_a, host_b)
                assert compiled.bandwidth[i][j] == \
                    tiny_model.bandwidth(host_a, host_b)
                assert compiled.delay[i][j] == \
                    tiny_model.delay(host_a, host_b)

    def test_disconnected_link_zeroes_reliability_and_bandwidth(self):
        model = DeploymentModel(name="m")
        model.add_host("h1")
        model.add_host("h2")
        model.connect_hosts("h1", "h2", reliability=0.9, bandwidth=10.0,
                            connected=False)
        compiled = CompiledModel(model)
        assert compiled.reliability[0][1] == 0.0
        assert compiled.bandwidth[0][1] == 0.0
        assert compiled.link_up[0][1] is False

    def test_encode_decode_roundtrip(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        mapping = dict(tiny_model.deployment)
        assignment = compiled.encode(mapping)
        assert compiled.decode(assignment) == mapping

    def test_encode_marks_missing_components_undeployed(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        assignment = compiled.encode({"c1": "hA"})
        assert assignment.count(UNDEPLOYED) == len(assignment) - 1

    def test_encode_refuses_unknown_host(self, tiny_model):
        compiled = CompiledModel(tiny_model)
        assert compiled.encode({"c1": "ghost"}) is None


class TestSnapshotCache:
    def test_same_snapshot_until_mutation(self, tiny_model):
        first = compiled_model(tiny_model)
        assert compiled_model(tiny_model) is first

    def test_parameter_change_recompiles(self, tiny_model):
        first = compiled_model(tiny_model)
        tiny_model.set_physical_link_param("hA", "hB", "reliability", 0.9)
        assert first.stale
        second = compiled_model(tiny_model)
        assert second is not first
        assert second.generation == first.generation + 1
        assert second.reliability[0][1] == 0.9

    def test_topology_change_recompiles(self, tiny_model):
        first = compiled_model(tiny_model)
        tiny_model.add_host("hC", memory=10.0)
        second = compiled_model(tiny_model)
        assert second is not first
        assert second.n_hosts == first.n_hosts + 1

    def test_deployment_change_does_not_recompile(self, tiny_model):
        first = compiled_model(tiny_model)
        tiny_model.deploy("c1", "hB")
        assert compiled_model(tiny_model) is first


class TestCompiledDeployment:
    def test_hash_matches_rebuild_after_moves(self, small_model):
        compiled = compiled_model(small_model)
        current = CompiledDeployment.from_mapping(
            compiled, small_model.deployment)
        for component_index in range(compiled.n_components):
            current = current.moved(component_index,
                                    component_index % compiled.n_hosts)
        rebuilt = CompiledDeployment(compiled, current.assignment)
        assert hash(current) == hash(rebuilt)
        assert current == rebuilt

    def test_moved_is_nondestructive(self, tiny_model):
        compiled = compiled_model(tiny_model)
        base = CompiledDeployment.from_mapping(compiled,
                                               tiny_model.deployment)
        moved = base.moved(0, 1)
        assert moved is not base
        assert base.assignment != moved.assignment
        assert base.moved(0, base.assignment[0]) is base  # no-op move

    def test_to_deployment_roundtrip(self, tiny_model):
        compiled = compiled_model(tiny_model)
        base = CompiledDeployment.from_mapping(compiled,
                                               tiny_model.deployment)
        assert dict(base.to_deployment()) == dict(tiny_model.deployment)

    def test_unknown_host_rejected(self, tiny_model):
        compiled = compiled_model(tiny_model)
        with pytest.raises(KeyError):
            CompiledDeployment.from_mapping(compiled, {"c1": "ghost"})

    def test_length_mismatch_rejected(self, tiny_model):
        compiled = compiled_model(tiny_model)
        with pytest.raises(ValueError):
            CompiledDeployment(compiled, [0])


class TestKernelRegistry:
    def test_all_builtins_compile_with_delta(self, tiny_model):
        from repro.core.objectives import (
            CommunicationCostObjective, DurabilityObjective,
            SecurityObjective,
        )
        compiled = compiled_model(tiny_model)
        for objective in (AvailabilityObjective(), LatencyObjective(),
                          CommunicationCostObjective(), SecurityObjective(),
                          ThroughputObjective(), DurabilityObjective()):
            kernel = compile_kernel(objective, compiled)
            assert kernel is not None, objective.name
            assert kernel.supports_delta is True

    def test_custom_objective_has_no_kernel(self, tiny_model):
        class Custom(Objective):
            name = "custom"

            def evaluate(self, model, deployment):
                return 0.0

        assert compile_kernel(Custom(), compiled_model(tiny_model)) is None

    def test_subclass_does_not_inherit_kernel(self, tiny_model):
        class Tweaked(AvailabilityObjective):
            def evaluate(self, model, deployment):
                return 0.5

        # Exact-type dispatch: a subclass overriding evaluate must not be
        # silently served by the parent's kernel.
        assert compile_kernel(Tweaked(), compiled_model(tiny_model)) is None

    def test_weighted_composes_term_kernels(self, tiny_model):
        weighted = WeightedObjective([(AvailabilityObjective(), 1.0),
                                      (ThroughputObjective(), 0.5)])
        kernel = compile_kernel(weighted, compiled_model(tiny_model))
        assert kernel is not None
        assert kernel.supports_delta is True

    def test_weighted_with_uncompilable_term_declines(self, tiny_model):
        class Custom(Objective):
            name = "custom"

            def evaluate(self, model, deployment):
                return 0.0

        weighted = WeightedObjective([(AvailabilityObjective(), 1.0),
                                      (Custom(), 0.5)])
        assert compile_kernel(weighted, compiled_model(tiny_model)) is None

    def test_register_kernel_extends_dispatch(self, tiny_model):
        class Constant(Objective):
            name = "constant"

            def evaluate(self, model, deployment):
                return 7.0

        class ConstantKernel:
            supports_delta = False

            def __init__(self, objective, compiled):
                self.objective = objective
                self.cm = compiled

            def evaluate(self, assignment):
                return 7.0

        register_kernel(Constant, ConstantKernel)
        try:
            kernel = compile_kernel(Constant(), compiled_model(tiny_model))
            assert kernel is not None
            assert kernel.evaluate([0, 0, 0]) == 7.0
        finally:
            from repro.algorithms import compiled as compiled_module
            del compiled_module._KERNEL_FACTORIES[Constant]
