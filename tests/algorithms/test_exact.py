"""Tests for the Exact algorithm: optimality, guards, pruning."""

import pytest

from repro.algorithms import ExactAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.core.constraints import LocationConstraint, fix_component
from repro.core.errors import AlgorithmError, NoValidDeploymentError


class TestOptimality:
    def test_matches_brute_force(self, small_model, availability,
                                 memory_constraints):
        algorithm = ExactAlgorithm(availability, memory_constraints)
        result = algorithm.run(small_model)
        # Independent brute force over the full space.
        best = None
        for deployment in small_model.all_deployments():
            if not memory_constraints.is_satisfied(small_model, deployment):
                continue
            value = availability.evaluate(small_model, deployment)
            if best is None or value > best:
                best = value
        assert result.value == pytest.approx(best)
        assert result.valid

    def test_finds_obvious_collocation(self, tiny_model, availability):
        result = ExactAlgorithm(availability, ConstraintSet()).run(tiny_model)
        # With no constraints, everything on one host is optimal (A = 1).
        assert result.value == pytest.approx(1.0)
        assert len(set(result.deployment.values())) == 1

    def test_respects_memory(self, availability):
        model = DeploymentModel()
        model.add_host("h1", memory=10.0)
        model.add_host("h2", memory=10.0)
        model.connect_hosts("h1", "h2", reliability=0.5)
        model.add_component("a", memory=10.0)
        model.add_component("b", memory=10.0)
        model.connect_components("a", "b", frequency=1.0)
        model.deploy("a", "h1")
        model.deploy("b", "h1")  # invalid start: over memory
        result = ExactAlgorithm(
            availability, ConstraintSet([MemoryConstraint()])).run(model)
        assert result.valid
        assert result.deployment["a"] != result.deployment["b"]
        assert result.value == pytest.approx(0.5)


class TestGuards:
    def test_space_guard_trips(self, availability):
        model = DeploymentModel()
        for index in range(4):
            model.add_host(f"h{index}")
        for index in range(12):
            model.add_component(f"c{index}")
        algorithm = ExactAlgorithm(availability, max_space=1e6)
        with pytest.raises(AlgorithmError, match="search space"):
            algorithm.run(model)

    def test_empty_model_rejected(self, availability):
        model = DeploymentModel()
        model.add_host("h1")
        with pytest.raises(AlgorithmError, match="no components"):
            ExactAlgorithm(availability).run(model)

    def test_unsatisfiable_constraints(self, tiny_model, availability):
        impossible = ConstraintSet([
            LocationConstraint("c1", allowed=[]),  # nowhere legal
        ])
        with pytest.raises(NoValidDeploymentError):
            ExactAlgorithm(availability, impossible).run(tiny_model)


class TestPruning:
    def test_fixed_components_shrink_search(self, small_model, availability):
        """Fixing m components reduces work toward O(k^(n-m)) (§5.1)."""
        free = ExactAlgorithm(availability, ConstraintSet())
        free_result = free.run(small_model)
        pinned_constraints = ConstraintSet([
            fix_component(component, free_result.deployment[component])
            for component in small_model.component_ids[:4]
        ])
        pinned = ExactAlgorithm(availability, pinned_constraints)
        pinned_result = pinned.run(small_model)
        k = len(small_model.host_ids)
        assert pinned_result.extra["visited_leaves"] <= \
            free_result.extra["visited_leaves"] / (k ** 4) * 1.01
        # Pinning to the optimum keeps the optimal value reachable.
        assert pinned_result.value == pytest.approx(free_result.value)

    def test_prune_flag_off_visits_everything(self, tiny_model, availability):
        unpruned = ExactAlgorithm(availability, ConstraintSet(), prune=False)
        result = unpruned.run(tiny_model)
        assert result.extra["visited_leaves"] == 2 ** 3

    def test_pruning_never_loses_optimum(self, small_model, availability,
                                         memory_constraints):
        pruned = ExactAlgorithm(availability, memory_constraints,
                                prune=True).run(small_model)
        unpruned = ExactAlgorithm(availability, memory_constraints,
                                  prune=False).run(small_model)
        assert pruned.value == pytest.approx(unpruned.value)


class TestResultMetadata:
    def test_result_fields(self, tiny_model, availability):
        result = ExactAlgorithm(availability, ConstraintSet()).run(tiny_model)
        assert result.algorithm == "exact"
        assert result.objective == "availability"
        assert result.elapsed >= 0.0
        assert result.evaluations > 0
        assert result.extra["optimal"]
        assert "moves" in result.summary()

    def test_moves_counted_from_initial(self, tiny_model, availability):
        result = ExactAlgorithm(availability, ConstraintSet()).run(
            tiny_model, initial={"c1": "hA", "c2": "hA", "c3": "hA"})
        if set(result.deployment.values()) == {"hA"}:
            assert result.moves_from_initial == 0
