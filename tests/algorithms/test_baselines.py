"""Tests for the related-work baselines: I5 BIP and Coign min-cut (§2)."""

import pytest

from repro.algorithms import BIPAlgorithm, ExactAlgorithm, MinCutAlgorithm
from repro.core import ConstraintSet, DeploymentModel, MemoryConstraint
from repro.core.constraints import LocationConstraint
from repro.core.errors import AlgorithmError
from repro.core.objectives import CommunicationCostObjective
from repro.desi import Generator, GeneratorConfig
from repro.scenarios import build_client_server


class TestBIP:
    def test_matches_exact_on_remote_communication(self, small_model,
                                                   memory_constraints):
        bip = BIPAlgorithm(memory_constraints).run(small_model)
        exact = ExactAlgorithm(CommunicationCostObjective(),
                               memory_constraints).run(small_model)
        assert bip.valid
        assert bip.value == pytest.approx(exact.value)

    def test_bound_prunes_nodes(self, small_model, memory_constraints):
        result = BIPAlgorithm(memory_constraints).run(small_model)
        assert result.extra["nodes_bounded"] > 0

    def test_optimum_is_all_on_one_host_without_constraints(self,
                                                            small_model):
        result = BIPAlgorithm(ConstraintSet()).run(small_model)
        assert result.value == pytest.approx(0.0)
        assert len(set(result.deployment.values())) == 1

    def test_space_guard(self):
        model = Generator(GeneratorConfig(hosts=6, components=30),
                          seed=1).generate()
        with pytest.raises(AlgorithmError, match="exponential"):
            BIPAlgorithm(ConstraintSet(), max_space=1e4).run(model)

    def test_objective_is_fixed_to_communication(self, small_model):
        """I5's limitation: the criterion is hard-wired."""
        result = BIPAlgorithm(ConstraintSet()).run(small_model)
        assert result.objective == "communication_cost"


class TestMinCut:
    def test_requires_exactly_two_hosts(self, small_model):
        with pytest.raises(AlgorithmError, match="two"):
            MinCutAlgorithm(ConstraintSet()).run(small_model)

    def test_optimal_on_client_server(self):
        scenario = build_client_server(middle_components=6, seed=8)
        pins = ConstraintSet([
            c for c in scenario.constraints
            if isinstance(c, LocationConstraint)
        ])
        mincut = MinCutAlgorithm(pins).run(scenario.model)
        exact = ExactAlgorithm(CommunicationCostObjective(),
                               pins).run(scenario.model)
        assert mincut.value == pytest.approx(exact.value)

    def test_respects_pins(self):
        scenario = build_client_server(middle_components=5, seed=3)
        pins = ConstraintSet([
            c for c in scenario.constraints
            if isinstance(c, LocationConstraint)
        ])
        result = MinCutAlgorithm(pins).run(scenario.model)
        assert result.deployment["ui"] == "client"
        assert result.deployment["db"] == "server"

    def test_cut_value_equals_objective(self):
        scenario = build_client_server(middle_components=5, seed=3)
        pins = ConstraintSet([
            c for c in scenario.constraints
            if isinstance(c, LocationConstraint)
        ])
        result = MinCutAlgorithm(pins).run(scenario.model)
        assert result.extra["cut_value"] == pytest.approx(result.value)

    def test_component_pinned_to_neither_host_fails(self):
        model = DeploymentModel()
        model.add_host("A")
        model.add_host("B")
        model.connect_hosts("A", "B")
        model.add_component("x")
        model.deploy("x", "A")
        impossible = ConstraintSet([LocationConstraint("x", allowed=[])])
        from repro.core.errors import NoValidDeploymentError
        with pytest.raises(NoValidDeploymentError):
            MinCutAlgorithm(impossible).run(model)

    def test_unpinned_components_follow_traffic(self):
        model = DeploymentModel()
        model.add_host("A")
        model.add_host("B")
        model.connect_hosts("A", "B", bandwidth=10.0)
        model.add_component("anchor_a")
        model.add_component("anchor_b")
        model.add_component("floater")
        model.connect_components("floater", "anchor_a", frequency=10.0,
                                 evt_size=1.0)
        model.connect_components("floater", "anchor_b", frequency=1.0,
                                 evt_size=1.0)
        for component in model.component_ids:
            model.deploy(component, "A")
        pins = ConstraintSet([
            LocationConstraint("anchor_a", allowed=["A"]),
            LocationConstraint("anchor_b", allowed=["B"]),
        ])
        result = MinCutAlgorithm(pins).run(model)
        assert result.deployment["floater"] == "A"  # follows the 10x traffic
