"""Tests for the model-level DecAp auction algorithm (§5.2)."""

import pytest

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, connectivity_awareness,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.desi import Generator, GeneratorConfig


def line_topology_model():
    """h0 - h1 - h2 in a line; chatty pair split across the ends."""
    model = DeploymentModel()
    for host in ("h0", "h1", "h2"):
        model.add_host(host, memory=100.0)
    model.connect_hosts("h0", "h1", reliability=0.8, bandwidth=100.0)
    model.connect_hosts("h1", "h2", reliability=0.8, bandwidth=100.0)
    for component in ("a", "b", "c"):
        model.add_component(component, memory=10.0)
    model.connect_components("a", "b", frequency=10.0, evt_size=1.0)
    model.connect_components("b", "c", frequency=1.0, evt_size=1.0)
    model.deploy("a", "h0")
    model.deploy("b", "h2")
    model.deploy("c", "h1")
    return model


class TestDecApBasics:
    def test_improves_availability_in_aggregate(self, availability,
                                                memory_constraints):
        """The paper's claim is aggregate ("significantly improves the
        system's overall availability"), not per-move monotone: an auction
        judges moves by locally-known interaction volume, so an individual
        run may dip slightly.  Across a batch the improvement must be clear.
        """
        generator = Generator(GeneratorConfig(hosts=5, components=12),
                              seed=55)
        improved = 0
        initial_total = final_total = 0.0
        for model in generator.generate_many(4):
            initial = availability.evaluate(model, model.deployment)
            result = DecApAlgorithm(availability, memory_constraints,
                                    seed=1).run(model)
            assert result.valid
            if result.value > initial + 1e-9:
                improved += 1
            initial_total += initial
            final_total += result.value
        assert improved >= 2  # most random starts leave room to improve
        assert final_total > initial_total

    def test_converges(self, availability, memory_constraints, medium_model):
        result = DecApAlgorithm(availability, memory_constraints, seed=1,
                                max_rounds=50).run(medium_model)
        # Converged before exhausting rounds (last round made no moves).
        assert result.extra["rounds"] < 50

    def test_complete_deployment(self, availability, memory_constraints,
                                 medium_model):
        result = DecApAlgorithm(availability, memory_constraints,
                                seed=1).run(medium_model)
        assert set(result.deployment) == set(medium_model.component_ids)


class TestAwarenessLocality:
    def test_moves_only_to_aware_hosts(self, availability):
        model = line_topology_model()
        awareness = connectivity_awareness(model)
        result = DecApAlgorithm(availability,
                                ConstraintSet([MemoryConstraint()]),
                                awareness=awareness, max_rounds=1).run(model)
        # In one round, components can only move one awareness hop.
        for component, new_host in result.deployment.items():
            old_host = model.deployment[component]
            if new_host != old_host:
                assert new_host in awareness[old_host]

    def test_full_awareness_beats_or_matches_limited(self, availability,
                                                     memory_constraints):
        generator = Generator(GeneratorConfig(
            hosts=6, components=14, physical_density=0.4), seed=91)
        total_limited = total_full = 0.0
        for model in generator.generate_many(4):
            hosts = set(model.host_ids)
            full = {h: hosts - {h} for h in hosts}
            limited = connectivity_awareness(model)
            total_limited += DecApAlgorithm(
                availability, memory_constraints, seed=1,
                awareness=limited).run(model).value
            total_full += DecApAlgorithm(
                availability, memory_constraints, seed=1,
                awareness=full).run(model).value
        assert total_full >= total_limited - 0.02

    def test_no_awareness_means_no_moves(self, availability,
                                         memory_constraints):
        model = line_topology_model()
        isolated = {h: set() for h in model.host_ids}
        result = DecApAlgorithm(availability, memory_constraints,
                                awareness=isolated).run(model)
        assert result.moves_from_initial == 0


class TestConstraintsAndQuality:
    def test_memory_respected(self, availability):
        model = DeploymentModel()
        model.add_host("h0", memory=25.0)
        model.add_host("h1", memory=25.0)
        model.connect_hosts("h0", "h1", reliability=0.9)
        for index in range(4):
            model.add_component(f"c{index}", memory=10.0)
        for i in range(4):
            for j in range(i + 1, 4):
                model.connect_components(f"c{i}", f"c{j}", frequency=5.0)
        model.deploy("c0", "h0")
        model.deploy("c1", "h0")
        model.deploy("c2", "h1")
        model.deploy("c3", "h1")
        result = DecApAlgorithm(availability,
                                ConstraintSet([MemoryConstraint()]),
                                seed=1).run(model)
        assert result.valid  # never piles 3x10 onto a 25-capacity host

    def test_below_centralized_on_sparse_networks(self, availability,
                                                  memory_constraints):
        """E5's expected shape: with limited awareness DecAp stays at or
        below the centralized greedy's quality (it sees strictly less)."""
        generator = Generator(GeneratorConfig(
            hosts=6, components=14, physical_density=0.3), seed=13)
        decap_total = avala_total = 0.0
        for model in generator.generate_many(4):
            decap_total += DecApAlgorithm(
                availability, memory_constraints, seed=1).run(model).value
            avala_total += AvalaAlgorithm(
                availability, memory_constraints, seed=1).run(model).value
        assert decap_total <= avala_total + 0.05 * 4

    def test_auction_counts_recorded(self, availability, memory_constraints,
                                     small_model):
        result = DecApAlgorithm(availability, memory_constraints,
                                seed=1).run(small_model)
        assert result.extra["auctions"] > 0
        assert result.extra["awareness_degree"] > 0
