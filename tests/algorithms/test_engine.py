"""Tests for the evaluation engine and the portfolio runner.

Covers the memo cache's model-listener invalidation, the delta fast path
and its fallback, budget-exhaustion truncation, and the portfolio's
degrade-don't-abort guarantees (crash, give-up, timeout).
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import (
    AvalaAlgorithm, HillClimbingAlgorithm, StochasticAlgorithm,
)
from repro.algorithms.base import DeploymentAlgorithm
from repro.algorithms.engine import (
    ERROR, OK, SKIPPED, TIMEOUT, DeploymentCache, EvaluationEngine,
    PortfolioRunner, run_portfolio,
)
from repro.core.analyzer import Analyzer
from repro.core.errors import EvaluationBudgetExceeded, NoValidDeploymentError
from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, Objective,
)


class CrashingAlgorithm(DeploymentAlgorithm):
    """Simulates an algorithm with a genuine bug."""

    name = "crashing"

    def _search(self, model, initial):
        raise RuntimeError("boom")


class GivingUpAlgorithm(DeploymentAlgorithm):
    """Simulates an algorithm that finds nothing valid."""

    name = "giving_up"

    def _search(self, model, initial):
        raise NoValidDeploymentError("nothing satisfies the constraints")


class SleepyAlgorithm(DeploymentAlgorithm):
    """Simulates an algorithm that blows its deadline."""

    name = "sleepy"

    def __init__(self, objective, constraints=None, seed=None,
                 naptime: float = 1.0):
        super().__init__(objective, constraints, seed)
        self.naptime = naptime

    def _search(self, model, initial):
        time.sleep(self.naptime)
        return initial, {}


class TestDeploymentCache:
    def test_second_evaluation_is_a_hit(self, tiny_model, availability):
        engine = EvaluationEngine(availability)
        first = engine.evaluate(tiny_model, tiny_model.deployment)
        second = engine.evaluate(tiny_model, tiny_model.deployment)
        assert first == second
        assert engine.stats.full_evaluations == 1
        assert engine.stats.cache_hits == 1

    def test_parameter_change_invalidates(self, tiny_model, availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        stale = engine.evaluate(tiny_model, deployment)
        tiny_model.set_physical_link_param("hA", "hB", "reliability", 0.9)
        fresh = engine.evaluate(tiny_model, deployment)
        assert fresh != stale  # c2--c3 crosses the now-better link
        assert fresh == availability.evaluate(tiny_model, deployment)
        assert engine.stats.full_evaluations == 2
        assert engine.cache.invalidations >= 1

    def test_topology_change_invalidates(self, tiny_model, availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        engine.evaluate(tiny_model, deployment)
        tiny_model.add_host("hC", memory=50.0)
        assert len(engine.cache) == 0

    def test_deployment_change_does_not_invalidate(self, tiny_model,
                                                   availability):
        # evaluate() takes the deployment explicitly, so the model's
        # *current* deployment is irrelevant to cached scores.
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        engine.evaluate(tiny_model, deployment)
        tiny_model.deploy("c1", "hB")
        assert len(engine.cache) == 1
        engine.evaluate(tiny_model, deployment)
        assert engine.stats.cache_hits == 1

    def test_objectives_do_not_cross_talk(self, tiny_model):
        cache = DeploymentCache()
        availability = EvaluationEngine(AvailabilityObjective(), cache=cache)
        cost = EvaluationEngine(CommunicationCostObjective(), cache=cache)
        deployment = dict(tiny_model.deployment)
        a = availability.evaluate(tiny_model, deployment)
        c = cost.evaluate(tiny_model, deployment)
        assert a != c
        assert len(cache) == 2
        assert availability.evaluate(tiny_model, deployment) == a
        assert cost.evaluate(tiny_model, deployment) == c
        assert availability.stats.cache_hits == 1
        assert cost.stats.cache_hits == 1

    def test_overflow_drops_wholesale(self, tiny_model, availability):
        cache = DeploymentCache(max_entries=2)
        engine = EvaluationEngine(availability, cache=cache)
        for c1_host, c2_host in [("hA", "hA"), ("hB", "hA"), ("hB", "hB")]:
            engine.evaluate(tiny_model,
                            {"c1": c1_host, "c2": c2_host, "c3": "hB"})
        assert len(cache) == 1  # third store cleared the full cache first


class TestEvaluationEngine:
    def test_delta_fast_path_is_charged_as_delta(self, tiny_model,
                                                 availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        base = engine.evaluate(tiny_model, deployment)
        delta = engine.move_delta(tiny_model, deployment, "c1", "hB")
        assert engine.stats.delta_evaluations == 1
        assert engine.stats.full_evaluations == 1  # only the base
        moved = dict(deployment, c1="hB")
        assert base + delta == pytest.approx(
            availability.evaluate(tiny_model, moved), abs=1e-9)

    def test_delta_fallback_for_non_delta_objectives(self, tiny_model):
        class FullOnly(Objective):
            name = "full_only"

            def evaluate(self, model, deployment):
                return float(len(set(deployment.values())))

        objective = FullOnly()
        engine = EvaluationEngine(objective)
        deployment = dict(tiny_model.deployment)
        delta = engine.move_delta(tiny_model, deployment, "c1", "hB")
        assert engine.stats.delta_fallbacks == 1
        assert engine.stats.delta_evaluations == 0
        assert engine.stats.full_evaluations == 2  # base + moved, memoized
        moved = dict(deployment, c1="hB")
        assert delta == pytest.approx(
            objective.evaluate(tiny_model, moved)
            - objective.evaluate(tiny_model, deployment), abs=1e-9)

    def test_evaluation_budget_raises_when_exhausted(self, tiny_model,
                                                     availability):
        engine = EvaluationEngine(availability, max_evaluations=2)
        engine.evaluate(tiny_model, {"c1": "hA", "c2": "hA", "c3": "hA"})
        engine.evaluate(tiny_model, {"c1": "hB", "c2": "hA", "c3": "hA"})
        with pytest.raises(EvaluationBudgetExceeded):
            engine.evaluate(tiny_model, {"c1": "hA", "c2": "hB", "c3": "hA"})
        assert engine.stats.truncated is True
        # Cache hits stay free even after exhaustion.
        assert engine.evaluate(
            tiny_model, {"c1": "hA", "c2": "hA", "c3": "hA"}) is not None

    def test_algorithm_truncates_gracefully(self, medium_model, availability,
                                            memory_constraints):
        algorithm = StochasticAlgorithm(availability, memory_constraints,
                                        seed=7, iterations=200)
        engine = EvaluationEngine(availability, memory_constraints,
                                  max_evaluations=10)
        result = algorithm.run(medium_model.copy(), engine=engine)
        assert result.extra["engine"]["truncated"] is True
        assert result.extra.get("truncated") is True
        assert result.deployment  # degraded to best-seen, not aborted
        counters = result.extra["engine"]
        assert counters["full_evaluations"] <= 10 + 1  # +1 final (uncharged)

    def test_snapshot_reports_budgets(self, tiny_model, availability):
        engine = EvaluationEngine(availability, max_evaluations=50,
                                  max_seconds=2.0)
        engine.evaluate(tiny_model, tiny_model.deployment)
        snapshot = engine.snapshot()
        assert snapshot["full_evaluations"] == 1
        assert snapshot["max_evaluations"] == 50
        assert snapshot["max_seconds"] == 2.0
        assert snapshot["supports_delta"] is True
        assert snapshot["elapsed"] >= 0.0


class TestPortfolioRunner:
    def _factories(self, availability, memory_constraints):
        return {
            "avala": lambda: AvalaAlgorithm(availability, memory_constraints,
                                            seed=1),
            "stochastic": lambda: StochasticAlgorithm(
                availability, memory_constraints, seed=1, iterations=20),
        }

    def test_all_ok(self, small_model, availability, memory_constraints):
        report = run_portfolio(
            small_model, self._factories(availability, memory_constraints))
        assert [o.status for o in report.outcomes] == [OK, OK]
        assert set(report.succeeded) == {"avala", "stochastic"}
        assert len(report.results()) == 2

    def test_crashing_member_degrades_to_error(self, small_model,
                                               availability,
                                               memory_constraints):
        factories = self._factories(availability, memory_constraints)
        factories["crashing"] = lambda: CrashingAlgorithm(
            availability, memory_constraints)
        report = run_portfolio(small_model, factories)
        assert report.outcome("crashing").status == ERROR
        assert "boom" in report.outcome("crashing").error
        assert set(report.succeeded) == {"avala", "stochastic"}

    def test_giving_up_member_degrades_to_skipped(self, small_model,
                                                  availability,
                                                  memory_constraints):
        factories = self._factories(availability, memory_constraints)
        factories["giving_up"] = lambda: GivingUpAlgorithm(
            availability, memory_constraints)
        report = run_portfolio(small_model, factories)
        assert report.outcome("giving_up").status == SKIPPED
        assert set(report.succeeded) == {"avala", "stochastic"}

    def test_slow_member_times_out(self, small_model, availability,
                                   memory_constraints):
        factories = self._factories(availability, memory_constraints)
        factories["sleepy"] = lambda: SleepyAlgorithm(
            availability, memory_constraints, naptime=1.0)
        runner = PortfolioRunner(algorithm_timeout=0.2)
        report = runner.run(small_model, factories)
        assert report.outcome("sleepy").status == TIMEOUT
        assert set(report.succeeded) == {"avala", "stochastic"}
        # The cycle's wall clock is bounded by the timeout, not the nap.
        assert report.elapsed < 1.0

    def test_shared_cache_saves_full_evaluations(self, small_model,
                                                 availability,
                                                 memory_constraints):
        factories = {
            "hillclimb": lambda: HillClimbingAlgorithm(
                availability, memory_constraints, seed=3, max_rounds=10),
            "stochastic": lambda: StochasticAlgorithm(
                availability, memory_constraints, seed=3, iterations=20),
            "avala": lambda: AvalaAlgorithm(availability, memory_constraints,
                                            seed=3),
        }
        runner = PortfolioRunner(parallel=False)  # deterministic ordering
        report = runner.run(small_model, factories)
        assert [o.status for o in report.outcomes] == [OK, OK, OK]
        counters = report.counters()
        logical = sum(r.evaluations for r in report.results())
        # The memoized/delta engine pays for measurably fewer full
        # Objective.evaluate calls than the algorithms logically request.
        assert counters["full_evaluations"] < logical
        assert counters["cache_hits"] + counters["delta_evaluations"] > 0
        # The search-engine counters surface through the same report (and
        # from there into repro.obs via the analyzer's promotion loop).
        assert counters["constraint_checks"] > 0
        assert "moves_rescored" in counters and "frontier_hits" in counters

    def test_empty_portfolio(self, small_model):
        report = PortfolioRunner().run(small_model, {})
        assert report.outcomes == []


class TestAnalyzerResilience:
    def test_crashing_algorithm_does_not_abort_analyze(self, medium_model):
        analyzer = Analyzer(AvailabilityObjective(), seed=5)
        analyzer.registry.register(
            "crashing", lambda: CrashingAlgorithm(analyzer.objective,
                                                  analyzer.constraints),
            tier="thorough")
        decision = analyzer.analyze(medium_model)
        assert decision.action in ("redeploy", "no_action")
        assert decision.portfolio is not None
        assert decision.portfolio.outcome("crashing").status == ERROR
        assert "crashing" in decision.portfolio.degraded

    def test_timed_out_algorithm_does_not_abort_analyze(self, medium_model):
        analyzer = Analyzer(AvailabilityObjective(), seed=5,
                            algorithm_timeout=0.25)
        analyzer.registry.register(
            "sleepy", lambda: SleepyAlgorithm(analyzer.objective,
                                              analyzer.constraints,
                                              naptime=1.5),
            tier="thorough")
        decision = analyzer.analyze(medium_model)
        assert decision.action in ("redeploy", "no_action")
        assert decision.portfolio.outcome("sleepy").status == TIMEOUT

    def test_decision_matches_sequential_analysis(self, medium_model):
        parallel = Analyzer(AvailabilityObjective(), seed=5, parallel=True)
        sequential = Analyzer(AvailabilityObjective(), seed=5, parallel=False)
        a = parallel.analyze(medium_model.copy())
        b = sequential.analyze(medium_model.copy())
        assert a.action == b.action
        if a.selected is not None:
            assert a.selected.value == pytest.approx(b.selected.value)
            assert a.selected.deployment == b.selected.deployment


class TestKernelRouting:
    def test_full_evaluations_served_by_kernel(self, tiny_model,
                                               availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        value = engine.evaluate(tiny_model, deployment)
        assert engine.stats.kernel_evaluations == 1
        # Kernel values are bit-identical to the object path.
        assert value == availability.evaluate(tiny_model, deployment)

    def test_deltas_served_by_kernel(self, tiny_model, availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        base = engine.evaluate(tiny_model, deployment)
        delta = engine.move_delta(tiny_model, deployment, "c1", "hB")
        assert engine.stats.kernel_deltas == 1
        assert engine.stats.delta_evaluations == 1
        moved = dict(deployment, c1="hB")
        assert base + delta == pytest.approx(
            availability.evaluate(tiny_model, moved), abs=1e-9)

    def test_use_kernels_false_takes_object_path(self, tiny_model,
                                                 availability):
        engine = EvaluationEngine(availability, use_kernels=False)
        deployment = dict(tiny_model.deployment)
        value = engine.evaluate(tiny_model, deployment)
        engine.move_delta(tiny_model, deployment, "c1", "hB")
        assert engine.stats.kernel_evaluations == 0
        assert engine.stats.kernel_deltas == 0
        assert value == availability.evaluate(tiny_model, deployment)

    def test_custom_objective_falls_back(self, tiny_model):
        class Custom(Objective):
            name = "custom"

            def evaluate(self, model, deployment):
                return float(len(deployment))

        engine = EvaluationEngine(Custom())
        engine.evaluate(tiny_model, dict(tiny_model.deployment))
        assert engine.stats.full_evaluations == 1
        assert engine.stats.kernel_evaluations == 0

    def test_unknown_host_falls_back_to_object_path(self, tiny_model,
                                                    availability):
        engine = EvaluationEngine(availability)
        deployment = {"c1": "hA", "c2": "hA", "c3": "ghost"}
        value = engine.evaluate(tiny_model, deployment)
        assert engine.stats.kernel_evaluations == 0
        assert value == availability.evaluate(tiny_model, deployment)

    def test_parameter_change_recompiles_kernel(self, tiny_model,
                                                availability):
        engine = EvaluationEngine(availability)
        deployment = dict(tiny_model.deployment)
        engine.evaluate(tiny_model, deployment)
        tiny_model.set_physical_link_param("hA", "hB", "reliability", 0.95)
        fresh = engine.evaluate(tiny_model, deployment)
        assert engine.stats.kernel_evaluations == 2
        assert fresh == availability.evaluate(tiny_model, deployment)

    def test_snapshot_reports_kernel_counters(self, tiny_model,
                                              availability):
        engine = EvaluationEngine(availability)
        engine.evaluate(tiny_model, dict(tiny_model.deployment))
        snapshot = engine.snapshot()
        assert snapshot["kernel_evaluations"] == 1
        assert snapshot["kernel_deltas"] == 0


class TestDeploymentHash:
    def test_hash_is_order_independent(self):
        from repro.core.model import Deployment

        items = [(f"c{i}", f"h{i % 7}") for i in range(50)]
        forward = Deployment(dict(items))
        backward = Deployment(dict(reversed(items)))
        assert forward == backward
        assert hash(forward) == hash(backward)

    def test_moved_derives_hash_incrementally(self):
        from repro.core.model import Deployment

        base = Deployment({f"c{i}": f"h{i % 5}" for i in range(30)})
        hash(base)  # prime the parent hash
        child = base.moved("c3", "h4")
        assert child._hash is not None  # derived, not recomputed
        assert hash(child) == hash(Deployment(dict(child)))
        # No-op move keeps the hash unchanged.
        same = base.moved("c3", base["c3"])
        assert hash(same) == hash(base)

    def test_hash_microbenchmark_beats_frozenset(self):
        """Guard for the incremental hash: on the search hot path (hashing
        a chain of moved() children) the O(1) derived hash must beat the
        old rehash-everything-via-frozenset scheme."""
        import time

        from repro.core.model import Deployment

        mapping = {f"component-{i}": f"host-{i % 40}" for i in range(400)}
        components = list(mapping)
        hosts = [f"host-{i}" for i in range(40)]

        def incremental():
            base = Deployment(mapping)
            hash(base)
            total = 0
            for index in range(300):
                child = base.moved(components[index % 400],
                                   hosts[index % 40])
                total ^= hash(child)
            return total

        def frozenset_rehash():
            base = Deployment(mapping)
            hash(base)
            total = 0
            for index in range(300):
                child = base.moved(components[index % 400],
                                   hosts[index % 40])
                total ^= hash(frozenset(child._map.items()))
            return total

        def best_of(repeats, func):
            best = float("inf")
            for __ in range(repeats):
                started = time.perf_counter()
                func()
                best = min(best, time.perf_counter() - started)
            return best

        incremental_time = best_of(5, incremental)
        frozenset_time = best_of(5, frozenset_rehash)
        # The derived hash is ~5x faster in practice; require merely
        # "not slower" with margin so CI noise cannot flake the guard.
        assert incremental_time < frozenset_time * 1.2, \
            f"incremental {incremental_time:.6f}s vs " \
            f"frozenset {frozenset_time:.6f}s"
