"""Tests for the Kernighan-Lin-style swap search."""

import pytest

from repro.algorithms import HillClimbingAlgorithm, SwapSearchAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.desi import Generator, GeneratorConfig


def memory_locked_model():
    """Two hosts, each exactly full; the optimum requires a SWAP.

    x (on h0) chats with y (on h1); u (on h1) chats with v (on h0).  Both
    pairs straddle a 0.5-reliability link; swapping y and v collocates
    both pairs.  No single move is memory-feasible: every host is full.
    """
    model = DeploymentModel(name="locked")
    model.add_host("h0", memory=20.0)
    model.add_host("h1", memory=20.0)
    model.connect_hosts("h0", "h1", reliability=0.5, bandwidth=100.0)
    for component in ("x", "y", "u", "v"):
        model.add_component(component, memory=10.0)
    model.connect_components("x", "y", frequency=5.0)
    model.connect_components("u", "v", frequency=5.0)
    model.deploy("x", "h0")
    model.deploy("v", "h0")
    model.deploy("y", "h1")
    model.deploy("u", "h1")
    return model


class TestSwapSearch:
    def test_escapes_memory_locked_optimum(self, availability):
        model = memory_locked_model()
        constraints = ConstraintSet([MemoryConstraint()])
        # Hill-climb is stuck: no single move fits.
        stuck = HillClimbingAlgorithm(availability, constraints,
                                      seed=1).run(model)
        assert stuck.value == pytest.approx(0.5)
        assert stuck.moves_from_initial == 0
        # Swap search exchanges y and v: both pairs collocate.
        result = SwapSearchAlgorithm(availability, constraints,
                                     seed=1).run(model)
        assert result.value == pytest.approx(1.0)
        assert result.extra["swaps_taken"] >= 1
        assert MemoryConstraint().is_satisfied(model, result.deployment)

    def test_never_worse_than_hillclimb(self, availability,
                                        memory_constraints):
        """Swap search explores a superset of hill-climb's neighborhood."""
        models = Generator(GeneratorConfig(
            hosts=5, components=12, host_memory=(15.0, 30.0),
            memory_headroom=1.15), seed=91).generate_many(4)
        for model in models:
            single = HillClimbingAlgorithm(availability, memory_constraints,
                                           seed=1).run(model)
            swap = SwapSearchAlgorithm(availability, memory_constraints,
                                       seed=1).run(model)
            assert swap.valid
            assert swap.value >= single.value - 1e-9

    def test_works_for_minimize_objectives(self, memory_constraints,
                                           small_model):
        from repro.core import LatencyObjective
        objective = LatencyObjective()
        initial = objective.evaluate(small_model, small_model.deployment)
        result = SwapSearchAlgorithm(objective, memory_constraints,
                                     seed=1).run(small_model)
        assert result.valid
        assert result.value <= initial + 1e-9

    def test_swap_delta_is_exact(self, availability, small_model):
        from repro.algorithms import SearchState
        assignment = dict(small_model.deployment)
        components = small_model.component_ids
        comp_a, comp_b = components[0], components[-1]
        if assignment[comp_a] == assignment[comp_b]:
            assignment[comp_b] = next(
                h for h in small_model.host_ids
                if h != assignment[comp_a])
        state = SearchState(small_model, ConstraintSet(), None, availability,
                            assignment)
        before = availability.evaluate(small_model, assignment)
        delta = state.swap_delta(state.component_index(comp_a),
                                 state.component_index(comp_b))
        swapped = dict(assignment)
        swapped[comp_a], swapped[comp_b] = swapped[comp_b], swapped[comp_a]
        after = availability.evaluate(small_model, swapped)
        assert delta == pytest.approx(after - before, abs=1e-12)
        # The probe must not have mutated the working state.
        assert state.mapping == assignment
        assert state.mapping[comp_a] != state.mapping[comp_b]

    def test_round_cap(self, availability, memory_constraints, medium_model):
        capped = SwapSearchAlgorithm(availability, memory_constraints,
                                     seed=1, max_rounds=1).run(medium_model)
        assert capped.extra["rounds"] == 1
