"""Property-based tests over the whole algorithm suite.

Invariant: on any feasible generated architecture, every algorithm returns a
complete, constraint-satisfying deployment whose reported value equals a
fresh evaluation of that deployment.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, GeneticAlgorithm, HillClimbingAlgorithm,
    SimulatedAnnealingAlgorithm, StochasticAlgorithm,
)
from repro.core import AvailabilityObjective, ConstraintSet, MemoryConstraint
from repro.core.objectives import LatencyObjective
from repro.desi import Generator, GeneratorConfig

FACTORIES = {
    "stochastic": lambda o, c: StochasticAlgorithm(o, c, seed=0,
                                                   iterations=15),
    "avala": lambda o, c: AvalaAlgorithm(o, c, seed=0),
    "hillclimb": lambda o, c: HillClimbingAlgorithm(o, c, seed=0,
                                                    max_rounds=20),
    "annealing": lambda o, c: SimulatedAnnealingAlgorithm(o, c, seed=0,
                                                          steps=400),
    "genetic": lambda o, c: GeneticAlgorithm(o, c, seed=0,
                                             population_size=12,
                                             generations=8),
    "decap": lambda o, c: DecApAlgorithm(o, c, seed=0, max_rounds=5),
}


@st.composite
def generated_models(draw):
    hosts = draw(st.integers(2, 5))
    components = draw(st.integers(2, 10))
    density = draw(st.sampled_from([0.5, 1.0]))
    seed = draw(st.integers(0, 10_000))
    config = GeneratorConfig(hosts=hosts, components=components,
                             physical_density=density,
                             memory_headroom=1.5)
    return Generator(config, seed=seed).generate()


@pytest.mark.parametrize("name", sorted(FACTORIES))
@settings(max_examples=15, deadline=None)
@given(model=generated_models())
def test_algorithm_contract(name, model):
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    result = FACTORIES[name](objective, constraints).run(model)
    # Complete assignment over known entities.
    assert set(result.deployment) == set(model.component_ids)
    assert set(result.deployment.values()) <= set(model.host_ids)
    # Constraint-satisfying (the generator guarantees feasibility exists).
    assert result.valid, f"{name} produced an invalid deployment"
    # Reported value is honest.
    assert result.value == pytest.approx(
        objective.evaluate(model, result.deployment))
    # Objective stays in its natural bounds.
    assert 0.0 <= result.value <= 1.0 + 1e-12


@pytest.mark.parametrize("name", ["hillclimb", "annealing"])
@settings(max_examples=10, deadline=None)
@given(model=generated_models())
def test_local_search_never_regresses(name, model):
    """Hill-climb and annealing keep the best-seen deployment, so they can
    never return something worse than the (valid) starting point."""
    objective = AvailabilityObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    initial = objective.evaluate(model, model.deployment)
    result = FACTORIES[name](objective, constraints).run(model)
    assert result.value >= initial - 1e-9


@settings(max_examples=10, deadline=None)
@given(model=generated_models())
def test_minimize_objectives_also_supported(model):
    objective = LatencyObjective()
    constraints = ConstraintSet([MemoryConstraint()])
    initial = objective.evaluate(model, model.deployment)
    result = HillClimbingAlgorithm(objective, constraints, seed=0,
                                   max_rounds=20).run(model)
    assert result.valid
    assert result.value <= initial + 1e-9
