"""Unit tests for the incremental search frontier (repro.algorithms.search).

The load-bearing invariant: after any sequence of applied moves,
``SearchState.best_move()`` returns exactly what a brute-force scan over all
(component, host) pairs would pick under the canonical selection rule
(max direction-adjusted gain > 1e-12, earliest component then host wins
ties) — while re-scoring only the invalidated slice.
"""

from __future__ import annotations

import pytest

from repro.algorithms import SearchState, make_checker
from repro.algorithms.engine import EvaluationEngine
from repro.core.constraints import (
    BandwidthConstraint, CollocationConstraint, ConstraintSet,
    LocationConstraint, MemoryConstraint,
)
from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, ThroughputObjective,
)
from repro.desi import Generator, GeneratorConfig


def _model(seed=5, hosts=5, components=12):
    config = GeneratorConfig(hosts=hosts, components=components,
                             host_memory=(15.0, 30.0),
                             memory_headroom=1.3,
                             reliability=(0.3, 0.95))
    return Generator(config, seed=seed).generate()


def _rich_constraints(model):
    comps = model.component_ids
    return ConstraintSet([
        MemoryConstraint(),
        BandwidthConstraint(),
        LocationConstraint(comps[0], forbidden=[model.host_ids[0]]),
        CollocationConstraint([comps[1], comps[2]], together=True),
        CollocationConstraint([comps[3], comps[4]], together=False),
    ])


def _brute_force_best(state):
    """Reference implementation of the canonical selection rule."""
    best = None
    for ci in range(state.cm.n_components):
        for hi in range(state.cm.n_hosts):
            if hi == state.array[ci]:
                continue
            if not state.checker.allows_index(ci, hi):
                continue
            delta = state.delta(ci, hi)
            gain = delta if state.objective.direction == "max" else -delta
            if gain > 1e-12 and (best is None or gain > best[0]):
                best = (gain, ci, hi)
    return None if best is None else (best[1], best[2])


@pytest.mark.parametrize("objective_cls", [
    AvailabilityObjective,        # neighbor-local deltas
    CommunicationCostObjective,   # neighbor-local, minimize
    ThroughputObjective,          # bottleneck: full invalidation per move
])
@pytest.mark.parametrize("use_compiled", [True, False])
def test_best_move_matches_brute_force_along_trajectory(objective_cls,
                                                        use_compiled):
    model = _model()
    constraints = _rich_constraints(model)
    objective = objective_cls()
    engine = EvaluationEngine(objective, constraints)
    state = SearchState(model, constraints, engine, objective,
                        model.deployment, use_compiled=use_compiled)
    reference = SearchState(model, constraints,
                            EvaluationEngine(objective, constraints),
                            objective, model.deployment,
                            use_compiled=use_compiled)
    for step in range(12):
        move = state.best_move()
        expected = _brute_force_best(reference)
        assert (None if move is None else (move[0], move[1])) == expected, \
            f"diverged at step {step}"
        if move is None:
            break
        state.apply(move[0], move[1])
        reference.apply(move[0], move[1])
        assert state.mapping == reference.mapping


def test_compiled_and_object_frontiers_take_identical_paths():
    model = _model(seed=11)
    constraints = _rich_constraints(model)
    objective = AvailabilityObjective()
    states = [
        SearchState(model, constraints, EvaluationEngine(objective,
                                                         constraints),
                    objective, model.deployment, use_compiled=flag)
        for flag in (True, False)
    ]
    while True:
        moves = [s.best_move() for s in states]
        assert moves[0] == moves[1]
        if moves[0] is None:
            break
        for s in states:
            s.apply(moves[0][0], moves[0][1])
    assert states[0].mapping == states[1].mapping
    assert states[0].moves == states[1].moves


def test_frontier_reuses_cached_deltas():
    model = _model(seed=7)
    constraints = ConstraintSet([MemoryConstraint()])
    objective = AvailabilityObjective()
    engine = EvaluationEngine(objective, constraints)
    state = SearchState(model, constraints, engine, objective,
                        model.deployment)
    first = state.best_move()
    assert first is not None
    scored_initially = engine.stats.moves_rescored
    assert scored_initially > 0
    state.apply(first[0], first[1])
    state.best_move()
    rescored = engine.stats.moves_rescored - scored_initially
    # Only rows touching the moved component / changed hosts re-score;
    # with 12 components x 5 hosts that must be well under a full rescan.
    assert rescored < scored_initially
    assert engine.stats.frontier_hits > 0
    assert engine.stats.constraint_checks > 0


def test_apply_keeps_checker_mapping_and_array_in_sync():
    model = _model(seed=9)
    constraints = _rich_constraints(model)
    objective = AvailabilityObjective()
    state = SearchState(model, constraints, None, objective,
                        model.deployment)
    for __ in range(6):
        move = state.best_move()
        if move is None:
            break
        state.apply(move[0], move[1])
        assert state.satisfied() == constraints.is_satisfied(
            model, state.mapping)
        for cid, hid in state.mapping.items():
            assert state.array[state.component_index(cid)] == \
                state.host_index(hid)
    assert len(state.moves) > 0


def test_swap_allowed_permits_exact_fit_exchange():
    """Replicates the memory-locked scenario: no single move fits, but the
    pairwise exchange must be judged feasible with each component
    hypothetically removed from its side."""
    from repro.core.model import DeploymentModel
    model = DeploymentModel(name="locked")
    model.add_host("h0", memory=20.0)
    model.add_host("h1", memory=20.0)
    model.connect_hosts("h0", "h1", reliability=0.5, bandwidth=100.0)
    for component in ("x", "y", "u", "v"):
        model.add_component(component, memory=10.0)
    model.deploy("x", "h0")
    model.deploy("v", "h0")
    model.deploy("y", "h1")
    model.deploy("u", "h1")
    constraints = ConstraintSet([MemoryConstraint()])
    for use_compiled in (True, False):
        state = SearchState(model, constraints, None,
                            AvailabilityObjective(), model.deployment,
                            use_compiled=use_compiled)
        ya, vb = state.component_index("y"), state.component_index("v")
        assert state.best_move() is None  # both hosts full: no single move
        assert state.swap_allowed(ya, vb)
        state.apply_swap(ya, vb)
        assert state.mapping["y"] == "h0"
        assert state.mapping["v"] == "h1"
        assert state.satisfied()


def test_make_checker_falls_back_for_unknown_constraint_types():
    class Odd(MemoryConstraint):
        pass

    model = _model(seed=3, hosts=3, components=5)
    compiled = make_checker(model, ConstraintSet([MemoryConstraint()]))
    fallback = make_checker(model, ConstraintSet([Odd()]))
    assert compiled.compiled
    assert not fallback.compiled
    # Both count their probes.
    compiled.reset({})
    fallback.reset({})
    compiled.allows(model.component_ids[0], model.host_ids[0])
    fallback.allows(model.component_ids[0], model.host_ids[0])
    assert compiled.stats.constraint_checks == 1
    assert fallback.stats.constraint_checks == 1


def test_uncompilable_constraints_still_search_correctly():
    """With an unknown constraint type the frontier must stay conservative
    (every row's legality re-derived per move) yet still match brute
    force."""
    class Odd(MemoryConstraint):
        pass

    model = _model(seed=13, hosts=4, components=8)
    constraints = ConstraintSet([Odd()])
    objective = AvailabilityObjective()
    engine = EvaluationEngine(objective, constraints)
    state = SearchState(model, constraints, engine, objective,
                        model.deployment)
    reference = SearchState(model, constraints,
                            EvaluationEngine(objective, constraints),
                            objective, model.deployment)
    assert not state.checker.compiled
    for __ in range(8):
        move = state.best_move()
        expected = _brute_force_best(reference)
        assert (None if move is None else (move[0], move[1])) == expected
        if move is None:
            break
        state.apply(move[0], move[1])
        reference.apply(move[0], move[1])
