"""Kernel-vs-object equivalence property tests.

The compiled kernels replicate the object path's arithmetic in the same
accumulation order, so for random generator models and random move
sequences every objective's kernel ``evaluate`` and ``move_delta`` must
match the object path within 1e-9 — including after parameter mutations
that trigger recompilation.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.compiled import compile_kernel, compiled_model
from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, DurabilityObjective,
    LatencyObjective, SecurityObjective, ThroughputObjective,
    WeightedObjective,
)
from repro.desi.generator import Generator, GeneratorConfig

TOLERANCE = 1e-9


def paint_extended_params(model, seed):
    """Set the parameters the generator leaves at defaults, so the
    security/durability/criticality landscapes are non-trivial."""
    rng = random.Random(seed)
    for link in model.physical_links:
        model.set_physical_link_param(*link.hosts, "security", rng.random())
    for host in model.hosts:
        if rng.random() < 0.7:  # the rest stay mains-powered (inf battery)
            model.set_host_param(host.id, "battery", rng.uniform(50.0, 500.0))
        model.set_host_param(host.id, "cpu", rng.uniform(1.0, 8.0))
    for component in model.components:
        model.set_component_param(component.id, "cpu",
                                  rng.uniform(0.1, 2.0))
    for link in model.logical_links:
        model.set_logical_link_param(*link.components, "criticality",
                                     rng.uniform(0.5, 2.0))


def build_model(hosts, components, seed):
    model = Generator(GeneratorConfig(hosts=hosts, components=components),
                      seed=seed).generate(f"eq-{seed}")
    paint_extended_params(model, seed * 31 + 1)
    return model


def all_objectives():
    return [
        AvailabilityObjective(),
        AvailabilityObjective(use_criticality=True),
        LatencyObjective(),
        CommunicationCostObjective(),
        SecurityObjective(),
        ThroughputObjective(),
        DurabilityObjective(),
        WeightedObjective(
            [(AvailabilityObjective(), 1.0), (LatencyObjective(), 0.4),
             (ThroughputObjective(), 0.2), (DurabilityObjective(), 0.1)],
            scales=[1.0, 1000.0, 1.0, 100.0]),
    ]


def random_moves(model, rng, count):
    component_ids = model.component_ids
    host_ids = model.host_ids
    return [(rng.choice(component_ids), rng.choice(host_ids))
            for __ in range(count)]


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 41])
    @pytest.mark.parametrize("shape", [(4, 9), (6, 14)])
    def test_evaluate_matches_object_path(self, shape, seed):
        model = build_model(*shape, seed)
        compiled = compiled_model(model)
        deployment = dict(model.deployment)
        assignment = compiled.encode(deployment)
        for objective in all_objectives():
            kernel = compile_kernel(objective, compiled)
            assert kernel.evaluate(assignment) == pytest.approx(
                objective.evaluate(model, deployment), abs=TOLERANCE), \
                objective.name

    @pytest.mark.parametrize("seed", [5, 23])
    def test_move_sequence_matches_object_path(self, seed):
        model = build_model(5, 12, seed)
        compiled = compiled_model(model)
        rng = random.Random(seed * 7)
        deployment = dict(model.deployment)
        objectives = all_objectives()
        kernels = [compile_kernel(o, compiled) for o in objectives]
        for component_id, host_id in random_moves(model, rng, 25):
            assignment = compiled.encode(deployment)
            component_index = compiled.component_index[component_id]
            host_index = compiled.host_index[host_id]
            moved = dict(deployment)
            moved[component_id] = host_id
            for objective, kernel in zip(objectives, kernels, strict=True):
                reference = (objective.evaluate(model, moved)
                             - objective.evaluate(model, deployment))
                kernel_delta = kernel.move_delta(assignment, component_index,
                                                 host_index)
                object_delta = objective.move_delta(model, deployment,
                                                    component_id, host_id)
                assert kernel_delta == pytest.approx(
                    reference, abs=TOLERANCE), objective.name
                assert object_delta == pytest.approx(
                    reference, abs=TOLERANCE), objective.name
            # Accept the move and keep walking from the new base.
            deployment = moved

    @pytest.mark.parametrize("seed", [11, 29])
    def test_equivalence_survives_recompilation(self, seed):
        model = build_model(5, 10, seed)
        rng = random.Random(seed * 13)
        deployment = dict(model.deployment)
        objectives = all_objectives()
        for round_index in range(3):
            # Mutate parameters of every kind; each bump invalidates the
            # snapshot and the next compiled_model() call recompiles.
            link = model.physical_links[
                rng.randrange(len(model.physical_links))]
            model.set_physical_link_param(*link.hosts, "reliability",
                                          rng.random())
            model.set_physical_link_param(*link.hosts, "bandwidth",
                                          rng.uniform(10.0, 200.0))
            logical = model.logical_links[
                rng.randrange(len(model.logical_links))]
            model.set_logical_link_param(*logical.components, "frequency",
                                         rng.uniform(1.0, 10.0))
            host = model.hosts[rng.randrange(len(model.hosts))]
            model.set_host_param(host.id, "battery", rng.uniform(50.0, 500.0))

            compiled = compiled_model(model)
            assert not compiled.stale
            assignment = compiled.encode(deployment)
            for objective in objectives:
                kernel = compile_kernel(objective, compiled)
                assert kernel.evaluate(assignment) == pytest.approx(
                    objective.evaluate(model, deployment), abs=TOLERANCE), \
                    (objective.name, round_index)
                component_id, host_id = random_moves(model, rng, 1)[0]
                reference = (
                    objective.evaluate(
                        model, dict(deployment, **{component_id: host_id}))
                    - objective.evaluate(model, deployment))
                assert kernel.move_delta(
                    assignment, compiled.component_index[component_id],
                    compiled.host_index[host_id]) == pytest.approx(
                        reference, abs=TOLERANCE), (objective.name,
                                                    round_index)

    def test_stateful_deltas_follow_base_changes(self):
        """Throughput/Durability accumulators must rebuild when queried
        against a different base deployment (and after model mutations)."""
        model = build_model(4, 8, 71)
        deployment = dict(model.deployment)
        for objective in (ThroughputObjective(), DurabilityObjective()):
            compiled = compiled_model(model)
            kernel = compile_kernel(objective, compiled)
            assignment = compiled.encode(deployment)
            first = kernel.move_delta(assignment, 0, 0)
            # Different base: accumulators keyed to the old base must not
            # leak into the new one.
            other = dict(deployment)
            other_component = model.component_ids[-1]
            other_host = model.host_ids[-1]
            other[other_component] = other_host
            other_assignment = compiled.encode(other)
            moved = dict(other)
            moved[model.component_ids[0]] = model.host_ids[0]
            reference = (objective.evaluate(model, moved)
                         - objective.evaluate(model, other))
            assert kernel.move_delta(other_assignment, 0, 0) == \
                pytest.approx(reference, abs=TOLERANCE)
            # And the original base still answers correctly afterwards.
            base_moved = dict(deployment)
            base_moved[model.component_ids[0]] = model.host_ids[0]
            base_reference = (objective.evaluate(model, base_moved)
                              - objective.evaluate(model, deployment))
            assert kernel.move_delta(assignment, 0, 0) == pytest.approx(
                base_reference, abs=TOLERANCE)
            assert first == pytest.approx(base_reference, abs=TOLERANCE)

    def test_object_path_state_invalidates_on_mutation(self):
        """The object-path Throughput/Durability accumulators are keyed on
        model.version: a parameter change must not serve stale deltas."""
        model = build_model(4, 8, 83)
        deployment = dict(model.deployment)
        for objective in (ThroughputObjective(), DurabilityObjective()):
            component_id = model.component_ids[0]
            host_id = model.host_ids[0]
            objective.move_delta(model, deployment, component_id, host_id)
            # Mutate something the accumulators depend on.
            link = model.physical_links[0]
            model.set_physical_link_param(*link.hosts, "bandwidth", 7.0)
            host = model.hosts[0]
            model.set_host_param(host.id, "battery", 33.0)
            moved = dict(deployment)
            moved[component_id] = host_id
            reference = (objective.evaluate(model, moved)
                         - objective.evaluate(model, deployment))
            assert objective.move_delta(
                model, deployment, component_id, host_id) == pytest.approx(
                    reference, abs=TOLERANCE), objective.name
