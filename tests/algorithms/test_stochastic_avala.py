"""Tests for the Stochastic and Avala approximative algorithms (§5.1)."""

import pytest

from repro.algorithms import (
    AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.core.constraints import CollocationConstraint, LocationConstraint
from repro.desi import Generator, GeneratorConfig


class TestStochastic:
    def test_produces_valid_deployment(self, medium_model, availability,
                                       memory_constraints):
        result = StochasticAlgorithm(availability, memory_constraints,
                                     seed=1, iterations=30).run(medium_model)
        assert result.valid
        assert set(result.deployment) == set(medium_model.component_ids)

    def test_deterministic_with_seed(self, small_model, availability,
                                     memory_constraints):
        first = StochasticAlgorithm(availability, memory_constraints,
                                    seed=9, iterations=20).run(small_model)
        second = StochasticAlgorithm(availability, memory_constraints,
                                     seed=9, iterations=20).run(small_model)
        assert first.deployment == second.deployment
        assert first.value == second.value

    def test_more_iterations_never_hurt(self, small_model, availability,
                                        memory_constraints):
        few = StochasticAlgorithm(availability, memory_constraints,
                                  seed=3, iterations=5).run(small_model)
        many = StochasticAlgorithm(availability, memory_constraints,
                                   seed=3, iterations=200).run(small_model)
        assert many.value >= few.value - 1e-12

    def test_iterations_validation(self, availability):
        with pytest.raises(ValueError):
            StochasticAlgorithm(availability, iterations=0)

    def test_respects_location_constraints(self, small_model, availability):
        pinned_host = small_model.host_ids[0]
        component = small_model.component_ids[0]
        constraints = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint(component, allowed=[pinned_host]),
        ])
        result = StochasticAlgorithm(availability, constraints, seed=2,
                                     iterations=20).run(small_model)
        assert result.deployment[component] == pinned_host

    def test_evaluation_count_equals_feasible_iterations(
            self, small_model, availability, memory_constraints):
        algorithm = StochasticAlgorithm(availability, memory_constraints,
                                        seed=4, iterations=25)
        result = algorithm.run(small_model)
        assert result.evaluations == result.extra["feasible_iterations"]
        assert result.evaluations <= 25


class TestAvala:
    def test_produces_valid_deployment(self, medium_model, availability,
                                       memory_constraints):
        result = AvalaAlgorithm(availability, memory_constraints,
                                seed=1).run(medium_model)
        assert result.valid
        assert set(result.deployment) == set(medium_model.component_ids)

    def test_collocates_chatty_cluster(self, availability):
        """Avala must put a tightly-coupled trio on one host."""
        model = DeploymentModel()
        model.add_host("good", memory=100.0)
        model.add_host("bad", memory=100.0)
        model.connect_hosts("good", "bad", reliability=0.1, bandwidth=10.0)
        for component in ("a", "b", "c"):
            model.add_component(component, memory=10.0)
        model.connect_components("a", "b", frequency=10.0)
        model.connect_components("b", "c", frequency=10.0)
        model.connect_components("a", "c", frequency=10.0)
        model.deploy("a", "good")
        model.deploy("b", "bad")
        model.deploy("c", "good")
        result = AvalaAlgorithm(availability,
                                ConstraintSet([MemoryConstraint()]),
                                seed=0).run(model)
        assert len(set(result.deployment.values())) == 1
        assert result.value == pytest.approx(1.0)

    def test_near_optimal_on_small_systems(self, availability,
                                           memory_constraints):
        """Avala should land within 10% of the Exact optimum on average
        (the companion report's headline result)."""
        generator = Generator(GeneratorConfig(hosts=3, components=7),
                              seed=77)
        gaps = []
        for model in generator.generate_many(5):
            exact = ExactAlgorithm(availability,
                                   memory_constraints).run(model)
            avala = AvalaAlgorithm(availability, memory_constraints,
                                   seed=1).run(model)
            assert avala.valid
            gaps.append(exact.value - avala.value)
        assert sum(gaps) / len(gaps) < 0.10

    def test_beats_or_matches_initial_random_deployment(
            self, medium_model, availability, memory_constraints):
        initial_value = availability.evaluate(medium_model,
                                              medium_model.deployment)
        result = AvalaAlgorithm(availability, memory_constraints,
                                seed=1).run(medium_model)
        assert result.value >= initial_value - 1e-12

    def test_respects_collocation_constraints(self, small_model,
                                              availability):
        c0, c1 = small_model.component_ids[:2]
        constraints = ConstraintSet([
            MemoryConstraint(),
            CollocationConstraint([c0, c1], together=False),
        ])
        result = AvalaAlgorithm(availability, constraints,
                                seed=1).run(small_model)
        assert result.deployment[c0] != result.deployment[c1]

    def test_host_ordering_prefers_capacity_and_links(self, availability):
        model = DeploymentModel()
        model.add_host("hub", memory=200.0)
        model.add_host("leaf1", memory=50.0)
        model.add_host("leaf2", memory=50.0)
        model.connect_hosts("hub", "leaf1", reliability=0.9, bandwidth=100.0)
        model.connect_hosts("hub", "leaf2", reliability=0.9, bandwidth=100.0)
        model.connect_hosts("leaf1", "leaf2", reliability=0.2, bandwidth=10.0)
        model.add_component("x", memory=1.0)
        model.deploy("x", "leaf1")
        algorithm = AvalaAlgorithm(availability, ConstraintSet())
        assert algorithm._host_rank(model)[0] == "hub"

    def test_overconstrained_returns_error(self, availability):
        model = DeploymentModel()
        model.add_host("h1", memory=5.0)
        model.add_component("c1", memory=10.0)  # cannot fit anywhere
        model.deploy("c1", "h1")
        from repro.core.errors import NoValidDeploymentError
        with pytest.raises(NoValidDeploymentError):
            AvalaAlgorithm(availability,
                           ConstraintSet([MemoryConstraint()])).run(model)


class TestOrderingOfSuite:
    def test_paper_quality_ordering(self, availability, memory_constraints):
        """E1's shape: Exact >= Avala >= Stochastic(few) on average."""
        generator = Generator(GeneratorConfig(hosts=3, components=7),
                              seed=101)
        exact_sum = avala_sum = stochastic_sum = 0.0
        models = generator.generate_many(5)
        for model in models:
            exact_sum += ExactAlgorithm(
                availability, memory_constraints).run(model).value
            avala_sum += AvalaAlgorithm(
                availability, memory_constraints, seed=1).run(model).value
            stochastic_sum += StochasticAlgorithm(
                availability, memory_constraints, seed=1,
                iterations=10).run(model).value
        assert exact_sum >= avala_sum - 1e-9
        assert exact_sum >= stochastic_sum - 1e-9
