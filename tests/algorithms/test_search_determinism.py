"""Seed-determinism regression guard for the search-engine rewire.

The golden fixture (``data/search_determinism_golden.json``) was generated
by running the portfolio algorithms *before* they were rewired through
``repro.algorithms.search.SearchState`` / the compiled constraint checker.
The tests assert that fixed-seed runs still produce byte-identical
deployments afterwards, and that the compiled fast path and the object
constraint path agree move-for-move.

Regenerate the fixture (only when a deliberate behavioural change is being
made) with::

    PYTHONPATH=src python tests/algorithms/test_search_determinism.py
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.algorithms import (
    AvalaAlgorithm, DecApAlgorithm, GeneticAlgorithm, HillClimbingAlgorithm,
    SimulatedAnnealingAlgorithm, StochasticAlgorithm, SwapSearchAlgorithm,
)
from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, LocationConstraint,
    MemoryConstraint,
)
from repro.core.errors import AlgorithmError, NoValidDeploymentError
from repro.core.objectives import AvailabilityObjective, ThroughputObjective
from repro.desi import Generator, GeneratorConfig

GOLDEN = pathlib.Path(__file__).parent / "data" / "search_determinism_golden.json"

SEED = 421


def _models():
    config = GeneratorConfig(hosts=4, components=8,
                             host_memory=(10.0, 25.0),
                             memory_headroom=1.2,
                             reliability=(0.2, 0.95))
    return Generator(config, seed=77).generate_many(2, "det")


def _constraints(model, rich: bool) -> ConstraintSet:
    constraints = ConstraintSet([MemoryConstraint()])
    if rich:
        comps = model.component_ids
        constraints.add(
            LocationConstraint(comps[0], forbidden=[model.host_ids[0]]))
        constraints.add(
            CollocationConstraint([comps[1], comps[2]], together=True))
        constraints.add(
            CollocationConstraint([comps[3], comps[4]], together=False))
    return constraints


def _algorithms():
    return [
        ("hillclimb", lambda o, c: HillClimbingAlgorithm(o, c, seed=SEED)),
        ("swapsearch", lambda o, c: SwapSearchAlgorithm(o, c, seed=SEED)),
        ("annealing", lambda o, c: SimulatedAnnealingAlgorithm(
            o, c, seed=SEED, steps=1500)),
        ("genetic", lambda o, c: GeneticAlgorithm(
            o, c, seed=SEED, generations=15)),
        ("stochastic", lambda o, c: StochasticAlgorithm(
            o, c, seed=SEED, iterations=30)),
        ("avala", lambda o, c: AvalaAlgorithm(o, c, seed=SEED)),
        ("decap", lambda o, c: DecApAlgorithm(o, c, seed=SEED)),
    ]


def _objectives():
    # One neighbor-local objective and one bottleneck-shaped one, so both
    # SearchState invalidation regimes are pinned.
    return [("availability", AvailabilityObjective),
            ("throughput", ThroughputObjective)]


def run_cases():
    """Every (model, constraint set, objective, algorithm) outcome."""
    out = {}
    for mi, model in enumerate(_models()):
        for flavor, rich in (("mem", False), ("rich", True)):
            for obj_name, obj_factory in _objectives():
                for name, factory in _algorithms():
                    algorithm = factory(obj_factory(),
                                        _constraints(model, rich))
                    key = f"m{mi}/{flavor}/{obj_name}/{name}"
                    try:
                        result = algorithm.run(model)
                    except (AlgorithmError, NoValidDeploymentError) as exc:
                        out[key] = {"error": type(exc).__name__}
                        continue
                    out[key] = {
                        "deployment": dict(sorted(
                            result.deployment.as_dict().items())),
                        "valid": result.valid,
                    }
    return out


def test_fixed_seed_outcomes_match_prerewire_golden():
    golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
    current = run_cases()
    assert current.keys() == golden.keys()
    mismatches = {key: (golden[key], current[key])
                  for key in golden if golden[key] != current[key]}
    assert not mismatches, (
        f"{len(mismatches)} fixed-seed outcomes changed vs the pre-rewire "
        f"golden: {sorted(mismatches)[:5]}")


def test_compiled_and_object_checkers_yield_identical_results():
    """The compiled constraint fast path must not change any trajectory."""
    for mi, model in enumerate(_models()):
        for flavor, rich in (("mem", False), ("rich", True)):
            constraints = _constraints(model, rich)
            for obj_name, obj_factory in _objectives():
                for name, factory in _algorithms():
                    fast = factory(obj_factory(), constraints)
                    slow = factory(obj_factory(), constraints)
                    slow.use_compiled = False
                    assert fast.use_compiled, "compiled path must be default"
                    try:
                        fast_result = fast.run(model)
                    except (AlgorithmError, NoValidDeploymentError) as exc:
                        with pytest.raises(type(exc)):
                            slow.run(model)
                        continue
                    slow_result = slow.run(model)
                    label = f"m{mi}/{flavor}/{obj_name}/{name}"
                    assert (fast_result.deployment.as_dict()
                            == slow_result.deployment.as_dict()), label
                    assert fast_result.valid == slow_result.valid, label
                    assert (fast_result.extra.get("moves")
                            == slow_result.extra.get("moves")), label


if __name__ == "__main__":
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(json.dumps(run_cases(), indent=1, sort_keys=True),
                      encoding="utf-8")
    print(f"wrote {GOLDEN}")
