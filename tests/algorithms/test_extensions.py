"""Tests for the extension algorithms: hill-climb, annealing, genetic.

These validate the framework's algorithm-pluggability claim: three new main
bodies reuse the same Objective/ConstraintSet plug points untouched.
"""

import pytest

from repro.algorithms import (
    ExactAlgorithm, GeneticAlgorithm, HillClimbingAlgorithm,
    SimulatedAnnealingAlgorithm,
)
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, LatencyObjective,
    MemoryConstraint,
)
from repro.core.constraints import LocationConstraint

ALL_EXTENSIONS = [
    lambda obj, cons: HillClimbingAlgorithm(obj, cons, seed=1),
    lambda obj, cons: SimulatedAnnealingAlgorithm(obj, cons, seed=1,
                                                  steps=2000),
    lambda obj, cons: GeneticAlgorithm(obj, cons, seed=1,
                                       population_size=20, generations=20),
]


@pytest.mark.parametrize("factory", ALL_EXTENSIONS,
                         ids=["hillclimb", "annealing", "genetic"])
class TestCommonContract:
    def test_valid_and_complete(self, factory, medium_model, availability,
                                memory_constraints):
        result = factory(availability, memory_constraints).run(medium_model)
        assert result.valid
        assert set(result.deployment) == set(medium_model.component_ids)

    def test_never_worse_than_initial(self, factory, small_model,
                                      availability, memory_constraints):
        initial = availability.evaluate(small_model, small_model.deployment)
        result = factory(availability, memory_constraints).run(small_model)
        assert result.value >= initial - 1e-9

    def test_works_with_minimize_objective(self, factory, small_model,
                                           memory_constraints):
        objective = LatencyObjective()
        initial = objective.evaluate(small_model, small_model.deployment)
        result = factory(objective, memory_constraints).run(small_model)
        assert result.valid
        assert result.value <= initial + 1e-9

    def test_respects_location_pin(self, factory, small_model, availability):
        component = small_model.component_ids[0]
        host = small_model.deployment[component]
        constraints = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint(component, allowed=[host]),
        ])
        result = factory(availability, constraints).run(small_model)
        assert result.deployment[component] == host

    def test_deterministic_with_seed(self, factory, small_model,
                                     availability, memory_constraints):
        first = factory(availability, memory_constraints).run(small_model)
        second = factory(availability, memory_constraints).run(small_model)
        assert first.deployment == second.deployment


class TestHillClimb:
    def test_reaches_local_optimum(self, tiny_model, availability):
        result = HillClimbingAlgorithm(availability, ConstraintSet(),
                                       seed=1).run(tiny_model)
        # For the tiny model the global optimum (all collocated) is
        # reachable by single moves from any start.
        assert result.value == pytest.approx(1.0)

    def test_starts_from_current_deployment_for_cheap_effecting(
            self, small_model, availability, memory_constraints):
        result = HillClimbingAlgorithm(availability, memory_constraints,
                                       seed=1).run(small_model)
        assert result.extra["moves_taken"] == result.moves_from_initial

    def test_max_rounds_caps_work(self, medium_model, availability,
                                  memory_constraints):
        capped = HillClimbingAlgorithm(availability, memory_constraints,
                                       seed=1, max_rounds=1).run(medium_model)
        assert capped.extra["rounds"] == 1
        assert capped.moves_from_initial <= 1


class TestAnnealing:
    def test_parameter_validation(self, availability):
        with pytest.raises(ValueError):
            SimulatedAnnealingAlgorithm(availability, cooling=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingAlgorithm(availability, cooling=1.5)

    def test_incremental_value_tracking_is_consistent(
            self, small_model, availability, memory_constraints):
        """The incrementally-maintained best value must equal a fresh
        evaluation of the returned deployment."""
        algorithm = SimulatedAnnealingAlgorithm(
            availability, memory_constraints, seed=7, steps=3000)
        result = algorithm.run(small_model)
        assert result.value == pytest.approx(
            availability.evaluate(small_model, result.deployment))

    def test_near_optimal_on_small_model(self, small_model, availability,
                                         memory_constraints):
        exact = ExactAlgorithm(availability,
                               memory_constraints).run(small_model)
        annealed = SimulatedAnnealingAlgorithm(
            availability, memory_constraints, seed=2,
            steps=5000).run(small_model)
        assert annealed.value >= exact.value - 0.05


class TestGenetic:
    def test_parameter_validation(self, availability):
        with pytest.raises(ValueError):
            GeneticAlgorithm(availability, population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(availability, population_size=5, elite=5)

    def test_selection_pressure_repairs_population(self, availability):
        """Start infeasible-heavy: the GA must still end feasible."""
        model = DeploymentModel()
        model.add_host("h0", memory=25.0)
        model.add_host("h1", memory=25.0)
        model.connect_hosts("h0", "h1", reliability=0.7)
        for index in range(4):
            model.add_component(f"c{index}", memory=10.0)
            model.deploy(f"c{index}", "h0")  # 40 > 25: invalid start
        model.connect_components("c0", "c1", frequency=3.0)
        model.connect_components("c2", "c3", frequency=3.0)
        result = GeneticAlgorithm(
            availability, ConstraintSet([MemoryConstraint()]), seed=4,
            population_size=30, generations=30).run(model)
        assert result.valid

    def test_reports_generation_metadata(self, small_model, availability,
                                         memory_constraints):
        result = GeneticAlgorithm(availability, memory_constraints, seed=1,
                                  generations=10).run(small_model)
        assert result.extra["generations"] == 10
        assert result.extra["best_violations"] == 0
