"""Unit tests for the rule-engine core (registry, report, reporters)."""

import json

import pytest

from repro.core.errors import ReproError
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity, render_json,
    render_text,
)


class AlwaysFind(Rule):
    rule_id = "T001"
    severity = Severity.WARNING
    description = "always emits one finding"
    tags = frozenset({"test"})

    def check(self, context):
        yield self.finding("something", subject="x")


class Crashes(Rule):
    rule_id = "T002"
    severity = Severity.INFO
    description = "always raises"
    tags = frozenset({"test"})

    def check(self, context):
        raise RuntimeError("boom")


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse("WARNING") is Severity.WARNING

    def test_parse_unknown(self):
        with pytest.raises(ReproError):
            Severity.parse("fatal")

    def test_label(self):
        assert Severity.ERROR.label == "error"


class TestFinding:
    def test_str_with_subject(self):
        finding = Finding("MV001", Severity.ERROR, "bad", subject="c 'x'")
        assert str(finding) == "c 'x': bad [MV001]"

    def test_str_with_file_line(self):
        finding = Finding("CD004", Severity.ERROR, "bad", file="a.py", line=3)
        assert str(finding) == "a.py:3: bad [CD004]"

    def test_as_dict_omits_empty(self):
        finding = Finding("MV001", Severity.ERROR, "bad")
        assert finding.as_dict() == {
            "rule": "MV001", "severity": "error", "message": "bad"}

    def test_as_dict_detail(self):
        finding = Finding("MV003", Severity.ERROR, "bad", detail={"used": 2})
        assert finding.as_dict()["detail"] == {"used": 2}


class TestLintReport:
    def make(self):
        report = LintReport()
        report.add(Finding("B", Severity.WARNING, "warn"))
        report.add(Finding("A", Severity.ERROR, "err"))
        report.add(Finding("C", Severity.INFO, "note"))
        return report

    def test_counts(self):
        assert self.make().counts() == {"error": 1, "warning": 1, "info": 1}

    def test_errors_and_has_errors(self):
        report = self.make()
        assert report.has_errors
        assert [f.rule for f in report.errors] == ["A"]
        assert not LintReport().has_errors

    def test_at_least(self):
        report = self.make()
        assert len(report.at_least(Severity.WARNING)) == 2
        assert len(report.at_least(Severity.INFO)) == 3

    def test_exit_code_thresholds(self):
        report = self.make()
        assert report.exit_code() == 1
        assert report.exit_code(Severity.INFO) == 1
        assert LintReport().exit_code() == 0
        warn_only = LintReport([Finding("B", Severity.WARNING, "w")])
        assert warn_only.exit_code(Severity.ERROR) == 0
        assert warn_only.exit_code(Severity.WARNING) == 1

    def test_sorted_by_location_then_rule(self):
        report = LintReport()
        report.add(Finding("Z9", Severity.INFO, "late rule", file="a.py",
                           line=1))
        report.add(Finding("A1", Severity.ERROR, "deep", file="b.py",
                           line=9))
        report.add(Finding("A1", Severity.ERROR, "early", file="a.py",
                           line=1))
        report.add(Finding("A2", Severity.WARNING, "col", file="a.py",
                           line=1, col=4))
        ordered = report.sorted()
        assert [(f.file, f.line, f.col or 0, f.rule) for f in ordered] == [
            ("a.py", 1, 0, "A1"), ("a.py", 1, 0, "Z9"),
            ("a.py", 1, 4, "A2"), ("b.py", 9, 0, "A1")]

    def test_sorted_dedupes_identical_findings(self):
        finding = Finding("A1", Severity.ERROR, "dup", file="a.py", line=3)
        report = LintReport([finding, finding,
                             Finding("A1", Severity.ERROR, "dup",
                                     file="a.py", line=3)])
        assert len(report.sorted()) == 1

    def test_sorted_is_idempotent_and_deterministic(self):
        once = self.make().sorted()
        twice = once.sorted()
        assert [str(f) for f in once] == [str(f) for f in twice]

    def test_merge(self):
        a, b = self.make(), self.make()
        assert len(a.merge(b)) == 6


class TestRuleRegistry:
    def test_register_instance_and_class(self):
        registry = RuleRegistry()
        registry.register(AlwaysFind())
        registry.register(Crashes)  # classes are instantiated
        assert "T001" in registry and "T002" in registry
        assert len(registry) == 2

    def test_duplicate_rejected_unless_replace(self):
        registry = RuleRegistry([AlwaysFind()])
        with pytest.raises(ReproError):
            registry.register(AlwaysFind())
        registry.register(AlwaysFind(), replace=True)

    def test_unregister(self):
        registry = RuleRegistry([AlwaysFind()])
        registry.unregister("T001")
        assert "T001" not in registry
        with pytest.raises(ReproError):
            registry.unregister("T001")

    def test_missing_rule_id_rejected(self):
        with pytest.raises(ReproError):
            RuleRegistry([Rule()])

    def test_tag_and_id_selection(self):
        registry = RuleRegistry([AlwaysFind(), Crashes()])
        assert len(registry.rules(tags=["test"])) == 2
        assert len(registry.rules(tags=["absent"])) == 0
        assert [r.rule_id for r in registry.rules(only=["T001"])] == ["T001"]

    def test_crashing_rule_isolated(self):
        registry = RuleRegistry([AlwaysFind(), Crashes()])
        report = registry.run(None)
        rules = {f.rule for f in report}
        assert rules == {"T001", "T002"}
        crash = next(f for f in report if f.rule == "T002")
        assert crash.severity is Severity.ERROR
        assert "boom" in crash.message

    def test_copy_is_independent(self):
        registry = RuleRegistry([AlwaysFind()])
        clone = registry.copy()
        clone.unregister("T001")
        assert "T001" in registry


class TestReporters:
    def test_render_text_clean(self):
        assert "clean" in render_text(LintReport())

    def test_render_text_lists_findings(self):
        report = LintReport([Finding("X1", Severity.ERROR, "oops",
                                     subject="c")])
        text = render_text(report, title="t")
        assert text.startswith("t")
        assert "[X1]" in text and "1 error(s)" in text

    def test_render_json_round_trip(self):
        report = LintReport([Finding("X1", Severity.ERROR, "oops",
                                     detail={"k": 1})])
        payload = json.loads(render_json(report, title="t"))
        assert payload["target"] == "t"
        assert payload["summary"]["error"] == 1
        assert payload["findings"][0]["rule"] == "X1"
