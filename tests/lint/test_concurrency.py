"""Tests for the concurrency analysis pack (repro.lint.concurrency)."""

import ast
import textwrap

from repro.lint.code import CodeLintContext
from repro.lint.concurrency import (
    FileConcurrencySummary, LockLeakRule, UnlockedSharedWriteRule,
    analyze_package, summarize_concurrency,
)


def summarize(source, path="mod.py"):
    tree = ast.parse(textwrap.dedent(source))
    return summarize_concurrency(tree, path)


def run_rule(rule_cls, source, path="mod.py"):
    context = CodeLintContext.parse(textwrap.dedent(source), path)
    return list(rule_cls().check(context))


CYCLE = """
    import threading

    class Pool:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
"""


class TestLockOrderCycles:
    def test_synthetic_cycle_triggers_cc001(self):
        report = analyze_package([summarize(CYCLE)])
        assert any(f.rule == "CC001" for f in report)

    def test_consistent_order_is_clean(self):
        clean = CYCLE.replace(
            "with self._b:\n                with self._a:",
            "with self._a:\n                with self._b:")
        report = analyze_package([summarize(clean)])
        assert not any(f.rule == "CC001" for f in report)

    def test_rlock_self_reentry_exempt(self):
        source = """
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        report = analyze_package([summarize(source)])
        assert not any(f.rule == "CC001" for f in report)

    def test_plain_lock_self_nesting_flagged(self):
        source = """
            import threading

            class Deadlock:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
        """
        report = analyze_package([summarize(source)])
        assert any(f.rule == "CC001" for f in report)

    def test_cross_file_cycle_via_function_calls(self):
        mod_a = """
            import threading
            from b import helper_b

            lock_a = threading.Lock()

            def step_a():
                with lock_a:
                    helper_b()
        """
        mod_b = """
            import threading
            from a import step_under_b

            lock_b = threading.Lock()

            def helper_b():
                with lock_b:
                    pass

            def entry_b():
                with lock_b:
                    step_under_b()
        """
        mod_a2 = mod_a + """
            def step_under_b():
                with lock_a:
                    pass
        """
        report = analyze_package([
            summarize(mod_a2, "a.py"), summarize(mod_b, "b.py")])
        assert any(f.rule == "CC001" for f in report)

    def test_deterministic_output(self):
        first = analyze_package([summarize(CYCLE)])
        second = analyze_package([summarize(CYCLE)])
        assert [str(f) for f in first] == [str(f) for f in second]


class TestSummaryRoundTrip:
    def test_json_round_trip(self):
        summary = summarize(CYCLE, "pool.py")
        data = summary.as_dict()
        restored = FileConcurrencySummary.from_dict(data)
        assert restored.as_dict() == data
        report = analyze_package([restored])
        assert any(f.rule == "CC001" for f in report)


class TestLockLeak:
    def test_exception_path_leak_triggers_cc002(self):
        findings = run_rule(LockLeakRule, """
            class Guard:
                def update(self, value):
                    self._lock.acquire()
                    self.value = compute(value)
                    self._lock.release()
        """)
        assert any(f.rule == "CC002" for f in findings)

    def test_try_finally_release_is_clean(self):
        findings = run_rule(LockLeakRule, """
            class Guard:
                def update(self, value):
                    self._lock.acquire()
                    try:
                        self.value = compute(value)
                    finally:
                        self._lock.release()
        """)
        assert not findings

    def test_straight_line_without_raises_is_clean(self):
        # Only statements that cannot raise between acquire and release
        # (an attribute store *can* raise, via properties/__setattr__).
        findings = run_rule(LockLeakRule, """
            class Guard:
                def update(self, value):
                    self._lock.acquire()
                    staged = value
                    self._lock.release()
                    return staged
        """)
        assert not findings

    def test_return_between_acquire_and_release_flagged(self):
        findings = run_rule(LockLeakRule, """
            class Guard:
                def update(self, flag):
                    self._lock.acquire()
                    if flag:
                        return None
                    self._lock.release()
                    return True
        """)
        assert any(f.rule == "CC002" for f in findings)


class TestUnlockedSharedWrite:
    def test_public_unguarded_write_flagged(self):
        findings = run_rule(UnlockedSharedWriteRule, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n

                def reset(self):
                    self.total = 0
        """)
        assert any(f.rule == "CC003" and "reset" in f.message
                   for f in findings)

    def test_init_and_guarded_writes_clean(self):
        findings = run_rule(UnlockedSharedWriteRule, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self.total += n
        """)
        assert not findings

    def test_private_helper_called_under_lock_is_clean(self):
        findings = run_rule(UnlockedSharedWriteRule, """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def add(self, n):
                    with self._lock:
                        self._bump(n)

                def _bump(self, n):
                    self.total += n
        """)
        assert not findings
