"""Tests for the CFG builder and dataflow solver (repro.lint.flow)."""

import ast
import textwrap

from repro.lint.flow import (
    EXCEPTION, LOOP, Liveness, ReachingDefinitions, assigned_names,
    build_cfg, iter_functions, may_raise, solve, used_names,
)


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    function = next(iter_functions(tree))
    return build_cfg(function)


def edges(cfg):
    return {(src.index, dst.index, kind)
            for src in cfg for dst, kind in src.successors}


class TestCfgConstruction:
    def test_straight_line(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = 2
                return a + b
        """)
        assert any(dst is cfg.exit for dst, _ in cfg.entry.successors) or \
            cfg.exit.index in cfg.reachable(cfg.entry)

    def test_if_has_true_and_false_edges(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
        """)
        kinds = {kind for _, _, kind in edges(cfg)}
        assert "true" in kinds and "false" in kinds

    def test_while_has_back_edge(self):
        cfg = cfg_of("""
            def f(n):
                while n:
                    n = n - 1
                return n
        """)
        assert any(kind == LOOP for _, _, kind in edges(cfg))

    def test_break_exits_loop(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    if item:
                        break
                return items
        """)
        # The return statement must be reachable from entry.
        returns = [block for block, stmt in cfg.statements()
                   if isinstance(stmt, ast.Return)]
        assert returns
        assert returns[0].index in cfg.reachable(cfg.entry)

    def test_raise_has_exception_edge(self):
        cfg = cfg_of("""
            def f():
                raise ValueError("boom")
        """)
        assert any(kind == EXCEPTION for _, _, kind in edges(cfg))

    def test_try_except_exception_edge_reaches_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                except ValueError:
                    handled = True
                return True
        """)
        handler_blocks = [block for block, stmt in cfg.statements()
                          if isinstance(stmt, ast.Assign)]
        assert handler_blocks
        assert handler_blocks[0].index in cfg.reachable(cfg.entry)

    def test_finally_runs_on_both_paths(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                finally:
                    cleanup()
                return True
        """)
        final_blocks = [
            block for block, stmt in cfg.statements()
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
            and isinstance(stmt.value.func, ast.Name)
            and stmt.value.func.id == "cleanup"]
        assert final_blocks
        # finally is on the normal path and has an exceptional out-edge.
        out_kinds = {kind for _, kind in final_blocks[0].successors}
        assert EXCEPTION in out_kinds

    def test_match_builds_case_blocks(self):
        cfg = cfg_of("""
            def f(x):
                match x:
                    case 1:
                        y = "one"
                    case _:
                        y = "other"
                return y
        """)
        assert cfg.exit.index in cfg.reachable(cfg.entry)

    def test_with_body_flows_through(self):
        cfg = cfg_of("""
            def f(lock):
                with lock:
                    value = 1
                return value
        """)
        assert cfg.exit.index in cfg.reachable(cfg.entry)

    def test_dead_code_after_return_not_reachable(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        dead = [block for block, stmt in cfg.statements()
                if isinstance(stmt, ast.Assign)]
        assert dead
        assert dead[0].index not in cfg.reachable(cfg.entry)


class TestHelpers:
    def test_assigned_and_used_names(self):
        stmt = ast.parse("c = a + b").body[0]
        assert assigned_names(stmt) == {"c"}
        assert used_names(stmt) == {"a", "b"}

    def test_for_target_is_assigned(self):
        stmt = ast.parse("for i in items:\n    pass").body[0]
        assert assigned_names(stmt) == {"i"}
        assert used_names(stmt) == {"items"}

    def test_compound_uses_header_only(self):
        stmt = ast.parse("if flag:\n    body_name = other").body[0]
        assert used_names(stmt) == {"flag"}

    def test_may_raise(self):
        assert may_raise(ast.parse("f()").body[0])
        assert may_raise(ast.parse("raise ValueError").body[0])
        assert not may_raise(ast.parse("x = 1").body[0])


class TestReachingDefinitions:
    def test_branch_merges_definitions(self):
        cfg = cfg_of("""
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
        """)
        reaching = ReachingDefinitions.at_statements(cfg)
        ret = next(stmt for _, stmt in cfg.statements()
                   if isinstance(stmt, ast.Return))
        lines = sorted(line for name, line in reaching[id(ret)]
                       if name == "x")
        assert len(lines) == 2  # both branch definitions may reach

    def test_rebinding_kills_older_definition(self):
        cfg = cfg_of("""
            def f():
                x = 1
                x = 2
                return x
        """)
        reaching = ReachingDefinitions.at_statements(cfg)
        ret = next(stmt for _, stmt in cfg.statements()
                   if isinstance(stmt, ast.Return))
        lines = [line for name, line in reaching[id(ret)] if name == "x"]
        assert len(lines) == 1

    def test_loop_definition_reaches_header(self):
        cfg = cfg_of("""
            def f(n):
                total = 0
                while n:
                    total = total + n
                    n = n - 1
                return total
        """)
        reaching = ReachingDefinitions.at_statements(cfg)
        ret = next(stmt for _, stmt in cfg.statements()
                   if isinstance(stmt, ast.Return))
        lines = {line for name, line in reaching[id(ret)]
                 if name == "total"}
        assert len(lines) == 2  # initial + loop-carried


class TestLiveness:
    def test_parameter_used_later_is_live_at_entry(self):
        cfg = cfg_of("""
            def f(a, b):
                c = a + 1
                return c + b
        """)
        solution = solve(cfg, Liveness())
        # Backward problem: facts at block *entry* are in the out slot.
        live_at_entry = solution[cfg.entry.index][1]
        assert {"a", "b"} <= set(live_at_entry)

    def test_dead_store_not_live(self):
        cfg = cfg_of("""
            def f(a):
                unused = a
                return 1
        """)
        solution = solve(cfg, Liveness())
        for block in cfg:
            assert "unused" not in solution[block.index][0]
