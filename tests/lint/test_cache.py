"""Tests for the result cache and baselines (repro.lint.cache)."""

import json
import textwrap

from repro.lint.cache import (
    LintCache, apply_baseline, file_digest, finding_fingerprint,
    load_baseline, rules_fingerprint, write_baseline,
)
from repro.lint.code import analyze_paths, code_rule_registry
from repro.lint.core import (
    Finding, LintReport, Rule, RuleRegistry, Severity,
)
from repro.core.errors import ReproError
import pytest

DIRTY = textwrap.dedent("""
    def collect(items=[]):
        return items
""")


def write_tree(tmp_path, n=4):
    for index in range(n):
        (tmp_path / f"mod_{index}.py").write_text(f"VALUE_{index} = 1\n")
    (tmp_path / "dirty.py").write_text(DIRTY)
    return str(tmp_path)


class TestLintCache:
    def test_second_run_hits_everything(self, tmp_path):
        root = write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        registry = code_rule_registry()

        cold = LintCache.load(cache_path, registry)
        first = analyze_paths([root], cache=cold)
        cold.save()
        assert cold.hits == 0 and cold.misses == 5

        warm = LintCache.load(cache_path, registry)
        second = analyze_paths([root], cache=warm)
        assert warm.misses == 0 and warm.hits == 5
        assert [f.as_dict() for f in first.sorted()] == \
            [f.as_dict() for f in second.sorted()]

    def test_edited_file_misses(self, tmp_path):
        root = write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        registry = code_rule_registry()
        cache = LintCache.load(cache_path, registry)
        analyze_paths([root], cache=cache)
        cache.save()

        (tmp_path / "mod_0.py").write_text("VALUE_0 = 2\n")
        warm = LintCache.load(cache_path, registry)
        analyze_paths([root], cache=warm)
        assert warm.misses == 1 and warm.hits == 4

    def test_rule_set_change_invalidates_cache(self, tmp_path):
        root = write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        cache = LintCache.load(cache_path, code_rule_registry())
        analyze_paths([root], cache=cache)
        cache.save()

        class ExtraRule(Rule):
            rule_id = "ZZ999"
            severity = Severity.INFO
            description = "an extra rule changes the fingerprint"

        extended = code_rule_registry()
        extended.register(ExtraRule())
        assert rules_fingerprint(extended) != \
            rules_fingerprint(code_rule_registry())
        stale = LintCache.load(cache_path, extended)
        assert stale.lookup(str(tmp_path / "dirty.py"),
                            file_digest(DIRTY.encode())) is None

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        cache = LintCache.load(str(cache_path), code_rule_registry())
        assert cache.lookup("anything.py", "digest") is None

    def test_stats_line_format(self, tmp_path):
        cache = LintCache.load(str(tmp_path / "c.json"),
                               code_rule_registry())
        cache.lookup("a.py", "x")
        assert cache.stats_line() == "lint cache: hits=0 misses=1 files=1"

    def test_cached_findings_round_trip(self, tmp_path):
        root = write_tree(tmp_path)
        cache_path = str(tmp_path / "cache.json")
        registry = code_rule_registry()
        cache = LintCache.load(cache_path, registry)
        first = analyze_paths([root], cache=cache)
        assert any(f.rule == "CD006" for f in first)
        cache.save()

        warm = LintCache.load(cache_path, registry)
        second = analyze_paths([root], cache=warm)
        assert [f.as_dict() for f in second] == \
            [f.as_dict() for f in first]


class TestBaseline:
    def make_report(self):
        return LintReport([
            Finding("CD006", Severity.ERROR, "mutable default",
                    file="a.py", line=3),
            Finding("DT001", Severity.ERROR, "unseeded rng",
                    file="b.py", line=7),
        ])

    def test_write_then_apply_suppresses_everything(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = self.make_report()
        count = write_baseline(report, path)
        assert count == 2
        accepted = load_baseline(path)
        assert len(apply_baseline(report, accepted)) == 0

    def test_new_findings_survive_baseline(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(self.make_report(), path)
        fresh = Finding("CC001", Severity.ERROR, "lock cycle", file="c.py")
        report = LintReport(list(self.make_report()) + [fresh])
        remaining = apply_baseline(report, load_baseline(path))
        assert [f.rule for f in remaining] == ["CC001"]

    def test_fingerprint_is_line_independent(self):
        a = Finding("CD006", Severity.ERROR, "mutable default",
                    file="a.py", line=3)
        b = Finding("CD006", Severity.ERROR, "mutable default",
                    file="a.py", line=30)
        assert finding_fingerprint(a) == finding_fingerprint(b)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_baseline(str(tmp_path / "absent.json"))

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"surprise": True}))
        with pytest.raises(ReproError):
            load_baseline(str(path))


class TestParallelAnalysis:
    def test_jobs_match_serial_results(self, tmp_path):
        root = write_tree(tmp_path)
        serial = analyze_paths([root])
        parallel = analyze_paths([root], jobs=2)
        assert [f.as_dict() for f in serial.sorted()] == \
            [f.as_dict() for f in parallel.sorted()]

    def test_custom_registry_forces_serial(self, tmp_path):
        root = write_tree(tmp_path)
        registry = RuleRegistry([])
        report = analyze_paths([root], registry=registry, jobs=4)
        assert len(report) == 0  # no rules, no findings — and no crash
