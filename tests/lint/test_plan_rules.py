"""The schedule verifier: PL001 (barrier violations), PL002 (undercut
etas), PL003 (unenactable moves)."""

import dataclasses

from repro.core.constraints import ConstraintSet, MemoryConstraint
from repro.core.model import DeploymentModel
from repro.lint import (
    PLAN_RULES, plan_rule_registry, verify_schedule,
)
from repro.plan import build_schedule, schedule_from_dict


def small_world():
    model = DeploymentModel()
    for host in ("a", "b", "c"):
        model.add_host(host, memory=20.0)
    for pair in (("a", "b"), ("a", "c"), ("b", "c")):
        model.connect_hosts(*pair, reliability=1.0, bandwidth=100.0,
                            delay=0.01)
    for component in ("x", "y"):
        model.add_component(component, memory=5.0)
        model.deploy(component, "a")
    return model


def good_schedule(model):
    return build_schedule(model, {"x": "b", "y": "c"},
                          constraints=ConstraintSet([MemoryConstraint()]))


def rules_fired(report):
    return sorted({finding.rule for finding in report})


class TestCleanSchedule:
    def test_planner_output_passes_all_rules(self):
        model = small_world()
        report = verify_schedule(model, good_schedule(model))
        assert len(report) == 0
        assert not report.has_errors

    def test_registry_holds_the_three_rules(self):
        registry = plan_rule_registry()
        ids = sorted(rule.rule_id for rule in registry)
        assert ids == ["PL001", "PL002", "PL003"]
        assert len(PLAN_RULES) == 3


class TestWaveConstraintViolation:
    def test_violating_barrier_state_fires_pl001(self):
        model = small_world()
        schedule = good_schedule(model)
        # Doctor the schedule: send both components to tiny host b, whose
        # 20 KB capacity cannot hold 2 x 5 KB... make it tighter first.
        model2 = DeploymentModel()
        for host, memory in (("a", 20.0), ("b", 6.0), ("c", 20.0)):
            model2.add_host(host, memory=memory)
        for pair in (("a", "b"), ("a", "c"), ("b", "c")):
            model2.connect_hosts(*pair, reliability=1.0, bandwidth=100.0,
                                 delay=0.01)
        for component in ("x", "y"):
            model2.add_component(component, memory=5.0)
            model2.deploy(component, "a")
        data = schedule.to_dict()
        # Both moves land on b in wave 0: the barrier oversubscribes b.
        data["target"] = {"x": "b", "y": "b"}
        data["waves"] = [{
            "index": 0, "eta": schedule.waves[0].eta, "moves": [
                {"component": "x", "source": "a", "target": "b",
                 "kb": 5.0, "route": ["a", "b"], "eta": 0.06,
                 "staged": False},
                {"component": "y", "source": "a", "target": "b",
                 "kb": 5.0, "route": ["a", "b"], "eta": 0.06,
                 "staged": False},
            ]}]
        doctored = schedule_from_dict(data)
        report = verify_schedule(
            model2, doctored,
            constraints=ConstraintSet([MemoryConstraint()]))
        assert "PL001" in rules_fired(report)
        (finding,) = [f for f in report if f.rule == "PL001"]
        assert "wave 0" in finding.subject

    def test_baseline_violations_are_not_charged_to_the_schedule(self):
        # Start state already violates (both on b, capacity 6): waves that
        # do not make things worse stay clean.
        model = DeploymentModel()
        for host, memory in (("a", 20.0), ("b", 6.0)):
            model.add_host(host, memory=memory)
        model.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                            delay=0.01)
        for component in ("x", "y"):
            model.add_component(component, memory=5.0)
            model.deploy(component, "b")
        data = {
            "current": {"x": "b", "y": "b"},
            "target": {"x": "a", "y": "b"},
            "waves": [{"index": 0, "eta": 0.06, "moves": [
                {"component": "x", "source": "b", "target": "a",
                 "kb": 5.0, "route": ["b", "a"], "eta": 0.06,
                 "staged": False}]}],
            "makespan": 0.06, "total_kb": 5.0,
        }
        report = verify_schedule(
            model, schedule_from_dict(data),
            constraints=ConstraintSet([MemoryConstraint()]))
        assert "PL001" not in rules_fired(report)


class TestWaveOversubscription:
    def test_zeroed_eta_fires_pl002(self):
        model = small_world()
        schedule = good_schedule(model)
        waves = tuple(
            dataclasses.replace(wave, eta=0.0) for wave in schedule.waves)
        stale = dataclasses.replace(schedule, waves=waves)
        report = verify_schedule(model, stale)
        assert "PL002" in rules_fired(report)
        assert not report.has_errors  # warning severity

    def test_honest_etas_stay_quiet(self):
        model = small_world()
        report = verify_schedule(model, good_schedule(model))
        assert "PL002" not in rules_fired(report)


class TestUnreachableMove:
    def test_route_leg_without_link_fires_pl003(self):
        model = small_world()
        schedule = good_schedule(model)
        # Replay the schedule against a model where a-c lost its link.
        drifted = DeploymentModel()
        for host in ("a", "b", "c"):
            drifted.add_host(host, memory=20.0)
        drifted.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                              delay=0.01)
        for component in ("x", "y"):
            drifted.add_component(component, memory=5.0)
            drifted.deploy(component, "a")
        report = verify_schedule(drifted, schedule)
        findings = [f for f in report if f.rule == "PL003"]
        assert findings, "missing link went unnoticed"
        assert any("no positive-bandwidth link" in f.message
                   for f in findings)

    def test_wrong_source_fires_pl003(self):
        model = small_world()
        schedule = good_schedule(model)
        data = schedule.to_dict()
        for wave in data["waves"]:
            for move in wave["moves"]:
                if move["component"] == "y":
                    move["source"] = "c"
                    move["route"] = ["c"] + move["route"][1:]
        report = verify_schedule(model, schedule_from_dict(data))
        findings = [f for f in report if f.rule == "PL003"]
        assert any("is on 'a' at this wave" in f.message for f in findings)

    def test_declared_unreachable_in_wave_fires_pl003(self):
        model = small_world()
        schedule = good_schedule(model)
        data = schedule.to_dict()
        data["unreachable"] = ["x"]
        report = verify_schedule(model, schedule_from_dict(data))
        findings = [f for f in report if f.rule == "PL003"]
        assert any("declared unreachable" in f.message for f in findings)
