"""Unit tests for the fault-plan lint rules (FP001-FP004) and MV017."""

from repro.faults import FaultAction, FaultPlan
from repro.lint import Severity, verify_fault_plan, verify_model
from repro.lint.fault_rules import FAULT_RULES, fault_rule_registry


def rules_of(report):
    return {finding.rule for finding in report}


def clean_plan():
    return FaultPlan(name="clean", duration=20.0, actions=[
        FaultAction(1.0, "link_down", ("hA", "hB")),
        FaultAction(3.0, "link_up", ("hA", "hB")),
        FaultAction(5.0, "partition", ("hB",), {"duration": 2.0}),
        FaultAction(10.0, "partition", ("hA",), {"duration": 2.0}),
    ])


class TestRegistry:
    def test_all_rules_registered_with_docs(self):
        registry = fault_rule_registry()
        assert len(registry) == len(FAULT_RULES) == 4
        for rule in registry:
            assert rule.rule_id.startswith("FP")
            assert rule.description

    def test_clean_plan_is_clean(self, tiny_model):
        report = verify_fault_plan(clean_plan(), model=tiny_model)
        assert len(report) == 0


class TestFP001UnknownTargets:
    def test_dangling_host_and_link_flagged_with_model(self, tiny_model):
        tiny_model.add_host("hC", memory=10.0)  # host exists, no link
        plan = FaultPlan(name="refs", duration=10.0, actions=[
            FaultAction(1.0, "host_crash", ("ghost",)),
            FaultAction(2.0, "link_down", ("hA", "hC")),
        ])
        report = verify_fault_plan(plan, model=tiny_model)
        fp001 = [f for f in report if f.rule == "FP001"]
        assert len(fp001) == 2
        assert all(f.severity == Severity.ERROR for f in fp001)

    def test_silent_without_model(self):
        plan = FaultPlan(name="refs", duration=10.0, actions=[
            FaultAction(1.0, "host_crash", ("ghost",)),
        ])
        assert "FP001" not in rules_of(verify_fault_plan(plan))


class TestFP002OverlappingPartitions:
    def test_overlap_flagged(self):
        plan = FaultPlan(name="overlap", duration=20.0, actions=[
            FaultAction(2.0, "partition", ("a",), {"duration": 6.0}),
            FaultAction(5.0, "partition", ("b",), {"duration": 2.0}),
        ])
        report = verify_fault_plan(plan)
        assert "FP002" in rules_of(report)
        assert report.findings[0].severity == Severity.WARNING \
            or not report.has_errors

    def test_unterminated_partition_overlaps_everything_later(self):
        plan = FaultPlan(name="open", duration=20.0, actions=[
            FaultAction(2.0, "partition", ("a",)),  # active to plan end
            FaultAction(10.0, "partition", ("b",), {"duration": 1.0}),
        ])
        assert "FP002" in rules_of(verify_fault_plan(plan))

    def test_staggered_partitions_pass(self):
        assert "FP002" not in rules_of(verify_fault_plan(clean_plan()))


class TestFP003NegativeTimes:
    def test_negative_time_duration_and_campaign_length(self):
        plan = FaultPlan(name="neg", duration=-5.0, actions=[
            FaultAction(-1.0, "link_down", ("a", "b")),
            FaultAction(2.0, "host_crash", ("a",), {"duration": -3.0}),
        ])
        fp003 = [f for f in verify_fault_plan(plan) if f.rule == "FP003"]
        assert len(fp003) == 3
        assert all(f.severity == Severity.ERROR for f in fp003)


class TestFP004ActionsPastCampaignEnd:
    def test_late_start_and_overhanging_effect(self):
        plan = FaultPlan(name="late", duration=10.0, actions=[
            FaultAction(12.0, "link_down", ("a", "b")),
            FaultAction(8.0, "loss_burst", ("a", "b"),
                        {"value": 0.1, "duration": 5.0}),
        ])
        fp004 = [f for f in verify_fault_plan(plan) if f.rule == "FP004"]
        assert len(fp004) == 2
        assert {f.severity for f in fp004} == {Severity.WARNING}


class TestMV017PerfectlyReliableHost:
    def test_all_perfect_links_flagged(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "reliability", 1.0)
        report = verify_model(tiny_model)
        mv017 = [f for f in report if f.rule == "MV017"]
        assert len(mv017) == 2  # both endpoints are all-perfect
        assert all(f.severity == Severity.INFO for f in mv017)

    def test_one_imperfect_link_clears_the_host(self, tiny_model):
        # tiny_model's single link has reliability 0.5.
        assert not [f for f in verify_model(tiny_model)
                    if f.rule == "MV017"]

    def test_hosts_without_links_not_flagged(self, tiny_model):
        tiny_model.add_host("lonely", memory=5.0)
        report = verify_model(tiny_model)
        assert not any(f.rule == "MV017" and "lonely" in f.subject
                       for f in report)
