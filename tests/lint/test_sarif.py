"""Tests for the SARIF 2.1.0 reporter (repro.lint.sarif)."""

import json

import jsonschema
import pytest

from repro.lint.code import code_rule_registry
from repro.lint.core import Finding, LintReport, Severity
from repro.lint.sarif import render_sarif, sarif_log, severity_level

#: The subset of the SARIF 2.1.0 schema our emitter exercises, written
#: down from the OASIS spec.  Validating against it catches structural
#: regressions (missing required keys, wrong types, bad level values)
#: without vendoring the full multi-thousand-line schema.
SARIF_21_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {"type": "array"},
                            },
                        },
                    },
                },
            },
        },
    },
}


def make_report():
    return LintReport([
        Finding("CC001", Severity.ERROR, "lock cycle", file="src/a.py",
                line=10),
        Finding("DT003", Severity.WARNING, "set order", file="src/b.py",
                line=4, col=8),
        Finding("MV009", Severity.INFO, "advice", subject="host-1"),
    ])


class TestSarifStructure:
    def test_validates_against_schema_subset(self):
        log = sarif_log(make_report(), registry=code_rule_registry())
        jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)

    def test_severity_level_mapping(self):
        assert severity_level(Severity.ERROR) == "error"
        assert severity_level(Severity.WARNING) == "warning"
        assert severity_level(Severity.INFO) == "note"

    def test_results_carry_locations(self):
        log = sarif_log(make_report())
        results = log["runs"][0]["results"]
        by_rule = {r["ruleId"]: r for r in results}
        physical = by_rule["CC001"]["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "src/a.py"
        assert physical["region"]["startLine"] == 10
        # AST columns are 0-based; SARIF startColumn is 1-based.
        col = by_rule["DT003"]["locations"][0]["physicalLocation"]
        assert col["region"]["startColumn"] == 9
        logical = by_rule["MV009"]["locations"][0]["logicalLocations"]
        assert logical[0]["name"] == "host-1"

    def test_driver_lists_registered_rules(self):
        log = sarif_log(LintReport(), registry=code_rule_registry())
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        ids = {rule["id"] for rule in rules}
        assert {"CD001", "CC001", "CC002", "CC003", "DT001", "DT002",
                "DT003"} <= ids
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note")

    def test_results_have_fingerprints(self):
        log = sarif_log(make_report())
        for result in log["runs"][0]["results"]:
            assert result["partialFingerprints"]["primaryLocationLineHash"]


class TestSarifDeterminism:
    def test_byte_identical_across_runs(self):
        a = render_sarif(make_report(), registry=code_rule_registry())
        b = render_sarif(make_report(), registry=code_rule_registry())
        assert a == b

    def test_duplicate_findings_collapse(self):
        report = make_report()
        report.extend(make_report())
        single = sarif_log(make_report())
        doubled = sarif_log(report)
        assert doubled["runs"][0]["results"] == \
            single["runs"][0]["results"]

    def test_output_is_valid_json(self):
        parsed = json.loads(render_sarif(make_report()))
        assert parsed["version"] == "2.1.0"


class TestSelfLintSarif:
    def test_repo_self_lint_sarif_is_clean_and_valid(self):
        from repro.lint.code import analyze_paths
        import os
        report = analyze_paths([os.path.join("src", "repro")])
        log = sarif_log(report, registry=code_rule_registry())
        jsonschema.validate(log, SARIF_21_SUBSET_SCHEMA)
        assert log["runs"][0]["results"] == []
