"""Tests for the determinism analysis pack (repro.lint.determinism)."""

import textwrap

from repro.lint.code import CodeLintContext
from repro.lint.determinism import (
    SetOrderEscapeRule, UnseededRandomRule, WallClockInReportRule,
)


def run_rule(rule_cls, source, path="mod.py"):
    context = CodeLintContext.parse(textwrap.dedent(source), path)
    return list(rule_cls().check(context))


class TestUnseededRandom:
    def test_global_rng_call_flagged(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def shuffle_hosts(hosts):
                random.shuffle(hosts)
                return hosts
        """)
        assert any(f.rule == "DT001" for f in findings)

    def test_numpy_global_rng_flagged(self):
        findings = run_rule(UnseededRandomRule, """
            import numpy as np

            def sample(n):
                return np.random.rand(n)
        """)
        assert any(f.rule == "DT001" for f in findings)

    def test_unseeded_generator_into_report_flagged(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def build_report(n):
                rng = random.Random()
                values = [rng.random() for _ in range(n)]
                return AvailabilityReport(values)
        """)
        flagged = [f for f in findings if f.rule == "DT001"]
        assert len(flagged) == 1
        assert "rng" in flagged[0].message

    def test_seeded_generator_clean(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def build(seed, n):
                rng = random.Random(seed)
                return [rng.random() for _ in range(n)]
        """)
        assert not findings

    def test_alias_of_unseeded_generator_tracked(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def build(n):
                rng = random.Random()
                shared = rng
                return shared.random()
        """)
        assert any("shared" in f.message for f in findings)

    def test_flow_through_branch_tracked(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def build(flag):
                rng = random.Random()
                if flag:
                    return rng.random()
                return 0.0
        """)
        assert any(f.rule == "DT001" for f in findings)

    def test_derived_value_not_reported_as_generator(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def build(n):
                rng = random.Random()
                values = [rng.random() for _ in range(n)]
                return sum(values)
        """)
        assert all("values" not in f.message for f in findings)

    def test_random_seed_and_systemrandom_not_flagged(self):
        findings = run_rule(UnseededRandomRule, """
            import random

            def setup(seed):
                random.seed(seed)
        """)
        assert not findings


class TestWallClockInReport:
    def test_time_in_to_dict_flagged(self):
        findings = run_rule(WallClockInReportRule, """
            import time

            class Report:
                def to_dict(self):
                    return {"generated_at": time.time()}
        """)
        assert any(f.rule == "DT002" for f in findings)

    def test_datetime_now_in_render_flagged(self):
        findings = run_rule(WallClockInReportRule, """
            import datetime

            class Report:
                def render(self):
                    return f"as of {datetime.datetime.now()}"
        """)
        assert any(f.rule == "DT002" for f in findings)

    def test_perf_counter_outside_serialization_clean(self):
        # Timing a run and storing the elapsed value is legitimate (the
        # fault campaign runner does exactly this); only *serialization*
        # must not read clocks.
        findings = run_rule(WallClockInReportRule, """
            import time

            def run_campaign(plan):
                started = time.perf_counter()
                result = execute(plan)
                return Report(result, wall=time.perf_counter() - started)
        """)
        assert not findings


class TestSetOrderEscape:
    def test_set_literal_join_in_render_flagged(self):
        findings = run_rule(SetOrderEscapeRule, """
            class Report:
                def render(self):
                    return ", ".join({"b", "a"})
        """)
        assert any(f.rule == "DT003" for f in findings)

    def test_set_typed_name_flagged(self):
        findings = run_rule(SetOrderEscapeRule, """
            class Report:
                def to_dict(self):
                    tags = {"x", "y"}
                    return {"tags": [t for t in tags]}
        """)
        assert any(f.rule == "DT003" for f in findings)

    def test_sorted_wrapper_clean(self):
        findings = run_rule(SetOrderEscapeRule, """
            class Report:
                def render(self):
                    tags = {"b", "a"}
                    return ", ".join(sorted(tags))
        """)
        assert not findings

    def test_dict_iteration_clean(self):
        # Dicts iterate in insertion order — deterministic, not flagged.
        findings = run_rule(SetOrderEscapeRule, """
            class Report:
                def to_dict(self):
                    fields = {"a": 1, "b": 2}
                    return {k: v for k, v in fields.items()}
        """)
        assert not findings

    def test_non_serialization_method_clean(self):
        findings = run_rule(SetOrderEscapeRule, """
            class Worker:
                def poll(self):
                    for item in {"a", "b"}:
                        touch(item)
        """)
        assert not findings


class TestRepositoryIsDeterministic:
    def test_src_repro_has_no_determinism_findings(self):
        import os

        from repro.lint.code import iter_python_files
        rules = [UnseededRandomRule(), WallClockInReportRule(),
                 SetOrderEscapeRule()]
        offenders = []
        for filename in iter_python_files([os.path.join("src", "repro")]):
            with open(filename, "r", encoding="utf-8") as handle:
                context = CodeLintContext.parse(handle.read(), filename)
            for rule in rules:
                offenders.extend(rule.check(context))
        assert not offenders, [str(f) for f in offenders]
