"""Unit tests for the model verifier (Pillar 1) rules."""

import pytest

from repro.core.constraints import (
    CollocationConstraint, ConstraintSet, LocationConstraint,
    MemoryConstraint,
)
from repro.core.model import DeploymentModel
from repro.core.objectives import AvailabilityObjective, Objective
from repro.lint.core import Severity
from repro.lint.model_rules import (
    DEPLOYMENT, ModelLintContext, default_objectives, model_rule_registry,
    verify_deployment, verify_model,
)


def rules_found(report):
    return {f.rule for f in report}


@pytest.fixture
def clean_model(tiny_model):
    return tiny_model


class TestCleanModel:
    def test_no_errors_on_tiny_model(self, clean_model):
        report = verify_model(clean_model,
                              objectives=[AvailabilityObjective])
        assert not report.has_errors

    def test_preflight_subset_clean(self, clean_model):
        report = verify_deployment(clean_model)
        assert len(report) == 0


class TestDeploymentRules:
    def test_mv001_unmapped_component(self, clean_model):
        clean_model.undeploy("c3")
        report = verify_deployment(clean_model)
        assert "MV001" in rules_found(report)

    def test_mv002_unknown_entities(self, clean_model):
        report = verify_deployment(
            clean_model,
            deployment={"c1": "hA", "c2": "hA", "c3": "hB", "ghost": "hZ"})
        assert "MV002" in rules_found(report)
        messages = [f.message for f in report if f.rule == "MV002"]
        assert any("ghost" in m for m in messages)
        assert any("hZ" in m for m in messages)

    def test_mv003_memory_over_capacity(self, clean_model):
        clean_model.set_host_param("hA", "memory", 15.0)  # c1+c2 need 20
        report = verify_deployment(clean_model)
        finding = next(f for f in report if f.rule == "MV003")
        assert finding.severity is Severity.ERROR
        assert finding.detail["used"] == 20.0
        assert finding.detail["capacity"] == 15.0

    def test_mv004_cpu_over_capacity(self, clean_model):
        clean_model.set_host_param("hA", "cpu", 1.0)
        clean_model.set_component_param("c1", "cpu", 2.0)
        report = verify_deployment(clean_model)
        assert "MV004" in rules_found(report)

    def test_mv005_unbacked_logical_link(self):
        model = DeploymentModel()
        model.add_host("h1", memory=50.0)
        model.add_host("h2", memory=50.0)  # no physical link
        model.add_component("a", memory=1.0)
        model.add_component("b", memory=1.0)
        model.connect_components("a", "b", frequency=1.0)
        model.deploy("a", "h1")
        model.deploy("b", "h2")
        report = verify_deployment(model)
        assert "MV005" in rules_found(report)

    def test_mv005_collocated_pair_is_fine(self, clean_model):
        clean_model.deploy("c3", "hA")  # all on one host, no path needed
        report = verify_deployment(clean_model)
        assert "MV005" not in rules_found(report)

    def test_mv010_constraint_violation(self, clean_model):
        constraints = ConstraintSet(
            [LocationConstraint("c1", forbidden=["hA"])])
        report = verify_deployment(clean_model, constraints=constraints)
        assert "MV010" in rules_found(report)


class TestParameterRules:
    """The registry validates writes, so corrupt values are injected past
    it — modeling a monitor or deserializer writing raw data."""

    def test_mv006_negative_frequency(self, clean_model):
        link = clean_model.logical_link("c1", "c2")
        link.params.values["frequency"] = -1.0
        report = verify_model(clean_model, objectives=[AvailabilityObjective])
        assert "MV006" in rules_found(report)

    def test_mv007_reliability_out_of_range(self, clean_model):
        link = clean_model.physical_link("hA", "hB")
        link.params.values["reliability"] = 1.5
        report = verify_model(clean_model, objectives=[AvailabilityObjective])
        assert "MV007" in rules_found(report)

    def test_mv008_negative_memory(self, clean_model):
        component = clean_model.component("c2")
        component.params.values["memory"] = -3.0
        report = verify_model(clean_model, objectives=[AvailabilityObjective])
        assert "MV008" in rules_found(report)


class TestTopologyRules:
    def test_mv009_partitioned_hosts_warn(self, clean_model):
        clean_model.add_host("island", memory=10.0)
        report = verify_model(clean_model, objectives=[AvailabilityObjective])
        finding = next(f for f in report if f.rule == "MV009")
        assert finding.severity is Severity.WARNING
        assert "island" in finding.subject

    def test_mv011_dangling_constraint_warns(self, clean_model):
        constraints = ConstraintSet([
            LocationConstraint("ghost", allowed=["hA"]),
            CollocationConstraint(["c1", "phantom"], together=True),
        ])
        report = verify_model(clean_model, constraints=constraints,
                              objectives=[AvailabilityObjective])
        dangling = [f for f in report if f.rule == "MV011"]
        assert len(dangling) == 2
        assert all(f.severity is Severity.WARNING for f in dangling)

    def test_mv012_unsatisfiable_component(self, clean_model):
        constraints = ConstraintSet(
            [LocationConstraint("c1", forbidden=["hA", "hB"])])
        report = verify_model(clean_model, constraints=constraints,
                              objectives=[AvailabilityObjective])
        finding = next(f for f in report if f.rule == "MV012")
        assert "c1" in finding.subject

    def test_mv013_isolated_component_info(self, clean_model):
        clean_model.add_component("loner", memory=1.0)
        clean_model.deploy("loner", "hB")
        report = verify_model(clean_model, objectives=[AvailabilityObjective])
        finding = next(f for f in report if f.rule == "MV013")
        assert finding.severity is Severity.INFO
        assert "loner" in finding.subject

    def test_mv014_empty_model(self):
        report = verify_model(DeploymentModel(),
                              objectives=[AvailabilityObjective])
        assert len([f for f in report if f.rule == "MV014"]) == 2

    def test_mv016_advises_compiled_engine_on_large_models(self):
        model = DeploymentModel(name="big")
        for h in range(50):
            model.add_host(f"h{h}", memory=100.0)
        for c in range(50):
            model.add_component(f"c{c}", memory=1.0)
            model.deploy(f"c{c}", f"h{c}")
        report = verify_model(model, objectives=[AvailabilityObjective])
        finding = next(f for f in report if f.rule == "MV016")
        assert finding.severity is Severity.INFO
        assert finding.detail["size"] == 2500
        assert "compiled" in finding.message

    def test_mv016_silent_within_comfort_zone(self, clean_model):
        report = verify_model(clean_model,
                              objectives=[AvailabilityObjective])
        assert "MV016" not in rules_found(report)

    def test_mv018_warns_when_placement_space_mostly_infeasible(self):
        model = DeploymentModel(name="tight")
        model.add_host("h0", memory=50.0)
        model.add_host("h1", memory=1.0)  # fits nothing
        model.add_component("c0", memory=10.0)
        model.add_component("c1", memory=10.0)
        model.deploy("c0", "h0")
        model.deploy("c1", "h0")
        constraints = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint("c0", forbidden=["h0"]),
        ])
        # Infeasible: (c0,h0) by location, (c0,h1) and (c1,h1) by memory.
        report = verify_model(model, constraints=constraints,
                              objectives=[AvailabilityObjective])
        finding = next(f for f in report if f.rule == "MV018")
        assert finding.severity is Severity.WARNING
        assert finding.detail["infeasible"] == 3
        assert finding.detail["total"] == 4
        assert finding.detail["ratio"] == 0.75

    def test_mv018_silent_on_roomy_constraints(self, clean_model):
        report = verify_model(clean_model,
                              constraints=ConstraintSet([MemoryConstraint()]),
                              objectives=[AvailabilityObjective])
        assert "MV018" not in rules_found(report)

    def test_mv018_silent_without_constraints(self, clean_model):
        report = verify_model(clean_model, constraints=ConstraintSet(),
                              objectives=[AvailabilityObjective])
        assert "MV018" not in rules_found(report)


class TestDeltaContractRule:
    def test_mv015_flags_broken_contract(self, clean_model):
        # Deliberately NOT an Objective subclass: subclasses defined in a
        # test would pollute Objective.__subclasses__() (and therefore
        # default_objectives()) for the rest of the session.
        class Cheater:
            name = "cheater"
            supports_delta = True  # ...but only the base move_delta
            move_delta = Objective.move_delta

            def evaluate(self, model, deployment):
                return 0.0

        report = verify_model(clean_model, objectives=[Cheater])
        finding = next(f for f in report if f.rule == "MV015")
        assert "Cheater" in finding.subject

    def test_mv015_passes_real_objectives(self, clean_model):
        report = verify_model(clean_model, objectives=default_objectives())
        assert "MV015" not in rules_found(report)


class TestContextAndRegistry:
    def test_context_defaults_to_model_state(self, clean_model):
        clean_model.constraints.append(MemoryConstraint())
        context = ModelLintContext(clean_model)
        assert context.deployment == clean_model.deployment.as_dict()
        assert len(context.constraints) == 1

    def test_reachability_cache(self, clean_model):
        context = ModelLintContext(clean_model)
        assert context.reachable_from("hA") == {"hA", "hB"}
        assert context.reachable_from("hB") == {"hA", "hB"}

    def test_custom_rule_plugs_in(self, clean_model):
        from repro.lint.core import Rule

        class NamePolicy(Rule):
            rule_id = "X900"
            severity = Severity.WARNING
            description = "hosts must be named h*"
            tags = frozenset({DEPLOYMENT})

            def check(self, context):
                for host_id in context.model.host_ids:
                    if not host_id.startswith("h"):
                        yield self.finding("bad host name",
                                           subject=f"host {host_id!r}")

        registry = model_rule_registry()
        registry.register(NamePolicy)
        clean_model.add_host("odd", memory=1.0)
        clean_model.connect_hosts("hA", "odd")
        report = verify_deployment(clean_model, registry=registry)
        assert "X900" in rules_found(report)

    def test_registry_lists_all_builtin_rules(self):
        registry = model_rule_registry()
        assert len(registry) == 18
        assert "MV001" in registry and "MV017" in registry
        assert "MV018" in registry
