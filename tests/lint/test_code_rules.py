"""Unit tests for the AST code analyzer (Pillar 2) rules."""

import os
import textwrap

from repro.lint.code import analyze_paths, analyze_source, iter_python_files
from repro.lint.core import Severity


def run(source):
    return analyze_source(textwrap.dedent(source), path="snippet.py")


def rules_found(report):
    return {f.rule for f in report}


class TestUnlockedSharedMutation:
    LOCKED_CLASS = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1
    """

    def test_clean_when_mutation_is_guarded(self):
        assert "CD001" not in rules_found(run(self.LOCKED_CLASS))

    def test_flags_unguarded_mutation(self):
        report = run("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def bump(self):
                    self.count += 1
        """)
        finding = next(f for f in report if f.rule == "CD001")
        assert "Counter.bump" in finding.message
        assert finding.file == "snippet.py"

    def test_private_methods_exempt(self):
        assert "CD001" not in rules_found(run("""
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0

                def _bump_locked(self):
                    self.count += 1
        """))

    def test_lockless_class_not_checked(self):
        assert "CD001" not in rules_found(run("""
            class Plain:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """))


class TestBlockingCallInHandler:
    def test_sleep_in_handler_flagged(self):
        report = run("""
            import time

            class Brick:
                def handle(self, event):
                    time.sleep(1.0)
        """)
        finding = next(f for f in report if f.rule == "CD002")
        assert "sleep" in finding.message

    def test_untimed_join_flagged_timed_join_ok(self):
        bad = run("""
            class Brick:
                def on_stop(self, event):
                    self.thread.join()
        """)
        assert "CD002" in rules_found(bad)
        good = run("""
            class Brick:
                def on_stop(self, event):
                    self.thread.join(timeout=1.0)
        """)
        assert "CD002" not in rules_found(good)

    def test_str_join_not_flagged(self):
        assert "CD002" not in rules_found(run("""
            class Brick:
                def handle(self, event):
                    return ", ".join(event.parts)
        """))

    def test_non_handler_methods_may_block(self):
        assert "CD002" not in rules_found(run("""
            import time

            class Worker:
                def run_forever(self):
                    time.sleep(1.0)
        """))


class TestBypassedRegistry:
    def test_shim_call_flagged(self):
        report = run("""
            def setup(analyzer, algo):
                analyzer.register_algorithm(algo)
        """)
        assert "CD003" in rules_found(report)

    def test_analyzer_module_itself_exempt(self):
        source = textwrap.dedent("""
            class Analyzer:
                def register_algorithm(self, algo):
                    self.registry.register_algorithm(algo)
        """)
        report = analyze_source(source, path="src/repro/core/analyzer.py")
        assert "CD003" not in rules_found(report)


class TestBareExcept:
    def test_bare_except_flagged(self):
        report = run("""
            def dispatch(event):
                try:
                    event.fire()
                except:
                    return None
        """)
        assert "CD004" in rules_found(report)

    def test_base_exception_without_reraise_flagged(self):
        report = run("""
            def dispatch(event):
                try:
                    event.fire()
                except BaseException:
                    return None
        """)
        assert "CD004" in rules_found(report)

    def test_reraise_is_allowed(self):
        report = run("""
            def dispatch(event):
                try:
                    event.fire()
                except BaseException:
                    event.cleanup()
                    raise
        """)
        assert "CD004" not in rules_found(report)


class TestSwallowedException:
    def test_except_pass_warns(self):
        report = run("""
            def quiet(op):
                try:
                    op()
                except ValueError:
                    pass
        """)
        finding = next(f for f in report if f.rule == "CD005")
        assert finding.severity is Severity.WARNING

    def test_handler_with_logic_ok(self):
        assert "CD005" not in rules_found(run("""
            def quiet(op):
                try:
                    op()
                except ValueError:
                    return None
        """))


class TestMutableDefault:
    def test_list_default_flagged(self):
        report = run("""
            def collect(items=[]):
                return items
        """)
        assert "CD006" in rules_found(report)

    def test_dict_call_default_flagged(self):
        assert "CD006" in rules_found(run("""
            def collect(*, cache=dict()):
                return cache
        """))

    def test_none_default_ok(self):
        assert "CD006" not in rules_found(run("""
            def collect(items=None):
                return items or []
        """))


class TestSuppressionAndErrors:
    def test_line_suppression_all_rules(self):
        report = run("""
            def collect(items=[]):  # lint: ignore
                return items
        """)
        assert "CD006" not in rules_found(report)

    def test_line_suppression_specific_rule(self):
        suppressed = run("""
            def collect(items=[]):  # lint: ignore[CD006]
                return items
        """)
        assert "CD006" not in rules_found(suppressed)
        other = run("""
            def collect(items=[]):  # lint: ignore[CD001]
                return items
        """)
        assert "CD006" in rules_found(other)

    def test_multiline_statement_ignore_on_any_line(self):
        # The finding points at the `[]` default on the first line; the
        # ignore comment sits on the second physical line of the same
        # statement.  Suppression must cover the whole span.
        report = run("""
            def collect(items=[],
                        extra=None):  # lint: ignore[CD006]
                return items
        """)
        assert "CD006" not in rules_found(report)

    def test_multiline_call_ignore_on_last_line(self):
        report = run("""
            def setup(analyzer, algo):
                analyzer.register_algorithm(
                    "swap", algo)  # lint: ignore[CD003]
        """)
        assert "CD003" not in rules_found(report)
        unsuppressed = run("""
            def setup(analyzer, algo):
                analyzer.register_algorithm(
                    "swap", algo)
        """)
        assert "CD003" in rules_found(unsuppressed)

    def test_ignore_inside_body_does_not_blanket_compound(self):
        # An ignore on a body line suppresses that statement, not the
        # whole enclosing function/loop.
        report = run("""
            def setup(analyzer, algo, items=[]):
                analyzer.register_algorithm(
                    "swap", algo)  # lint: ignore[CD003]
                return items
        """)
        assert "CD003" not in rules_found(report)
        assert "CD006" in rules_found(report)

    def test_syntax_error_becomes_finding(self):
        report = analyze_source("def broken(:\n", path="bad.py")
        finding = next(iter(report))
        assert finding.rule == "CD000"
        assert finding.severity is Severity.ERROR


class TestFileWalking:
    def test_iter_python_files(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__" / "a.cpython-310.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        files = iter_python_files([str(tmp_path)])
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_analyze_paths_aggregates(self, tmp_path):
        (tmp_path / "one.py").write_text("def f(x=[]):\n    return x\n")
        (tmp_path / "two.py").write_text("y = 2\n")
        report = analyze_paths([str(tmp_path)])
        assert rules_found(report) == {"CD006"}

    def test_repository_source_is_clean(self):
        src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                           "src", "repro")
        report = analyze_paths([os.path.normpath(src)])
        assert not report.has_errors, "\n".join(str(f) for f in report)
