"""Unit tests for document-level xADL verification."""

from repro.desi import xadl
from repro.lint.xadl_rules import (
    DOCUMENT_RULES, verify_xadl_file, verify_xadl_source,
)


def rules_found(report):
    return {f.rule for f in report}


GOOD = """
<deploymentArchitecture name="ok">
  <host id="h1"><param name="memory" value="50.0" type="float"/></host>
  <host id="h2"><param name="memory" value="50.0" type="float"/></host>
  <physicalLink hostA="h1" hostB="h2">
    <param name="reliability" value="0.9" type="float"/>
  </physicalLink>
  <component id="c1"><param name="memory" value="5.0" type="float"/></component>
  <component id="c2"><param name="memory" value="5.0" type="float"/></component>
  <logicalLink componentA="c1" componentB="c2">
    <param name="frequency" value="1.0" type="float"/>
  </logicalLink>
  <deployment component="c1" host="h1"/>
  <deployment component="c2" host="h2"/>
</deploymentArchitecture>
"""


class TestDocumentChecks:
    def test_clean_document(self):
        report = verify_xadl_source(GOOD)
        assert not report.has_errors

    def test_malformed_xml(self):
        report = verify_xadl_source("<deploymentArchitecture")
        assert rules_found(report) == {"XD001"}

    def test_wrong_root(self):
        report = verify_xadl_source("<otherDocument/>")
        assert rules_found(report) == {"XD001"}

    def test_dangling_logical_link(self):
        text = GOOD.replace('componentB="c2"', 'componentB="ghost"')
        report = verify_xadl_source(text)
        finding = next(f for f in report if f.rule == "XD002")
        assert "ghost" in finding.message

    def test_dangling_physical_link(self):
        text = GOOD.replace('hostB="h2">', 'hostB="nowhere">', 1)
        report = verify_xadl_source(text)
        assert "XD002" in rules_found(report)

    def test_dangling_deployment(self):
        text = GOOD.replace('<deployment component="c2" host="h2"/>',
                            '<deployment component="c2" host="h9"/>')
        report = verify_xadl_source(text)
        assert "XD003" in rules_found(report)

    def test_duplicate_component_id(self):
        text = GOOD.replace('<component id="c2">', '<component id="c1">')
        report = verify_xadl_source(text)
        assert "XD004" in rules_found(report)

    def test_missing_attribute(self):
        text = GOOD.replace('<deployment component="c1" host="h1"/>',
                            '<deployment component="c1"/>')
        report = verify_xadl_source(text)
        assert "XD005" in rules_found(report)

    def test_reports_all_problems_at_once(self):
        text = GOOD.replace('componentB="c2"', 'componentB="ghost"') \
                   .replace('<deployment component="c2" host="h2"/>',
                            '<deployment component="c2" host="h9"/>')
        report = verify_xadl_source(text)
        assert {"XD002", "XD003"} <= rules_found(report)


class TestModelHandoff:
    def test_model_rules_run_on_sound_document(self):
        # Memory over capacity is invisible at the document level but must
        # surface through the combined report.
        text = GOOD.replace('name="memory" value="5.0"',
                            'name="memory" value="80.0"')
        report = verify_xadl_source(text)
        assert "MV003" in rules_found(report)

    def test_file_entry_point(self, tiny_model, tmp_path):
        path = tmp_path / "arch.xml"
        path.write_text(xadl.to_xml(tiny_model), encoding="utf-8")
        report = verify_xadl_file(str(path))
        assert not report.has_errors


class TestCatalog:
    def test_every_document_rule_documented(self):
        assert set(DOCUMENT_RULES) == {"XD001", "XD002", "XD003", "XD004",
                                       "XD005"}
        assert all(DOCUMENT_RULES.values())
