"""CI smoke test for the faults subsystem.

Always runs a tiny deterministic campaign and asserts the hardened
retry path actually fires.  When ``FAULTS_SMOKE=1`` (the CI job sets
it), additionally writes the :class:`ResilienceReport` JSON to the path
in ``FAULTS_SMOKE_REPORT`` (default ``resilience-report.json``) so the
workflow can upload it as an artifact."""

import json
import os
from pathlib import Path

from repro.core.effector import MiddlewareEffector, plan_redeployment
from repro.core.model import DeploymentModel
from repro.faults import (
    FaultAction, FaultInjector, FaultPlan, rolling_partitions, run_campaign,
)
from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import SimClock


def test_retry_path_fires_under_partition():
    """A partition severing the slave mid-migration heals inside the
    effector's backoff window; the migration must complete via retry."""
    model = DeploymentModel()
    model.add_host("a", memory=100.0)
    model.add_host("b", memory=100.0)
    model.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                        delay=0.01)
    model.add_component("x", memory=5.0)
    model.deploy("x", "a")
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host="a", seed=1)
    campaign = FaultPlan(name="smoke-sever", duration=10.0, actions=[
        FaultAction(0.005, "partition", ("b",), {"duration": 4.995}),
    ])
    FaultInjector(system.network, campaign, model=model).arm()
    effector = MiddlewareEffector(system, max_wait=3.0, max_retries=3,
                                  backoff_base=1.0, jitter=0.0)
    report = effector.effect(plan_redeployment(model, {"x": "b"}))
    assert report.succeeded
    assert report.retries >= 1
    assert system.actual_deployment() == {"x": "b"}


def test_smoke_campaign_writes_report_artifact(tmp_path):
    """End-to-end campaign; under FAULTS_SMOKE=1 the report JSON is
    written where CI expects to find it."""
    scenario = build_crisis_scenario(CrisisConfig(seed=3))
    plan = rolling_partitions(scenario.model, 20.0, exclude_hosts=("hq",))
    report = run_campaign(plan, seed=11, duration=20.0)
    data = json.loads(report.render())
    assert data["faults"]["injected"] > 0
    assert data["detail"]["post_lint_errors"] == 0
    if os.environ.get("FAULTS_SMOKE") == "1":
        target = Path(os.environ.get("FAULTS_SMOKE_REPORT",
                                     "resilience-report.json"))
    else:
        target = tmp_path / "resilience-report.json"
    target.write_text(report.render() + "\n", encoding="utf-8")
    assert json.loads(target.read_text(encoding="utf-8")) == data
