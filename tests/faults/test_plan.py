"""Unit tests for FaultAction / FaultPlan: validation and serialization."""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import FaultAction, FaultPlan, load_plan, save_plan


def sample_plan():
    return FaultPlan(name="sample", duration=30.0, actions=[
        FaultAction(5.0, "host_crash", ("hB",), {"duration": 4.0}),
        FaultAction(1.0, "link_down", ("hA", "hB")),
        FaultAction(2.0, "link_up", ("hA", "hB")),
        FaultAction(10.0, "loss_burst", ("hA", "hB"),
                    {"value": 0.1, "duration": 3.0}),
        FaultAction(15.0, "flap", ("hA", "hB"), {"period": 2.0, "count": 3}),
        FaultAction(22.0, "partition", ("hB",), {"duration": 2.0}),
        FaultAction(26.0, "set_reliability", ("hA", "hB"), {"value": 0.7}),
    ])


class TestStructure:
    def test_actions_sorted_by_time(self):
        plan = sample_plan()
        times = [action.time for action in plan]
        assert times == sorted(times)

    def test_lenient_construction_strict_validate(self):
        plan = FaultPlan(name="bad", duration=10.0, actions=[
            FaultAction(-1.0, "host_crash", ("hA",)),
            FaultAction(2.0, "bogus_kind", ("hA",)),
            FaultAction(3.0, "link_down", ("hA",)),  # needs two ends
            FaultAction(4.0, "loss_burst", ("hA", "hB")),  # missing params
            FaultAction(99.0, "host_crash", ("hA",)),  # past the end
        ])
        assert len(plan) == 5  # constructor accepted everything
        problems = plan.problems()
        assert any("negative action time" in p for p in problems)
        assert any("unknown action kind" in p for p in problems)
        assert any("(host, host) link target" in p for p in problems)
        assert any("'value' parameter" in p for p in problems)
        assert any("after the campaign end" in p for p in problems)
        with pytest.raises(FaultPlanError, match="invalid"):
            plan.validate()

    def test_validate_against_model_catches_dangling_refs(self, tiny_model):
        plan = FaultPlan(name="refs", duration=10.0, actions=[
            FaultAction(1.0, "host_crash", ("ghost",)),
            FaultAction(2.0, "link_down", ("hA", "hB")),
        ])
        assert plan.problems() == ()  # structurally fine
        with pytest.raises(FaultPlanError, match="ghost"):
            plan.validate(tiny_model)

    def test_link_action_requires_physical_link(self, tiny_model):
        tiny_model.add_host("hC", memory=10.0)
        plan = FaultPlan(name="nolink", duration=5.0, actions=[
            FaultAction(1.0, "link_down", ("hA", "hC")),
        ])
        with pytest.raises(FaultPlanError, match="no physical link"):
            plan.validate(tiny_model)

    def test_end_time_covers_durations_and_flaps(self):
        burst = FaultAction(10.0, "loss_burst", ("a", "b"),
                            {"value": 0.1, "duration": 3.0})
        assert burst.end_time == 13.0
        flap = FaultAction(5.0, "flap", ("a", "b"),
                           {"period": 2.0, "count": 3})
        assert flap.end_time == 11.0
        instant = FaultAction(4.0, "link_down", ("a", "b"))
        assert instant.end_time == 4.0


class TestSerialization:
    def test_json_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_json(plan.to_json()).to_json() == plan.to_json()

    def test_xml_round_trip(self):
        plan = sample_plan()
        assert FaultPlan.from_xml(plan.to_xml()).to_json() == plan.to_json()

    def test_load_plan_dispatches_on_extension(self, tmp_path):
        plan = sample_plan()
        for name in ("plan.json", "plan.xml"):
            path = tmp_path / name
            save_plan(plan, str(path))
            loaded = load_plan(str(path))
            assert loaded.to_json() == plan.to_json()

    def test_load_plan_sniffs_content_without_extension(self, tmp_path):
        plan = sample_plan()
        path = tmp_path / "noext"
        path.write_text(plan.to_xml(), encoding="utf-8")
        assert load_plan(str(path)).name == "sample"

    def test_malformed_documents_raise(self):
        with pytest.raises(FaultPlanError, match="JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultPlanError, match="XML"):
            FaultPlan.from_xml("<faultPlan")
        with pytest.raises(FaultPlanError, match="root"):
            FaultPlan.from_xml("<notAPlan/>")
        with pytest.raises(FaultPlanError, match="missing required key"):
            FaultPlan.from_dict({"name": "x"})
        with pytest.raises(FaultPlanError, match="malformed fault action"):
            FaultPlan.from_dict({"name": "x", "duration": 5,
                                 "actions": [{"kind": "link_down"}]})

    def test_xml_parses_count_as_int(self):
        plan = FaultPlan.from_xml(
            '<faultPlan name="p" duration="10">'
            '<action time="1" kind="flap" target="a,b" '
            'period="2.0" count="3"/></faultPlan>')
        action = plan.actions[0]
        assert action.param("count") == 3
        assert isinstance(action.param("count"), int)
