"""Campaign-level determinism across the optimization switches.

A resilience report is a pure function of (plan, seed).  That contract
must survive every throughput optimization: the batched clock vs the
legacy scheduler, connector message coalescing on vs off, and serial vs
process-pool suites — even across interpreters with different
``PYTHONHASHSEED`` values.
"""

import hashlib
import os
import subprocess
import sys
import textwrap

import pytest

from repro.faults import generate_campaign, run_campaign
from repro.middleware.connectors import DistributionConnector
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim.clock import LegacySimClock

DURATION = 10.0


def _plan(campaign, seed):
    built = build_crisis_scenario(CrisisConfig(seed=3))
    return generate_campaign(campaign, built.model, duration=DURATION,
                             seed=seed)


@pytest.fixture(scope="module")
def churn_plan():
    return _plan("random-churn", 5)


@pytest.fixture(scope="module")
def partitions_plan():
    return _plan("rolling-partitions", 7)


class TestOptimizationSwitches:
    def test_legacy_clock_renders_identical_report(self, churn_plan):
        fast = run_campaign(churn_plan, seed=5, scenario="crisis",
                            duration=DURATION)
        legacy = run_campaign(churn_plan, seed=5, scenario="crisis",
                              duration=DURATION,
                              clock_factory=LegacySimClock)
        assert fast.render() == legacy.render()

    def test_legacy_clock_partitions_identical(self, partitions_plan):
        fast = run_campaign(partitions_plan, seed=11, scenario="crisis",
                            duration=DURATION)
        legacy = run_campaign(partitions_plan, seed=11, scenario="crisis",
                              duration=DURATION,
                              clock_factory=LegacySimClock)
        assert fast.render() == legacy.render()

    def test_coalescing_off_renders_identical_report(self, churn_plan,
                                                     monkeypatch):
        baseline = run_campaign(churn_plan, seed=5, scenario="crisis",
                                duration=DURATION)
        original = DistributionConnector.__init__

        def uncoalesced(self, *args, **kwargs):
            original(self, *args, **kwargs)
            self.coalesce = False

        monkeypatch.setattr(DistributionConnector, "__init__", uncoalesced)
        plain = run_campaign(churn_plan, seed=5, scenario="crisis",
                             duration=DURATION)
        assert plain.render() == baseline.render()

    def test_all_switches_off_partitions_identical(self, partitions_plan,
                                                   monkeypatch):
        baseline = run_campaign(partitions_plan, seed=11, scenario="crisis",
                                duration=DURATION)
        original = DistributionConnector.__init__

        def uncoalesced(self, *args, **kwargs):
            original(self, *args, **kwargs)
            self.coalesce = False

        monkeypatch.setattr(DistributionConnector, "__init__", uncoalesced)
        plain = run_campaign(partitions_plan, seed=11, scenario="crisis",
                             duration=DURATION,
                             clock_factory=LegacySimClock)
        assert plain.render() == baseline.render()


SUBPROCESS_SCRIPT = textwrap.dedent("""
    import hashlib, sys
    from repro.faults import generate_campaign, run_campaign
    from repro.scenarios import CrisisConfig, build_crisis_scenario

    built = build_crisis_scenario(CrisisConfig(seed=3))
    plan = generate_campaign("random-churn", built.model, duration=8.0,
                             seed=5)
    suite = run_campaign(plan, scenario="crisis", duration=8.0,
                         seeds=[5, 6], workers=int(sys.argv[1]))
    sys.stdout.write(hashlib.sha256(
        suite.render().encode("utf-8")).hexdigest())
""")


class TestHashSeedIndependence:
    def _digest(self, hashseed, workers):
        env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT, str(workers)],
            capture_output=True, text=True, env=env, check=True)
        return result.stdout.strip()

    def test_workers_suite_is_hashseed_invariant(self):
        """The same suite, run with workers=2 under two different hash
        seeds and serially under a third, renders byte-identically —
        no set/dict iteration order leaks into the report."""
        parallel_a = self._digest(0, workers=2)
        parallel_b = self._digest(424242, workers=2)
        serial = self._digest(7, workers=1)
        assert parallel_a == parallel_b == serial
        assert len(parallel_a) == 64  # a real sha256, not an error path


class TestGoldenDigestStability:
    def test_in_process_suite_matches_subprocess(self):
        # Same computation as the subprocess script, run in-process:
        # guards against the subprocess silently testing different code.
        built = build_crisis_scenario(CrisisConfig(seed=3))
        plan = generate_campaign("random-churn", built.model,
                                 duration=8.0, seed=5)
        suite = run_campaign(plan, scenario="crisis",
                             duration=8.0, seeds=[5, 6], workers=1)
        digest = hashlib.sha256(
            suite.render().encode("utf-8")).hexdigest()
        env_digest = TestHashSeedIndependence()._digest(0, workers=1)
        assert digest == env_digest
