"""Golden resilience-report cases shared by the byte-identity test and
the regeneration entry point.

Each case pins the full canonical JSON of a ``run_campaign`` report for
one (scenario, plan, seed) cell.  The fixtures under ``data/`` were
generated *before* the batched simulation core landed, so the test
asserts the optimized paths reproduce the original event-for-event
behavior — not merely that two runs of the current code agree.

Regenerate (only when a PR intentionally changes simulation semantics)
with::

    PYTHONPATH=src:tests/faults python -m golden_cases --write
"""

from __future__ import annotations

from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent / "data"

#: name -> keyword arguments describing the campaign cell.
CASES = {
    "churn_crisis_improve": {
        "plan": "random_churn",
        "plan_seed": 5,
        "scenario_seed": 3,
        "plan_duration": 40.0,
        "seed": 5,
        "improve": True,
    },
    "churn_crisis_endure": {
        "plan": "random_churn",
        "plan_seed": 5,
        "scenario_seed": 3,
        "plan_duration": 40.0,
        "seed": 5,
        "improve": False,
    },
    "partitions_crisis_improve": {
        "plan": "rolling_partitions",
        "plan_seed": None,
        "scenario_seed": 3,
        "plan_duration": 20.0,
        "seed": 11,
        "improve": True,
    },
    "churn_crisis_planner": {
        "plan": "random_churn",
        "plan_seed": 9,
        "scenario_seed": 3,
        "plan_duration": 30.0,
        "seed": 9,
        "improve": True,
        "planner": True,
    },
}


def build_report(case):
    """Run one golden campaign cell and return its ResilienceReport."""
    from repro.faults import random_churn, rolling_partitions, run_campaign
    from repro.scenarios import CrisisConfig, build_crisis_scenario

    scenario = build_crisis_scenario(CrisisConfig(seed=case["scenario_seed"]))
    if case["plan"] == "random_churn":
        plan = random_churn(scenario.model, case["plan_duration"],
                            seed=case["plan_seed"], exclude_hosts=("hq",))
    else:
        plan = rolling_partitions(scenario.model, case["plan_duration"],
                                  exclude_hosts=("hq",))
    return run_campaign(plan, seed=case["seed"],
                        improve=case["improve"],
                        planner=case.get("planner", False))


def fixture_path(name):
    return DATA_DIR / f"{name}.json"


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="regenerate every fixture under data/")
    args = parser.parse_args(argv)
    if not args.write:
        parser.error("nothing to do; pass --write to regenerate")
    DATA_DIR.mkdir(exist_ok=True)
    for name, case in CASES.items():
        report = build_report(case)
        fixture_path(name).write_text(report.render() + "\n",
                                      encoding="utf-8")
        print(f"wrote {fixture_path(name)}")


if __name__ == "__main__":
    main()
