"""Byte-identity against pre-optimization golden reports.

The fixtures under ``data/`` were rendered by the *pre-batching*
simulation core (heap-per-event clock, per-message network delivery,
uncoalesced connector flushes).  These tests assert the optimized paths
reproduce them byte for byte: same (plan, seed) -> the exact JSON the
original implementation produced, including every availability count,
outage duration, and migration statistic.

If one of these fails after an intentional semantic change, regenerate
with ``python tests/faults/golden_cases.py --write`` — but for a
performance PR a diff here means the optimization is *not*
behavior-preserving and must be fixed, not re-pinned.
"""

import pytest

from golden_cases import CASES, build_report, fixture_path


@pytest.mark.parametrize("name", sorted(CASES))
def test_report_matches_pre_optimization_golden(name):
    expected = fixture_path(name).read_text(encoding="utf-8")
    report = build_report(CASES[name])
    assert report.render() + "\n" == expected, (
        f"golden report {name!r} diverged: the simulation core is no "
        f"longer byte-identical to the pre-optimization implementation")
