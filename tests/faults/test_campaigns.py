"""Unit tests for the model-derived campaign generators."""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import (
    generate_campaign, host_traffic, random_churn, rolling_partitions,
    targeted_attack, worst_host,
)
from repro.scenarios import CrisisConfig, build_crisis_scenario


@pytest.fixture
def crisis_model():
    return build_crisis_scenario(CrisisConfig(seed=3)).model


class TestWorstHost:
    def test_traffic_attributes_logical_links_to_hosts(self, tiny_model):
        traffic = host_traffic(tiny_model)
        # c1--c2 (4 * 2) is internal to hA; c2--c3 (1 * 1) spans both.
        assert traffic["hA"] == pytest.approx(9.0)
        assert traffic["hB"] == pytest.approx(1.0)

    def test_worst_host_is_traffic_maximum(self, tiny_model):
        assert worst_host(tiny_model) == "hA"
        assert worst_host(tiny_model, exclude=("hA",)) == "hB"
        with pytest.raises(FaultPlanError, match="no candidate"):
            worst_host(tiny_model, exclude=("hA", "hB"))

    def test_crisis_worst_host_is_hq(self, crisis_model):
        # Everything funnels into the HQ services in the crisis scenario.
        assert worst_host(crisis_model) == "hq"


class TestGenerators:
    def test_random_churn_is_seed_deterministic(self, crisis_model):
        a = random_churn(crisis_model, 60.0, seed=7)
        b = random_churn(crisis_model, 60.0, seed=7)
        c = random_churn(crisis_model, 60.0, seed=8)
        assert a.to_json() == b.to_json()
        assert a.to_json() != c.to_json()

    def test_random_churn_validates_and_respects_exclusions(
            self, crisis_model):
        plan = random_churn(crisis_model, 60.0, seed=7,
                            exclude_hosts=("hq",))
        plan.validate(crisis_model)
        crashed = {action.target[0] for action in plan
                   if action.kind == "host_crash"}
        assert "hq" not in crashed

    def test_rolling_partitions_cover_hosts_in_sequence(self, crisis_model):
        plan = rolling_partitions(crisis_model, 90.0, group_size=2,
                                  exclude_hosts=("hq",))
        plan.validate(crisis_model)
        partitioned = [action.target for action in plan]
        flattened = [h for group in partitioned for h in group]
        assert "hq" not in flattened
        assert len(flattened) == len(set(flattened))  # each host once
        times = [action.time for action in plan]
        assert times == sorted(times)

    def test_rolling_partitions_reject_impossible_slots(self, crisis_model):
        with pytest.raises(FaultPlanError, match="slot"):
            rolling_partitions(crisis_model, 10.0, hold=100.0)

    def test_targeted_attack_hits_derived_worst_host(self, crisis_model):
        plan = targeted_attack(crisis_model, 60.0, strikes=3)
        plan.validate(crisis_model)
        assert all(action.target == ("hq",) for action in plan)
        assert len(plan) == 3

    def test_targeted_attack_explicit_victim(self, crisis_model):
        plan = targeted_attack(crisis_model, 60.0, victim="cmd0")
        assert all(action.target == ("cmd0",) for action in plan)
        with pytest.raises(FaultPlanError, match="unknown victim"):
            targeted_attack(crisis_model, 60.0, victim="ghost")

    def test_generate_campaign_registry(self, crisis_model):
        plan = generate_campaign("targeted-attack", crisis_model, 30.0)
        assert plan.name.startswith("targeted-attack")
        with pytest.raises(FaultPlanError, match="unknown campaign"):
            generate_campaign("nope", crisis_model, 30.0)
