"""Unit tests for the FaultInjector: scheduling, state save/restore."""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import FaultAction, FaultInjector, FaultPlan
from repro.sim import SimClock, SimulatedNetwork


def star_network(seed=1):
    """hub linked to s1..s3; s1-s2 also linked (redundant path)."""
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=seed)
    for name in ("hub", "s1", "s2", "s3"):
        network.add_endpoint(name)
    for spoke in ("s1", "s2", "s3"):
        network.add_link("hub", spoke, reliability=0.9, bandwidth=100.0)
    network.add_link("s1", "s2", reliability=0.8, bandwidth=50.0)
    return clock, network


def run_plan(network, plan):
    injector = FaultInjector(network, plan)
    injector.arm()
    network.clock.run(plan.duration)
    return injector


class TestArming:
    def test_arm_schedules_and_disarm_cancels(self):
        clock, network = star_network()
        plan = FaultPlan(name="p", duration=10.0, actions=[
            FaultAction(2.0, "link_down", ("hub", "s1")),
            FaultAction(4.0, "link_up", ("hub", "s1")),
        ])
        injector = FaultInjector(network, plan)
        assert injector.arm() == 2
        assert injector.disarm() == 2
        clock.run(10.0)
        assert injector.actions_applied == 0
        assert network.link("hub", "s1").connected

    def test_arm_twice_rejected(self):
        clock, network = star_network()
        injector = FaultInjector(network, FaultPlan("p", 1.0))
        injector.arm()
        with pytest.raises(FaultPlanError, match="already armed"):
            injector.arm()

    def test_arm_rejects_unknown_endpoint(self):
        clock, network = star_network()
        plan = FaultPlan(name="p", duration=5.0, actions=[
            FaultAction(1.0, "host_crash", ("ghost",)),
        ])
        with pytest.raises(FaultPlanError, match="ghost"):
            FaultInjector(network, plan).arm()


class TestHostCrash:
    def test_crash_severs_all_links_and_restart_restores(self):
        clock, network = star_network()
        network.set_connected("s1", "s2", False)  # pre-existing outage
        plan = FaultPlan(name="crash", duration=10.0, actions=[
            FaultAction(2.0, "host_crash", ("s1",), {"duration": 3.0}),
        ])
        injector = FaultInjector(network, plan)
        injector.arm()
        clock.run(3.0)  # crash applied
        assert not network.link("hub", "s1").connected
        assert not network.link("s1", "s2").connected
        clock.run(10.0)  # auto-restart at t=5
        assert network.link("hub", "s1").connected
        # The link that was already down before the crash stays down.
        assert not network.link("s1", "s2").connected
        assert injector.outages and injector.outages[0][3] == 5.0

    def test_duplicate_crash_keeps_first_snapshot(self):
        clock, network = star_network()
        plan = FaultPlan(name="dup", duration=10.0, actions=[
            FaultAction(1.0, "host_crash", ("s3",)),
            FaultAction(2.0, "host_crash", ("s3",)),
            FaultAction(3.0, "host_restart", ("s3",)),
        ])
        injector = run_plan(network, plan)
        assert network.link("hub", "s3").connected
        duplicates = [e for e in injector.log
                      if e["detail"].get("duplicate")]
        assert len(duplicates) == 1

    def test_restart_without_crash_is_noop(self):
        clock, network = star_network()
        plan = FaultPlan(name="p", duration=5.0, actions=[
            FaultAction(1.0, "host_restart", ("s1",)),
        ])
        injector = run_plan(network, plan)
        assert injector.log[0]["detail"].get("not_crashed")


class TestPartition:
    def test_partition_cuts_only_crossing_links(self):
        clock, network = star_network()
        plan = FaultPlan(name="cut", duration=10.0, actions=[
            FaultAction(2.0, "partition", ("s1", "s2"), {"duration": 4.0}),
        ])
        injector = FaultInjector(network, plan)
        injector.arm()
        clock.run(3.0)
        # Links crossing the {s1, s2} cut are down ...
        assert not network.link("hub", "s1").connected
        assert not network.link("hub", "s2").connected
        # ... the internal link is untouched.
        assert network.link("s1", "s2").connected
        clock.run(10.0)  # auto-heal at t=6
        assert network.link("hub", "s1").connected
        assert network.link("hub", "s2").connected

    def test_open_outage_reported_when_never_healed(self):
        clock, network = star_network()
        plan = FaultPlan(name="open", duration=10.0, actions=[
            FaultAction(2.0, "partition", ("s3",)),
        ])
        injector = run_plan(network, plan)
        assert injector.outages == []
        assert injector.open_outages() == (("partition", ("s3",), 2.0),)


class TestLinkDynamics:
    def test_loss_burst_restores_previous_reliability(self):
        clock, network = star_network()
        plan = FaultPlan(name="burst", duration=10.0, actions=[
            FaultAction(2.0, "loss_burst", ("hub", "s1"),
                        {"value": 0.05, "duration": 3.0}),
        ])
        injector = FaultInjector(network, plan)
        injector.arm()
        clock.run(2.5)
        assert network.link("hub", "s1").reliability == 0.05
        clock.run(10.0)
        assert network.link("hub", "s1").reliability == 0.9

    def test_set_reliability_and_bandwidth_clamped_via_network(self):
        clock, network = star_network()
        plan = FaultPlan(name="deg", duration=5.0, actions=[
            FaultAction(1.0, "set_reliability", ("hub", "s2"),
                        {"value": 1.7}),
            FaultAction(2.0, "set_bandwidth", ("hub", "s2"),
                        {"value": -5.0}),
        ])
        run_plan(network, plan)
        assert network.link("hub", "s2").reliability == 1.0
        assert network.link("hub", "s2").bandwidth == 0.0

    def test_flap_produces_alternating_transitions(self):
        clock, network = star_network()
        transitions = []
        network.observers.append(
            lambda name, payload: transitions.append(
                (round(clock.now, 3), name))
            if name in ("link_up", "link_down") else None)
        plan = FaultPlan(name="flap", duration=20.0, actions=[
            FaultAction(2.0, "flap", ("hub", "s1"),
                        {"period": 2.0, "count": 3}),
        ])
        run_plan(network, plan)
        assert transitions == [
            (2.0, "link_down"), (3.0, "link_up"),
            (4.0, "link_down"), (5.0, "link_up"),
            (6.0, "link_down"), (7.0, "link_up"),
        ]
        assert network.link("hub", "s1").connected

    def test_injection_log_is_chronological(self):
        clock, network = star_network()
        plan = FaultPlan(name="log", duration=10.0, actions=[
            FaultAction(1.0, "link_down", ("hub", "s1")),
            FaultAction(3.0, "link_up", ("hub", "s1")),
            FaultAction(5.0, "host_crash", ("s2",), {"duration": 2.0}),
        ])
        injector = run_plan(network, plan)
        times = [entry["time"] for entry in injector.log]
        assert times == sorted(times)
        assert injector.actions_applied == len(injector.log) == 4
