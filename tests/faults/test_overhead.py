"""Guard: fault injection is zero-cost when disabled.

The injector works purely by scheduling clock events up front — it adds
no per-event hooks, wrappers, or checks to the network or middleware hot
paths.  This microbenchmark pins that property: a workload run with no
injector and the same run with an armed-but-empty :class:`FaultPlan`
must cost the same wall-clock time (within CI noise margin)."""

import time

from repro.faults import FaultInjector, FaultPlan
from repro.middleware import DistributedSystem
from repro.scenarios import build_client_server
from repro.sim import InteractionWorkload, SimClock


def drive(arm_empty_plan):
    scenario = build_client_server(seed=4)
    clock = SimClock()
    system = DistributedSystem(scenario.model, clock, seed=4)
    if arm_empty_plan:
        plan = FaultPlan(name="empty", duration=30.0, actions=[])
        FaultInjector(system.network, plan, model=scenario.model).arm()
    workload = InteractionWorkload(scenario.model, clock, system.emit,
                                   seed=5).start()
    clock.run(30.0)
    workload.stop()


def timed(func, *args):
    started = time.perf_counter()
    func(*args)
    return time.perf_counter() - started


def test_empty_plan_adds_no_hot_path_overhead():
    drive(False)  # warm imports and caches outside the timed region
    # Interleave the pairs so machine-load drift hits both variants
    # equally; best-of over the pairs discards the noisy repeats.
    bare = armed = float("inf")
    for __ in range(5):
        bare = min(bare, timed(drive, False))
        armed = min(armed, timed(drive, True))
    # Structurally identical runs; allow generous noise margin so CI
    # cannot flake the guard while still catching any per-event hook.
    assert armed < bare * 1.5, \
        f"armed-empty {armed:.6f}s vs bare {bare:.6f}s"
