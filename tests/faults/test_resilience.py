"""End-to-end resilience tests: reproducibility, retry-through-partition,
transactional rollback, and the with/without-redeployment comparison."""

import json

import pytest

from repro.core.effector import MiddlewareEffector, plan_redeployment
from repro.core.errors import MigrationTimeoutError
from repro.core.model import DeploymentModel
from repro.faults import (
    FaultAction, FaultInjector, FaultPlan, random_churn, rolling_partitions,
    run_campaign,
)
from repro.lint import verify_deployment
from repro.middleware import DistributedSystem
from repro.scenarios import CrisisConfig, build_crisis_scenario
from repro.sim import SimClock


def two_host_world():
    """Master a, slave b, one good link; component x on a."""
    model = DeploymentModel()
    model.add_host("a", memory=100.0)
    model.add_host("b", memory=100.0)
    model.connect_hosts("a", "b", reliability=1.0, bandwidth=100.0,
                        delay=0.01)
    model.add_component("x", memory=5.0)
    model.deploy("x", "a")
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host="a", seed=1)
    return model, clock, system


class TestReproducibility:
    def test_same_plan_and_seed_render_byte_identical_json(self):
        def once():
            scenario = build_crisis_scenario(CrisisConfig(seed=3))
            plan = rolling_partitions(scenario.model, 20.0,
                                      exclude_hosts=("hq",))
            return run_campaign(plan, seed=11, duration=20.0)

        first, second = once(), once()
        assert first.render() == second.render()
        # Timing is genuinely excluded from the canonical form.
        assert "wall_seconds" not in first.render()
        assert "wall_seconds" in first.render(include_timing=True)

    def test_report_shape(self):
        scenario = build_crisis_scenario(CrisisConfig(seed=3))
        plan = rolling_partitions(scenario.model, 15.0,
                                  exclude_hosts=("hq",))
        report = run_campaign(plan, seed=2, duration=15.0)
        data = json.loads(report.render())
        assert data["plan"] == plan.name
        assert data["faults"]["injected"] > 0
        assert 0.0 <= data["availability"]["delivered"] <= 1.0
        assert data["detail"]["post_lint_errors"] == 0
        assert report.summary().startswith(plan.name)


class TestPartitionMidMigration:
    def plan_for(self, model):
        return plan_redeployment(model, {"x": "b"})

    def test_retries_complete_after_heal(self):
        model, clock, system = two_host_world()
        # Sever b 5 ms in — the transfer (delay 10 ms) dies mid-flight —
        # and heal at t=5, inside the effector's second attempt.
        campaign = FaultPlan(name="sever-mid-migration", duration=10.0,
                             actions=[
            FaultAction(0.005, "partition", ("b",), {"duration": 4.995}),
        ])
        FaultInjector(system.network, campaign, model=model).arm()
        effector = MiddlewareEffector(system, max_wait=3.0, max_retries=3,
                                      backoff_base=1.0, jitter=0.0)
        report = effector.effect(self.plan_for(model))
        assert report.succeeded
        assert report.retries >= 1
        assert not report.rolled_back
        actual = system.actual_deployment()
        assert actual == {"x": "b"}
        assert not verify_deployment(model, actual).has_errors

    def test_unhealed_partition_rolls_back_to_pre_plan_deployment(self):
        model, clock, system = two_host_world()
        campaign = FaultPlan(name="sever-forever", duration=100.0, actions=[
            FaultAction(0.005, "partition", ("b",)),
        ])
        FaultInjector(system.network, campaign, model=model).arm()
        effector = MiddlewareEffector(system, max_wait=3.0, max_retries=1,
                                      backoff_base=1.0, jitter=0.0)
        pre_state = dict(system.actual_deployment())
        with pytest.raises(MigrationTimeoutError) as excinfo:
            effector.effect(self.plan_for(model))
        error = excinfo.value
        assert error.report is not None
        assert error.report.rolled_back
        assert error.report.retries == 1
        assert "restored_in_place" in error.report.detail
        # Exactly the pre-plan deployment: never zero hosts, never two.
        actual = system.actual_deployment()
        assert actual == pre_state
        assert sorted(actual) == ["x"]
        assert not verify_deployment(model, actual).has_errors

    def test_failure_report_lands_in_history(self):
        model, clock, system = two_host_world()
        system.network.set_connected("a", "b", False)
        effector = MiddlewareEffector(system, max_wait=2.0, max_retries=0,
                                      jitter=0.0)
        with pytest.raises(MigrationTimeoutError):
            effector.effect(self.plan_for(model))
        assert len(effector.history) == 1
        assert effector.history[0].succeeded is False
        assert effector.history[0].rolled_back

    def test_non_transactional_skips_rollback(self):
        model, clock, system = two_host_world()
        system.network.set_connected("a", "b", False)
        effector = MiddlewareEffector(system, max_wait=2.0, max_retries=0,
                                      jitter=0.0, transactional=False)
        with pytest.raises(MigrationTimeoutError) as excinfo:
            effector.effect(self.plan_for(model))
        assert not excinfo.value.report.rolled_back


class TestChurnComparison:
    def test_redeployment_beats_endurance_under_churn(self):
        """The paper's headline effect: under the same fault campaign the
        closed improvement loop delivers more application events than a
        system that merely endures."""
        def run(improve):
            scenario = build_crisis_scenario(CrisisConfig(seed=3))
            plan = random_churn(scenario.model, 40.0, seed=5,
                                exclude_hosts=("hq",))
            return run_campaign(plan, seed=5, improve=improve)

        improved = run(True)
        endured = run(False)
        assert improved.improvement_loop and not endured.improvement_loop
        assert improved.migrations_attempted >= 1
        assert endured.migrations_attempted == 0
        assert improved.delivered_availability \
            > endured.delivered_availability
        assert improved.detail["post_lint_errors"] == 0
        assert endured.detail["post_lint_errors"] == 0
