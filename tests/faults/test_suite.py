"""Campaign suites: run_campaign(seeds=..., workers=N).

Serial and parallel suites must execute the identical per-campaign job
and therefore render byte-identically; the classic single-report path
must be unaffected by the suite machinery.
"""

import pytest

from repro.core.errors import FaultPlanError
from repro.faults import (
    CampaignSuiteReport, ResilienceReport, generate_campaign, run_campaign,
)
from repro.obs import Observability
from repro.obs.trace import NULL_TRACER
from repro.scenarios import CrisisConfig, build_crisis_scenario

DURATION = 8.0


@pytest.fixture(scope="module")
def plan():
    built = build_crisis_scenario(CrisisConfig(seed=3))
    return generate_campaign("random-churn", built.model,
                             duration=DURATION, seed=5)


@pytest.fixture(scope="module")
def partition_plan():
    built = build_crisis_scenario(CrisisConfig(seed=3))
    return generate_campaign("rolling-partitions", built.model,
                             duration=DURATION, seed=7)


class TestSuiteMode:
    def test_seeds_returns_suite(self, plan):
        suite = run_campaign(plan, scenario="crisis", duration=DURATION,
                             seeds=[3, 4])
        assert isinstance(suite, CampaignSuiteReport)
        assert [r.seed for r in suite.runs] == [3, 4]
        assert suite.aggregate()["campaigns"] == 2

    def test_classic_path_still_single_report(self, plan):
        report = run_campaign(plan, scenario="crisis", duration=DURATION,
                              seed=3)
        assert isinstance(report, ResilienceReport)

    def test_suite_run_matches_classic(self, plan):
        single = run_campaign(plan, scenario="crisis", duration=DURATION,
                              seed=3)
        suite = run_campaign(plan, scenario="crisis", duration=DURATION,
                             seeds=[3])
        assert suite.run(plan.name, 3).render() == single.render()

    def test_plan_list_cross_product(self, plan, partition_plan):
        suite = run_campaign([plan, partition_plan], scenario="crisis",
                             duration=DURATION, seeds=[3, 4])
        assert [(r.plan_name, r.seed) for r in suite.runs] == [
            (plan.name, 3), (plan.name, 4),
            (partition_plan.name, 3), (partition_plan.name, 4),
        ]

    def test_unknown_run_raises(self, plan):
        suite = run_campaign(plan, scenario="crisis", duration=DURATION,
                             seeds=[3])
        with pytest.raises(KeyError):
            suite.run("nope", 3)

    def test_workers_must_be_positive(self, plan):
        with pytest.raises(FaultPlanError):
            run_campaign(plan, scenario="crisis", workers=0)

    def test_seeds_must_be_non_empty(self, plan):
        with pytest.raises(FaultPlanError):
            run_campaign(plan, scenario="crisis", seeds=[])

    def test_empty_plan_list_rejected(self):
        with pytest.raises(FaultPlanError):
            run_campaign([], scenario="crisis")


class TestSerialParallelEquivalence:
    def test_parallel_renders_byte_identical(self, plan):
        serial = run_campaign(plan, scenario="crisis", duration=DURATION,
                              seeds=[3, 4], workers=1)
        parallel = run_campaign(plan, scenario="crisis", duration=DURATION,
                                seeds=[3, 4], workers=2)
        assert serial.render() == parallel.render()

    def test_metrics_merge_identical(self, plan):
        def metric_lines(workers):
            obs = Observability(tracer=NULL_TRACER)
            run_campaign(plan, scenario="crisis", duration=DURATION,
                         seeds=[3, 4], workers=workers, obs=obs)
            return obs.metrics.to_lines()

        assert metric_lines(1) == metric_lines(2)

    def test_unpicklable_factory_rejected(self, plan):
        with pytest.raises(FaultPlanError, match="picklable"):
            run_campaign(plan, scenario="crisis", duration=DURATION,
                         seeds=[3, 4], workers=2,
                         clock_factory=lambda: None)
