"""The headline planner experiment: identical fault plan, seed, and
effector pressure — wave scheduling must deliver a strictly higher
migration success rate than the naive all-at-once path.

The world has two 'core' services on healthy hosts and two clients
stranded on an unreliable host; the analyzer wants each client next to
its core.  A partition cuts one core's host across the enactment window.
Naive enactment fails the whole plan (transactional rollback reverts the
healthy move too) and needs a second analysis cycle to recover; the wave
orchestrator banks the healthy wave at a barrier, rolls back only the
partitioned wave, and re-plans through the heal inside the same attempt.
"""

from repro.core.model import DeploymentModel
from repro.faults import FaultAction, FaultPlan, run_campaign
from repro.middleware import DistributedSystem

#: Same enactment pressure for both strategies: short per-attempt budget,
#: one retry, deterministic backoff.
EFFECTOR_OPTIONS = dict(max_wait=2.0, max_retries=1, backoff_base=1.0,
                        jitter=0.0)

SEED = 1
DURATION = 20.0


def clients_and_cores(clock, seed):
    model = DeploymentModel()
    for host in ("hub", "weak", "b", "c"):
        model.add_host(host, memory=1000.0)
    hosts = ("hub", "weak", "b", "c")
    for i, first in enumerate(hosts):
        for second in hosts[i + 1:]:
            reliability = 0.5 if "weak" in (first, second) else 0.95
            model.connect_hosts(first, second, reliability=reliability,
                                bandwidth=100.0, delay=0.01)
    for component, host in (("core1", "b"), ("core2", "c"),
                            ("x", "weak"), ("y", "weak")):
        model.add_component(component, memory=5.0)
        model.deploy(component, host)
    model.connect_components("x", "core1", frequency=2.0, evt_size=2.0)
    model.connect_components("y", "core2", frequency=2.0, evt_size=2.0)
    return DistributedSystem(model, clock, master_host="hub", seed=seed)


def cut_core2_plan():
    return FaultPlan(name="cut-core2", duration=DURATION, actions=[
        FaultAction(3.5, "partition", ("c",), {"duration": 6.0}),
    ])


def run(planner):
    return run_campaign(cut_core2_plan(), seed=SEED, duration=DURATION,
                        system_factory=clients_and_cores, planner=planner,
                        effector_options=EFFECTOR_OPTIONS)


class TestPlannerCampaign:
    def test_planner_strictly_improves_migration_success_rate(self):
        naive = run(planner=False)
        waved = run(planner=True)
        assert waved.migration_success_rate \
            > naive.migration_success_rate
        # The mechanism, not just the headline: naive lost a whole
        # attempt to transactional rollback; the orchestrator recovered
        # inside its first attempt via barrier rollback + re-planning.
        assert naive.migrations_attempted > naive.migrations_succeeded
        assert waved.migrations_succeeded == waved.migrations_attempted
        stats = waved.detail["planner"]
        assert stats["barrier_rollbacks"] >= 1
        assert stats["replans"] >= 1
        assert stats["waves_completed"] >= 1

    def test_planner_detail_only_present_when_enabled(self):
        naive = run(planner=False)
        waved = run(planner=True)
        assert "planner" not in naive.detail
        assert "planner" in waved.detail
