"""Tests for DistributedSystem assembly (the Figure-8 shape)."""

import pytest

from repro.core import DeploymentModel
from repro.core.errors import EffectorError, MiddlewareError, UnknownEntityError
from repro.middleware import AppComponent, DistributedSystem
from repro.middleware.admin import AdminComponent, DeployerComponent, admin_id
from repro.sim import InteractionWorkload, SimClock


def simple_model():
    model = DeploymentModel()
    for host in ("h0", "h1"):
        model.add_host(host, memory=100.0)
    model.connect_hosts("h0", "h1", reliability=0.9, bandwidth=100.0)
    for component in ("a", "b"):
        model.add_component(component, memory=10.0)
    model.connect_components("a", "b", frequency=2.0)
    model.deploy("a", "h0")
    model.deploy("b", "h1")
    return model


class TestAssembly:
    def test_one_architecture_per_host(self):
        system = DistributedSystem(simple_model(), SimClock(), seed=1)
        assert set(system.architectures) == {"h0", "h1"}

    def test_master_gets_deployer_slaves_get_admin(self):
        system = DistributedSystem(simple_model(), SimClock(),
                                   master_host="h0", seed=1)
        assert isinstance(system.admins["h0"], DeployerComponent)
        assert isinstance(system.admins["h1"], AdminComponent)
        assert not isinstance(system.admins["h1"], DeployerComponent)

    def test_components_placed_per_model_deployment(self):
        system = DistributedSystem(simple_model(), SimClock(), seed=1)
        assert system.locate("a") == "h0"
        assert system.locate("b") == "h1"
        assert system.actual_deployment() == {"a": "h0", "b": "h1"}

    def test_location_tables_prepopulated(self):
        system = DistributedSystem(simple_model(), SimClock(), seed=1)
        dist = system.architecture("h0").distribution_connector
        assert dist.lookup("b") == "h1"
        assert dist.lookup(admin_id("h1")) == "h1"

    def test_migration_size_from_component_memory(self):
        system = DistributedSystem(simple_model(), SimClock(), seed=1)
        assert system.component("a").migration_size_kb == 10.0

    def test_incomplete_deployment_rejected(self):
        model = simple_model()
        model.undeploy("a")
        with pytest.raises(Exception, match="not deployed"):
            DistributedSystem(model, SimClock(), seed=1)

    def test_unknown_master_rejected(self):
        with pytest.raises(UnknownEntityError):
            DistributedSystem(simple_model(), SimClock(),
                              master_host="nope", seed=1)

    def test_custom_component_factory(self):
        class Special(AppComponent):
            pass
        system = DistributedSystem(simple_model(), SimClock(),
                                   component_factory=Special, seed=1)
        assert isinstance(system.component("a"), Special)


class TestDecentralizedMode:
    def test_no_deployer_in_decentralized_mode(self):
        system = DistributedSystem(simple_model(), SimClock(),
                                   decentralized=True, seed=1)
        assert system.deployer is None
        assert all(not isinstance(a, DeployerComponent)
                   for a in system.admins.values())
        assert all(a.deployer_id is None for a in system.admins.values())

    def test_master_host_conflicts_with_decentralized(self):
        with pytest.raises(MiddlewareError):
            DistributedSystem(simple_model(), SimClock(),
                              master_host="h0", decentralized=True, seed=1)

    def test_redeploy_rejected_in_decentralized_mode(self):
        system = DistributedSystem(simple_model(), SimClock(),
                                   decentralized=True, seed=1)
        with pytest.raises(EffectorError, match="decentralized"):
            system.redeploy({"a": "h1"})

    def test_admin_to_admin_migration_still_works(self):
        """Decentralized hosts migrate directly via migrate_out."""
        clock = SimClock()
        system = DistributedSystem(simple_model(), clock,
                                   decentralized=True, seed=1)
        system.admin("h0").migrate_out("a", "h1")
        clock.run(5.0)
        assert system.actual_deployment() == {"a": "h1", "b": "h1"}


class TestTraffic:
    def test_emit_drives_application_events(self):
        clock = SimClock()
        system = DistributedSystem(simple_model(), clock, seed=1)
        system.emit("a", "b", 1.0)
        clock.run(1.0)
        assert system.component("b").received_count == 1
        assert system.component("a").sent_count == 1

    def test_workload_delivery_tracks_reliability(self):
        model = simple_model()
        model.set_physical_link_param("h0", "h1", "reliability", 0.6)
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=5)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=3).start()
        clock.run(200.0)
        workload.stop()
        sent = (system.component("a").sent_count
                + system.component("b").sent_count)
        received = (system.component("a").received_count
                    + system.component("b").received_count)
        assert sent > 100
        assert received / sent == pytest.approx(0.6, abs=0.08)

    def test_emissions_skipped_for_inflight_components(self):
        clock = SimClock()
        system = DistributedSystem(simple_model(), clock, seed=1)
        arch = system.architecture("h0")
        arch.remove_component("a")  # simulate in-flight
        system.emit("a", "b", 1.0)
        assert system.emissions_skipped == 1
