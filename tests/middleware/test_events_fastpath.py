"""The event wire/size fast paths and the ``__slots__`` hot-path diet.

``Event.size_kb`` and ``Event.to_wire`` carry arithmetic fast paths
that bypass ``json.dumps`` for common payload shapes.  Their contract
is *exactness*: any payload the fast path prices must be priced
identically to the encoder (sizes feed transmission times and thus the
deterministic reports), and any payload it vouches for must genuinely
serialize.  Hypothesis drives arbitrary JSON-ish payloads through both.
"""

import json
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SerializationError
from repro.middleware.bricks import (
    Architecture, CallbackComponent, Component, Connector,
)
from repro.middleware.events import (
    Event, _json_size_fast, _jsonable_fast,
)

#: JSON-ish values, deliberately including escapes, unicode, huge ints,
#: odd floats, deep nesting — everything that must fall back exactly.
JSON_VALUES = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-10 ** 30, max_value=10 ** 30)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=10), children,
                                        max_size=4)),
    max_leaves=25)


class TestSizeFastPath:
    @settings(max_examples=300, deadline=None)
    @given(value=JSON_VALUES)
    def test_fast_size_exact_or_fallback(self, value):
        fast = _json_size_fast(value)
        encoded = len(json.dumps(value))
        assert fast == -1 or fast == encoded

    @settings(max_examples=300, deadline=None)
    @given(value=JSON_VALUES)
    def test_fast_jsonable_never_lies(self, value):
        if _jsonable_fast(value):
            json.dumps(value)  # must not raise

    @settings(max_examples=100, deadline=None)
    @given(payload=st.dictionaries(st.text(max_size=10), JSON_VALUES,
                                   max_size=4))
    def test_event_size_matches_encoder(self, payload):
        from repro.middleware.events import EVENT_OVERHEAD_KB
        event = Event("app.msg", payload)
        expected = EVENT_OVERHEAD_KB + len(json.dumps(payload)) / 1024.0
        assert event.size_kb == expected

    def test_size_cache_memoizes(self):
        event = Event("app.msg", {"k": 1})
        first = event.size_kb
        event.payload["k"] = 2  # mutation after first pricing is ignored
        assert event.size_kb == first

    def test_explicit_size_wins(self):
        assert Event("app.msg", {"k": 1}, size_kb=7.5).size_kb == 7.5

    def test_non_serializable_payload_still_rejected(self):
        event = Event("app.msg")
        event.payload = {"bad": object()}
        with pytest.raises(SerializationError):
            event.to_wire()

    def test_exotic_payload_conservative_estimate(self):
        event = Event("app.msg")
        event.payload = {"bad": object()}
        from repro.middleware.events import EVENT_OVERHEAD_KB
        assert event.size_kb == EVENT_OVERHEAD_KB + 256 / 1024.0


class TestSlots:
    def test_hot_path_classes_have_no_dict(self):
        """The slots diet holds: none of the hot-path instances carry a
        per-instance ``__dict__`` (a regression silently re-adds ~100
        bytes and a dict allocation per event/brick)."""
        event = Event("app.msg", {"k": 1})
        bricks = [Component("c"), Connector("x"),
                  CallbackComponent("cb"), Architecture("arch")]
        for instance in [event, *bricks]:
            assert not hasattr(instance, "__dict__"), type(instance)

    def test_unslotted_subclasses_regain_dict(self):
        class Custom(Component):
            pass

        instance = Custom("c")
        instance.anything = 1  # open subclasses stay open
        assert instance.anything == 1

    def test_event_creation_microbenchmark(self):
        """Guard for the slotted Event: building + pricing events must
        not be slower than a dict-backed equivalent.  (In practice the
        slotted class is ~10-30% faster; assert merely 'not slower'
        with margin so CI noise cannot flake the guard.)"""

        class DictEvent:
            # The pre-slots shape: same fields, instance __dict__.

            def __init__(self, name, payload):
                self.name = name
                self.payload = payload
                self.event_type = "request"
                self.source = None
                self.target = "t"
                self._size_kb = None
                self._size_cache = None
                self.headers = {}
                self.event_id = 1
                self._admin = name.startswith("admin.")

        def best_of(repeats, fn):
            best = float("inf")
            for __ in range(repeats):
                started = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - started)
            return best

        payload = {"seq": 1}

        def slotted():
            for __ in range(4000):
                Event("app.msg", payload, target="t")

        def dict_backed():
            for __ in range(4000):
                DictEvent("app.msg", dict(payload))

        slotted_time = best_of(5, slotted)
        dict_time = best_of(5, dict_backed)
        assert slotted_time < dict_time * 2.0, \
            f"slotted {slotted_time:.6f}s vs dict {dict_time:.6f}s"

    def test_size_fast_path_microbenchmark(self):
        """The arithmetic size fast path must beat running the encoder
        for the common small-payload case it was built for."""
        payloads = [{"seq": i, "component": f"comp-{i}", "size": 1.5}
                    for i in range(50)]

        def best_of(repeats, fn):
            best = float("inf")
            for __ in range(repeats):
                started = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - started)
            return best

        def fast():
            for payload in payloads * 20:
                _json_size_fast(payload)

        def encoder():
            for payload in payloads * 20:
                len(json.dumps(payload))

        fast_time = best_of(5, fast)
        encoder_time = best_of(5, encoder)
        assert fast_time < encoder_time * 1.2, \
            f"fast {fast_time:.6f}s vs encoder {encoder_time:.6f}s"
