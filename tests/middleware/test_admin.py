"""Tests for the Admin/Deployer migration protocol (Section 4.3)."""

import pytest

from repro.core import DeploymentModel
from repro.core.errors import MigrationError
from repro.middleware import AppComponent, DistributedSystem
from repro.middleware.admin import admin_id
from repro.sim import SimClock


def build_system(n_hosts=3, connected=True, master="h0", seed=2):
    model = DeploymentModel()
    hosts = [f"h{i}" for i in range(n_hosts)]
    for host in hosts:
        model.add_host(host, memory=500.0)
    if connected:
        for i in range(n_hosts):
            for j in range(i + 1, n_hosts):
                model.connect_hosts(hosts[i], hosts[j], reliability=1.0,
                                    bandwidth=100.0, delay=0.01)
    for index in range(4):
        model.add_component(f"c{index}", memory=20.0)
        model.deploy(f"c{index}", hosts[index % n_hosts])
    model.connect_components("c0", "c1", frequency=2.0)
    model.connect_components("c2", "c3", frequency=2.0)
    clock = SimClock()
    system = DistributedSystem(model, clock, master_host=master, seed=seed)
    return model, clock, system


class TestMigrationProtocol:
    def test_single_move_between_slaves(self):
        model, clock, system = build_system()
        target = dict(model.deployment)
        target["c1"] = "h2"
        stats = system.redeploy(target)
        assert stats["moves"] == 1
        assert system.actual_deployment() == target

    def test_state_travels_with_component(self):
        model, clock, system = build_system()
        component = system.component("c1")
        component.sent_count = 99
        component.received_count = 7
        target = dict(model.deployment)
        target["c1"] = "h2"
        system.redeploy(target)
        migrated = system.component("c1")
        assert migrated is not component  # reconstituted object
        assert migrated.sent_count == 99
        assert migrated.received_count == 7

    def test_move_to_master(self):
        model, clock, system = build_system()
        target = {c: "h0" for c in model.component_ids}
        system.redeploy(target)
        assert set(system.actual_deployment().values()) == {"h0"}

    def test_move_from_master(self):
        model, clock, system = build_system()
        target = {c: "h1" for c in model.component_ids}
        system.redeploy(target)
        assert set(system.actual_deployment().values()) == {"h1"}

    def test_migration_transfer_size_scales_with_component(self):
        model, clock, system = build_system()
        small_target = dict(model.deployment)
        small_target["c0"] = "h1"
        kb_small = system.redeploy(small_target)["kb_transferred"]
        # Make c1 huge and move it.
        system.component("c1").migration_size_kb = 500.0
        big_target = dict(system.actual_deployment())
        big_target["c1"] = "h2"
        kb_big = system.redeploy(big_target)["kb_transferred"]
        assert kb_big > kb_small + 400.0

    def test_location_tables_converge_after_move(self):
        model, clock, system = build_system()
        target = dict(model.deployment)
        target["c1"] = "h2"
        system.redeploy(target)
        clock.run(1.0)
        for host in model.host_ids:
            dist = system.architecture(host).distribution_connector
            assert dist.lookup("c1") == "h2"

    def test_deployer_view_tracks_moves(self):
        model, clock, system = build_system()
        target = dict(model.deployment)
        target["c0"] = "h2"
        system.redeploy(target)
        assert system.deployer.deployment_view["c0"] == "h2"
        assert system.deployer.redeployment_complete

    def test_admin_components_cannot_migrate(self):
        model, clock, system = build_system()
        admin = system.admin("h1")
        with pytest.raises(MigrationError):
            admin.migrate_out(admin_id("h1"), "h2")

    def test_mediated_transfer_between_unlinked_hosts(self):
        """§4.3: unconnected devices exchange components via the Deployer."""
        model = DeploymentModel()
        for host in ("hq", "a", "b"):
            model.add_host(host, memory=100.0)
        model.connect_hosts("hq", "a", reliability=1.0, bandwidth=100.0,
                            delay=0.01)
        model.connect_hosts("hq", "b", reliability=1.0, bandwidth=100.0,
                            delay=0.01)
        model.add_component("x", memory=10.0)
        model.deploy("x", "a")
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hq", seed=1)
        system.redeploy({"x": "b"})
        assert system.actual_deployment() == {"x": "b"}

    def test_traffic_during_migration_is_buffered_not_lost(self):
        """Events addressed to an in-flight component arrive after it lands."""
        model, clock, system = build_system()
        target = dict(model.deployment)
        target["c1"] = "h2"
        # Slow the c1 transfer down so there is a real in-flight window.
        system.component("c1").migration_size_kb = 200.0
        received_before = system.component("c1").received_count
        # Initiate the redeployment by hand so we can inject traffic
        # mid-flight.
        system.deployer.enact(target)
        clock.run(0.005)  # request is traveling; c1 now detached
        system.emit("c0", "c1", 1.0)  # c0 talks to the migrating c1
        clock.run(30.0)
        assert system.actual_deployment()["c1"] == "h2"
        assert system.component("c1").received_count >= received_before + 1


class TestMonitoringReports:
    def test_reports_flow_to_deployer(self):
        model, clock, system = build_system()
        system.install_monitoring(ping_interval=0.5, report_interval=2.0)
        clock.run(10.0)
        assert set(system.deployer.reports) == {"h1", "h2"}
        report = system.deployer.reports["h1"]
        assert "reliability" in report
        assert report["host"] == "h1"

    def test_on_report_callback(self):
        model, clock, system = build_system()
        seen = []
        system.deployer.on_report = lambda host, report: seen.append(host)
        system.install_monitoring(report_interval=2.0)
        clock.run(5.0)
        assert "h1" in seen and "h2" in seen

    def test_report_includes_configuration(self):
        model, clock, system = build_system()
        report = system.admin("h1").collect_report()
        assert "c1" in report["configuration"]["components"]

    def test_reports_update_deployer_view(self):
        model, clock, system = build_system()
        system.deployer.deployment_view.clear()
        system.install_monitoring(report_interval=2.0)
        clock.run(5.0)
        assert system.deployer.deployment_view.get("c1") == "h1"

    def test_uninstall_stops_reports(self):
        model, clock, system = build_system()
        system.install_monitoring(report_interval=2.0)
        clock.run(5.0)
        count = sum(a.reports_sent for a in system.admins.values())
        system.uninstall_monitoring()
        clock.run(10.0)
        assert sum(a.reports_sent for a in system.admins.values()) == count
