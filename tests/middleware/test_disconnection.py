"""Tests for disconnection-tolerant delivery (queuing of remote calls) and
migration safety under partitions — the §6 extensions plus failure
injection on the migration protocol."""

import pytest

from repro.core import DeploymentModel
from repro.core.errors import EffectorError, MigrationError
from repro.middleware import DistributedSystem
from repro.sim import DisconnectionProcess, InteractionWorkload, SimClock


def island_model(connected=True):
    model = DeploymentModel()
    model.add_host("h0", memory=100.0)
    model.add_host("h1", memory=100.0)
    model.connect_hosts("h0", "h1", reliability=1.0, bandwidth=100.0,
                        delay=0.01, connected=connected)
    model.add_component("a", memory=10.0)
    model.add_component("b", memory=10.0)
    model.connect_components("a", "b", frequency=2.0)
    model.deploy("a", "h0")
    model.deploy("b", "h1")
    return model


class TestOfflineQueuing:
    def test_events_survive_an_outage(self):
        model = island_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=1,
                                   queue_when_disconnected=True)
        system.network.set_connected("h0", "h1", False)
        for __ in range(5):
            system.emit("a", "b", 1.0)
        clock.run(1.0)
        dist = system.architecture("h0").distribution_connector
        assert len(dist.offline_queue) == 5
        assert system.component("b").received_count == 0
        # Link heals: the outbox flushes.
        system.network.set_connected("h0", "h1", True)
        clock.run(1.0)
        assert system.component("b").received_count == 5
        assert dist.offline_queue == []
        assert dist.offline_flushed == 5

    def test_without_queuing_events_are_lost(self):
        model = island_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=1)
        system.network.set_connected("h0", "h1", False)
        system.emit("a", "b", 1.0)
        clock.run(1.0)
        dist = system.architecture("h0").distribution_connector
        assert len(dist.undeliverable) == 1
        system.network.set_connected("h0", "h1", True)
        clock.run(1.0)
        assert system.component("b").received_count == 0

    def test_queue_limit_overflows_to_undeliverable(self):
        model = island_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=1,
                                   queue_when_disconnected=True)
        dist = system.architecture("h0").distribution_connector
        dist.offline_queue_limit = 3
        system.network.set_connected("h0", "h1", False)
        for __ in range(5):
            system.emit("a", "b", 1.0)
        clock.run(1.0)
        assert len(dist.offline_queue) == 3
        assert len(dist.undeliverable) == 2

    def test_queued_delivery_with_flapping_link(self):
        """Under exponential up/down cycling, queuing delivers (almost)
        everything that a drop-on-down link would lose."""
        model = island_model()
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=4,
                                   queue_when_disconnected=True)
        DisconnectionProcess(system.network, "h0", "h1", mean_uptime=3.0,
                             mean_downtime=3.0, seed=5).start()
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=6).start()
        clock.run(60.0)
        workload.stop()
        system.network.set_connected("h0", "h1", True)
        clock.run(2.0)
        sent = (system.component("a").sent_count
                + system.component("b").sent_count)
        received = (system.component("a").received_count
                    + system.component("b").received_count)
        assert sent > 50
        # Only messages caught mid-flight by a transition can be lost.
        assert received >= sent * 0.9


class TestMigrationSafetyUnderPartition:
    def test_component_never_detached_toward_unreachable_host(self):
        model = island_model(connected=False)
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="h0", seed=2)
        with pytest.raises(MigrationError, match="unreachable"):
            system.admin("h0").migrate_out("a", "h1")
        # The component is still attached and operational.
        assert system.architecture("h0").has_component("a")
        assert system.actual_deployment()["a"] == "h0"

    def test_redeploy_into_partition_fails_cleanly(self):
        model = island_model(connected=False)
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="h0", seed=2)
        with pytest.raises(EffectorError):
            system.redeploy({"a": "h1", "b": "h1"}, max_wait=5.0)
        # Nothing was lost: both components still exist somewhere.
        placement = system.actual_deployment()
        assert set(placement) == {"a", "b"}

    def test_request_for_unreachable_transfer_declined_silently(self):
        """A remote admin asked to ship a component to a now-unreachable
        host declines instead of crashing or detaching."""
        model = DeploymentModel()
        for host in ("hq", "a", "b"):
            model.add_host(host, memory=100.0)
        model.connect_hosts("hq", "a", bandwidth=100.0)
        model.connect_hosts("a", "b", bandwidth=100.0)
        model.add_component("x", memory=10.0)
        model.deploy("x", "b")
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="hq", seed=3)
        # Cut b off from everything except... nothing.
        system.network.set_connected("a", "b", False)
        with pytest.raises(EffectorError):
            system.redeploy({"x": "hq"}, max_wait=5.0)
        assert system.actual_deployment()["x"] == "b"  # alive where it was

    def test_migration_succeeds_after_heal(self):
        model = island_model(connected=False)
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="h0", seed=2)
        system.network.set_connected("h0", "h1", True)
        system.redeploy({"a": "h1", "b": "h1"})
        assert set(system.actual_deployment().values()) == {"h1"}
