"""Property-based tests for middleware routing and migration invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DeploymentModel
from repro.desi import Generator, GeneratorConfig
from repro.middleware import DistributedSystem
from repro.sim import SimClock


@st.composite
def deployed_systems(draw):
    """A DistributedSystem over a generated, fully-connected model."""
    hosts = draw(st.integers(2, 4))
    components = draw(st.integers(2, 6))
    seed = draw(st.integers(0, 5000))
    model = Generator(GeneratorConfig(
        hosts=hosts, components=components, physical_density=1.0,
        reliability=(1.0, 1.0)), seed=seed).generate()
    clock = SimClock()
    system = DistributedSystem(model, clock, seed=seed)
    return model, clock, system


@settings(max_examples=20, deadline=None)
@given(data=deployed_systems(), emissions=st.integers(1, 20))
def test_every_emission_delivered_exactly_once(data, emissions):
    """Over perfectly reliable links, N sends produce exactly N receipts —
    no duplication through connectors, relays, or forwarding."""
    model, clock, system, = data
    pairs = [(a, b) for a, b, __ in model.interaction_pairs()]
    if not pairs:
        return
    for index in range(emissions):
        source, target = pairs[index % len(pairs)]
        system.emit(source, target, 1.0)
    clock.run(10.0)
    sent = sum(system.component(c).sent_count
               for c in model.component_ids)
    received = sum(system.component(c).received_count
                   for c in model.component_ids)
    assert sent == emissions
    assert received == emissions
    dead = sum(len(a.dead_letters) for a in system.architectures.values())
    undeliverable = sum(
        len(a.distribution_connector.undeliverable)
        for a in system.architectures.values())
    assert dead == 0 and undeliverable == 0


@settings(max_examples=15, deadline=None)
@given(data=deployed_systems(), moves=st.integers(1, 6),
       target_picks=st.lists(st.integers(0, 100), min_size=6, max_size=6))
def test_migration_conserves_components(data, moves, target_picks):
    """Any sequence of redeployments preserves the component population —
    nothing duplicated, nothing lost — and ends exactly at the target."""
    model, clock, system = data
    component_ids = set(model.component_ids)
    hosts = model.host_ids
    target = dict(model.deployment)
    for index in range(min(moves, len(model.component_ids))):
        component = model.component_ids[index]
        target[component] = hosts[target_picks[index % 6] % len(hosts)]
    system.redeploy(target)
    placement = system.actual_deployment()
    assert set(placement) == component_ids
    assert placement == target


@settings(max_examples=15, deadline=None)
@given(data=deployed_systems())
def test_reports_reflect_actual_configuration(data):
    """Every admin's configuration report lists exactly the components on
    its host (meta components excluded)."""
    model, clock, system = data
    for host in model.host_ids:
        report = system.admin(host).collect_report()
        reported = {
            c for c in report["configuration"]["components"]
            if not c.startswith(("admin@", "agent@"))
        }
        actual = {c for c, h in system.actual_deployment().items()
                  if h == host}
        assert reported == actual
