"""Unit tests for the DistributionConnector: remote routing, relaying,
location tables, and migration buffering."""

import pytest

from repro.middleware.bricks import Architecture, CallbackComponent, Connector
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.middleware.scaffold import SimScaffold
from repro.sim import SimClock, SimulatedNetwork


def build_world(hosts=("h1", "h2"), links=(("h1", "h2"),),
                deployer_host=None, seed=1):
    """One architecture per host, one CallbackComponent per host named
    comp@<host>, fully wired location tables."""
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=seed)
    for host in hosts:
        network.add_endpoint(host)
    for a, b in links:
        network.add_link(a, b, reliability=1.0, bandwidth=1000.0, delay=0.01)
    world = {}
    locations = {}
    for host in hosts:
        architecture = Architecture(f"arch@{host}", SimScaffold(clock))
        bus = Connector(f"bus@{host}")
        architecture.add_connector(bus)
        dist = DistributionConnector(f"dist@{host}", network, host,
                                     deployer_host=deployer_host)
        architecture.add_connector(dist)
        component = CallbackComponent(f"comp@{host}")
        architecture.add_component(component)
        architecture.weld(component.id, bus.id)
        world[host] = (architecture, dist, component)
        locations[component.id] = host
    for host in hosts:
        world[host][1].update_locations(locations)
    return clock, network, world


class TestRemoteDelivery:
    def test_cross_host_event_arrives(self):
        clock, network, world = build_world()
        __, __, sender = world["h1"]
        __, __, receiver = world["h2"]
        sender.send(Event("app.msg", {"x": 1}, target="comp@h2"))
        clock.run(1.0)
        assert len(receiver.received) == 1
        assert receiver.received[0].payload == {"x": 1}

    def test_delivery_takes_transmission_time(self):
        clock, network, world = build_world()
        __, __, sender = world["h1"]
        __, __, receiver = world["h2"]
        sender.send(Event("app.msg", target="comp@h2", size_kb=10.0))
        clock.run(0.005)
        assert receiver.received == []  # still in flight (delay 0.01)
        clock.run(1.0)
        assert len(receiver.received) == 1

    def test_local_target_short_circuits(self):
        clock, network, world = build_world()
        architecture, dist, component = world["h1"]
        dist.handle(Event("app.msg", target="comp@h1"))
        clock.run(0.0)
        assert len(component.received) == 1
        assert dist.sent_remote == 0

    def test_unknown_location_without_deployer_undeliverable(self):
        clock, network, world = build_world()
        __, dist, sender = world["h1"]
        sender.send(Event("app.msg", target="mystery"))
        clock.run(1.0)
        assert len(dist.undeliverable) == 1

    def test_broadcast_through_distribution_rejected(self):
        clock, network, world = build_world()
        __, dist, __c = world["h1"]
        from repro.core.errors import MiddlewareError
        with pytest.raises(MiddlewareError):
            dist.handle(Event("app.msg"))  # no target


class TestRelaying:
    def test_relay_via_deployer_host(self):
        """h1 and h2 are not directly linked; hq relays."""
        clock, network, world = build_world(
            hosts=("hq", "h1", "h2"),
            links=(("hq", "h1"), ("hq", "h2")),
            deployer_host="hq")
        __, dist1, sender = world["h1"]
        __, dist_hq, __ = world["hq"]
        __, __, receiver = world["h2"]
        sender.send(Event("app.msg", target="comp@h2"))
        clock.run(1.0)
        assert len(receiver.received) == 1
        assert dist_hq.relayed == 1

    def test_no_relay_path_is_undeliverable(self):
        clock, network, world = build_world(
            hosts=("h1", "h2"), links=(), deployer_host=None)
        __, dist, sender = world["h1"]
        sender.send(Event("app.msg", target="comp@h2"))
        clock.run(1.0)
        assert len(dist.undeliverable) == 1

    def test_stale_location_forwarded_once(self):
        """Events sent to the old host are forwarded when it knows better."""
        clock, network, world = build_world(
            hosts=("h1", "h2", "h3"),
            links=(("h1", "h2"), ("h2", "h3"), ("h1", "h3")))
        __, dist1, sender = world["h1"]
        arch2, dist2, comp2 = world["h2"]
        arch3, dist3, __ = world["h3"]
        # comp@h2 "moved" to h3: h2 knows, h1 has a stale table.
        moved = arch2.remove_component("comp@h2")
        arch3.add_component(moved)
        dist2.set_location("comp@h2", "h3")
        dist3.set_location("comp@h2", "h3")
        sender.send(Event("app.msg", target="comp@h2"))
        clock.run(1.0)
        assert len(moved.received) == 1


class TestBuffering:
    def test_buffered_events_flushed_to_new_host(self):
        clock, network, world = build_world(
            hosts=("h1", "h2", "h3"),
            links=(("h1", "h2"), ("h2", "h3"), ("h1", "h3")))
        arch2, dist2, comp2 = world["h2"]
        arch3, dist3, __ = world["h3"]
        __, __, sender = world["h1"]
        # Begin migration: detach from h2, buffer there.
        migrant = arch2.remove_component("comp@h2")
        dist2.begin_buffering("comp@h2")
        sender.send(Event("app.msg", {"n": 1}, target="comp@h2"))
        clock.run(1.0)
        assert len(dist2.buffering["comp@h2"]) == 1
        # Reconstitute on h3 and flush.
        arch3.add_component(migrant)
        dist3.set_location("comp@h2", "h3")
        dist2.end_buffering("comp@h2", "h3")
        clock.run(1.0)
        assert len(migrant.received) == 1
        assert migrant.received[0].payload == {"n": 1}

    def test_locally_emitted_events_also_buffered(self):
        clock, network, world = build_world()
        arch1, dist1, comp1 = world["h1"]
        dist1.begin_buffering("comp@h2")
        comp1.send(Event("app.msg", target="comp@h2"))
        clock.run(1.0)
        assert len(dist1.buffering["comp@h2"]) == 1

    def test_end_buffering_updates_location(self):
        clock, network, world = build_world()
        __, dist1, __c = world["h1"]
        dist1.begin_buffering("x")
        dist1.end_buffering("x", "h2")
        assert dist1.locations["x"] == "h2"
        assert "x" not in dist1.buffering


class TestReliability:
    def test_app_events_subject_to_loss(self):
        clock, network, world = build_world(seed=3)
        network.link("h1", "h2").reliability = 0.5
        __, __, sender = world["h1"]
        __, __, receiver = world["h2"]
        for __i in range(200):
            sender.send(Event("app.msg", target="comp@h2"))
        clock.run(10.0)
        assert 60 < len(receiver.received) < 140  # ~50% of 200

    def test_admin_events_ride_reliable_transport(self):
        clock, network, world = build_world(seed=3)
        network.link("h1", "h2").reliability = 0.1
        arch2, dist2, __ = world["h2"]
        received = []
        admin_like = CallbackComponent(
            "adminish@h2", lambda comp, event: received.append(event))
        arch2.add_component(admin_like)
        for host in world:
            world[host][1].set_location("adminish@h2", "h2")
        __, __, sender = world["h1"]
        for __i in range(50):
            sender.send(Event("admin.probe", target="adminish@h2"))
        clock.run(10.0)
        assert len(received) == 50  # zero loss despite 0.1 reliability

    def test_down_link_blocks_even_admin_traffic(self):
        clock, network, world = build_world()
        network.set_connected("h1", "h2", False)
        __, dist1, sender = world["h1"]
        sender.send(Event("admin.probe", target="comp@h2"))
        clock.run(1.0)
        assert len(dist1.undeliverable) == 1
