"""Property tests for the connector reconnect path under link flapping.

The DistributionConnector's offline queue promises that events emitted
while the link is down are retried when it comes back ("A link came up:
retry everything waiting for connectivity").  These properties pin the
exactly-once contract of that path across arbitrary flap schedules: over
N down/up cycles, nothing is dropped and nothing is delivered twice.
"""

from hypothesis import given, settings, strategies as st

from repro.middleware.bricks import Architecture, CallbackComponent, Connector
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.middleware.scaffold import SimScaffold
from repro.sim import SimClock, SimulatedNetwork


def build_pair(queue_limit=1000):
    """h1 <-> h2, perfectly reliable link, offline-queueing connectors."""
    clock = SimClock()
    network = SimulatedNetwork(clock, seed=1)
    for host in ("h1", "h2"):
        network.add_endpoint(host)
    network.add_link("h1", "h2", reliability=1.0, bandwidth=1000.0,
                     delay=0.01)
    world = {}
    locations = {}
    for host in ("h1", "h2"):
        architecture = Architecture(f"arch@{host}", SimScaffold(clock))
        bus = Connector(f"bus@{host}")
        architecture.add_connector(bus)
        dist = DistributionConnector(f"dist@{host}", network, host,
                                     queue_when_disconnected=True,
                                     offline_queue_limit=queue_limit)
        architecture.add_connector(dist)
        component = CallbackComponent(f"comp@{host}")
        architecture.add_component(component)
        architecture.weld(component.id, bus.id)
        world[host] = (architecture, dist, component)
        locations[component.id] = host
    for host in ("h1", "h2"):
        world[host][1].update_locations(locations)
    return clock, network, world


@settings(max_examples=30, deadline=None)
@given(batches=st.lists(st.integers(1, 5), min_size=1, max_size=8))
def test_no_event_dropped_or_duplicated_across_flap_cycles(batches):
    """One flap cycle per batch: cut the link, emit the batch into the
    offline queue, bring the link up, drain.  Every event must arrive
    exactly once, in every cycle."""
    clock, network, world = build_pair()
    __, __, sender = world["h1"]
    __, __, receiver = world["h2"]
    sent = 0
    for batch in batches:
        network.set_connected("h1", "h2", False)
        for __ in range(batch):
            sent += 1
            sender.send(Event("app.msg", {"n": sent}, target="comp@h2",
                              size_kb=1.0))
        clock.run(0.5)  # let the scaffold route the sends into the queue
        assert len(receiver.received) < sent  # queued, not delivered
        network.set_connected("h1", "h2", True)
        clock.run(2.0)
        assert len(receiver.received) == sent  # flushed on link_up
    payloads = [event.payload["n"] for event in receiver.received]
    assert payloads == sorted(payloads)  # flush preserves order
    assert len(set(payloads)) == sent  # exactly once: no duplicates
    seqs = [event.headers.get("seq") for event in receiver.received]
    assert len(set(seqs)) == sent  # distinct wire sequence numbers too


@settings(max_examples=20, deadline=None)
@given(cycles=st.integers(1, 6), per_phase=st.integers(1, 4))
def test_mixed_up_and_down_emissions_all_arrive_exactly_once(cycles,
                                                             per_phase):
    """Alternating emissions while up (direct) and while down (queued)
    still produce exactly-once delivery overall."""
    clock, network, world = build_pair()
    __, __, sender = world["h1"]
    __, __, receiver = world["h2"]
    sent = 0
    for __ in range(cycles):
        for __ in range(per_phase):  # link up: direct sends
            sent += 1
            sender.send(Event("app.msg", {"n": sent}, target="comp@h2"))
        clock.run(1.0)  # drain in-flight before cutting the link
        network.set_connected("h1", "h2", False)
        for __ in range(per_phase):  # link down: queued sends
            sent += 1
            sender.send(Event("app.msg", {"n": sent}, target="comp@h2"))
        network.set_connected("h1", "h2", True)
        clock.run(1.0)
    payloads = [event.payload["n"] for event in receiver.received]
    assert sorted(payloads) == list(range(1, sent + 1))


def test_queue_overflow_spills_to_undeliverable_not_silence():
    """Beyond the offline-queue limit, events are accounted as
    undeliverable — never silently vanished."""
    clock, network, world = build_pair(queue_limit=3)
    __, dist, sender = world["h1"]
    __, __, receiver = world["h2"]
    network.set_connected("h1", "h2", False)
    for n in range(5):
        sender.send(Event("app.msg", {"n": n}, target="comp@h2"))
    clock.run(0.5)  # scaffold routes the sends into the queue
    assert len(dist.offline_queue) == 3
    assert len(dist.undeliverable) == 2
    network.set_connected("h1", "h2", True)
    clock.run(2.0)
    assert len(receiver.received) == 3
