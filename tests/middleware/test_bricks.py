"""Unit tests for Brick / Component / Connector / Architecture."""

import pytest

from repro.core.errors import (
    DuplicateEntityError, MiddlewareError, UnknownEntityError,
)
from repro.middleware.bricks import (
    Architecture, CallbackComponent, Component, Connector,
)
from repro.middleware.events import Event


def build_bus_architecture():
    architecture = Architecture("arch")
    bus = Connector("bus")
    architecture.add_connector(bus)
    members = {}
    for name in ("a", "b", "c"):
        component = CallbackComponent(name)
        architecture.add_component(component)
        architecture.weld(name, "bus")
        members[name] = component
    return architecture, bus, members


class TestConfiguration:
    def test_duplicate_brick_rejected(self):
        architecture = Architecture("arch")
        architecture.add_component(Component("x"))
        with pytest.raises(DuplicateEntityError):
            architecture.add_connector(Connector("x"))

    def test_weld_unknown_rejected(self):
        architecture = Architecture("arch")
        architecture.add_connector(Connector("bus"))
        with pytest.raises(UnknownEntityError):
            architecture.weld("ghost", "bus")

    def test_double_weld_rejected(self):
        architecture, __, __members = build_bus_architecture()
        with pytest.raises(DuplicateEntityError):
            architecture.weld("a", "bus")

    def test_remove_component_unwelds(self):
        architecture, bus, __ = build_bus_architecture()
        removed = architecture.remove_component("a")
        assert removed.id == "a"
        assert "a" not in bus.welded
        assert not architecture.has_component("a")
        assert removed.architecture is None

    def test_remove_connector(self):
        architecture, __, __members = build_bus_architecture()
        architecture.remove_connector("bus")
        with pytest.raises(UnknownEntityError):
            architecture.connector("bus")

    def test_empty_id_rejected(self):
        with pytest.raises(MiddlewareError):
            Component("")

    def test_describe(self):
        architecture, __, __members = build_bus_architecture()
        description = architecture.describe()
        assert description["components"] == ["a", "b", "c"]
        assert ("a", "bus") in description["welds"]


class TestRouting:
    def test_broadcast_excludes_sender(self):
        architecture, __, members = build_bus_architecture()
        members["a"].send(Event("app.msg"))
        assert len(members["b"].received) == 1
        assert len(members["c"].received) == 1
        assert len(members["a"].received) == 0

    def test_targeted_delivery(self):
        architecture, __, members = build_bus_architecture()
        members["a"].send(Event("app.msg", target="c"))
        assert len(members["c"].received) == 1
        assert len(members["b"].received) == 0

    def test_source_stamped_automatically(self):
        architecture, __, members = build_bus_architecture()
        members["a"].send(Event("app.msg", target="b"))
        assert members["b"].received[0].source == "a"

    def test_unroutable_goes_to_dead_letters(self):
        architecture, __, members = build_bus_architecture()
        members["a"].send(Event("app.msg", target="nowhere"))
        assert len(architecture.dead_letters) == 1

    def test_unwelded_component_cannot_reach_bus_but_can_route_direct(self):
        architecture, __, members = build_bus_architecture()
        loner = CallbackComponent("loner")
        architecture.add_component(loner)  # not welded
        loner.send(Event("app.msg", target="b"))
        assert len(members["b"].received) == 1  # architecture-level routing

    def test_send_outside_architecture_rejected(self):
        with pytest.raises(MiddlewareError):
            Component("orphan").send(Event("app.msg"))

    def test_two_connectors_both_deliver(self):
        architecture = Architecture("arch")
        architecture.add_connector(Connector("bus1"))
        architecture.add_connector(Connector("bus2"))
        sender = CallbackComponent("s")
        left = CallbackComponent("left")
        right = CallbackComponent("right")
        for component in (sender, left, right):
            architecture.add_component(component)
        architecture.weld("s", "bus1")
        architecture.weld("s", "bus2")
        architecture.weld("left", "bus1")
        architecture.weld("right", "bus2")
        sender.send(Event("app.msg"))
        assert len(left.received) == 1
        assert len(right.received) == 1


class TestMonitHooks:
    def test_monitors_notified_on_send_and_deliver(self):
        architecture, __, members = build_bus_architecture()
        seen = []

        class Probe:
            def notify(self, brick, event, direction):
                seen.append((brick.id, direction))

        members["a"].attach_monitor(Probe())
        members["b"].attach_monitor(Probe())
        members["a"].send(Event("app.msg", target="b"))
        assert ("a", "send") in seen
        assert ("b", "deliver") in seen

    def test_detach_monitor(self):
        architecture, __, members = build_bus_architecture()
        seen = []

        class Probe:
            def notify(self, brick, event, direction):
                seen.append(direction)

        probe = Probe()
        members["a"].attach_monitor(probe)
        members["a"].detach_monitor(probe)
        members["a"].send(Event("app.msg", target="b"))
        assert seen == []
