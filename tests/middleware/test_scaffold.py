"""Unit tests for the three scaffold (dispatch) policies."""

import threading
import time

import pytest

from repro.middleware.bricks import Architecture, CallbackComponent, Connector
from repro.middleware.events import Event
from repro.middleware.scaffold import (
    ImmediateScaffold, SimScaffold, ThreadPoolScaffold,
)
from repro.sim import SimClock


def build(scaffold):
    architecture = Architecture("arch", scaffold)
    bus = Connector("bus")
    architecture.add_connector(bus)
    a = CallbackComponent("a")
    b = CallbackComponent("b")
    architecture.add_component(a)
    architecture.add_component(b)
    architecture.weld("a", "bus")
    architecture.weld("b", "bus")
    return architecture, a, b


class TestImmediateScaffold:
    def test_synchronous_delivery(self):
        __, a, b = build(ImmediateScaffold())
        a.send(Event("app.msg", target="b"))
        assert len(b.received) == 1  # delivered before send returned


class TestSimScaffold:
    def test_decoupled_until_clock_steps(self):
        clock = SimClock()
        __, a, b = build(SimScaffold(clock))
        a.send(Event("app.msg", target="b"))
        assert b.received == []  # queued, not yet delivered
        clock.run(0.0)
        assert len(b.received) == 1

    def test_dispatch_order_preserved(self):
        clock = SimClock()
        __, a, b = build(SimScaffold(clock))
        for index in range(5):
            a.send(Event("app.msg", {"n": index}, target="b"))
        clock.run(0.0)
        assert [event.payload["n"] for event in b.received] == list(range(5))

    def test_drain(self):
        clock = SimClock()
        architecture, a, b = build(SimScaffold(clock))
        a.send(Event("app.msg", target="b"))
        architecture.scaffold.drain()
        assert len(b.received) == 1

    def test_counts_dispatches(self):
        clock = SimClock()
        scaffold = SimScaffold(clock)
        __, a, b = build(scaffold)
        a.send(Event("app.msg", target="b"))
        assert scaffold.dispatched >= 1


class TestThreadPoolScaffold:
    def test_delivers_on_worker_threads(self):
        scaffold = ThreadPoolScaffold(workers=2)
        try:
            __, a, b = build(scaffold)
            main_thread = threading.current_thread().name
            delivery_threads = []
            b.on_event = lambda comp, event: delivery_threads.append(
                threading.current_thread().name)
            for __i in range(10):
                a.send(Event("app.msg", target="b"))
            scaffold.drain()
            assert len(b.received) == 10
            assert all(name != main_thread for name in delivery_threads)
        finally:
            scaffold.shutdown()

    def test_per_brick_serialization(self):
        """Concurrent dispatches to one brick never overlap (per-brick lock)."""
        scaffold = ThreadPoolScaffold(workers=4)
        try:
            __, a, b = build(scaffold)
            inside = []
            overlaps = []

            def slow_handler(comp, event):
                if inside:
                    overlaps.append(True)
                inside.append(1)
                time.sleep(0.002)
                inside.pop()

            b.on_event = slow_handler
            for __i in range(20):
                a.send(Event("app.msg", target="b"))
            scaffold.drain()
            assert overlaps == []
            assert len(b.received) == 20
        finally:
            scaffold.shutdown()

    def test_shutdown_rejects_new_work(self):
        scaffold = ThreadPoolScaffold(workers=1)
        __, a, b = build(scaffold)
        scaffold.shutdown()
        with pytest.raises(RuntimeError):
            scaffold.dispatch(b, Event("app.msg"))

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ThreadPoolScaffold(workers=0)
