"""Unit tests for middleware events and wire format."""

import pytest

from repro.core.errors import SerializationError
from repro.middleware.events import (
    ADMIN_PREFIX, EVENT_OVERHEAD_KB, REPLY, REQUEST, Event,
)


class TestEventBasics:
    def test_defaults(self):
        event = Event("app.msg")
        assert event.event_type == REQUEST
        assert event.payload == {}
        assert event.target is None
        assert not event.is_admin

    def test_admin_prefix_detection(self):
        assert Event("admin.location_update").is_admin
        assert not Event("application.admin").is_admin

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            Event("x", event_type="notify")

    def test_unique_ids(self):
        assert Event("a").event_id != Event("a").event_id

    def test_reply_targets_source(self):
        request = Event("app.query", source="client", target="server")
        reply = request.reply(payload={"answer": 42})
        assert reply.event_type == REPLY
        assert reply.target == "client"
        assert reply.payload == {"answer": 42}

    def test_copy_is_deep_for_payload_and_headers(self):
        event = Event("app.msg", {"k": 1})
        event.headers["hop"] = "h1"
        clone = event.copy()
        clone.payload["k"] = 2
        clone.headers["hop"] = "h2"
        assert event.payload["k"] == 1
        assert event.headers["hop"] == "h1"


class TestSize:
    def test_explicit_size_wins(self):
        event = Event("app.msg", {"data": "x" * 10_000}, size_kb=2.5)
        assert event.size_kb == 2.5

    def test_estimated_size_grows_with_payload(self):
        small = Event("app.msg", {"data": "x"})
        large = Event("app.msg", {"data": "x" * 4096})
        assert large.size_kb > small.size_kb > EVENT_OVERHEAD_KB

    def test_size_setter(self):
        event = Event("app.msg")
        event.size_kb = 7.0
        assert event.size_kb == 7.0


class TestWireFormat:
    def test_roundtrip_preserves_everything(self):
        event = Event("app.msg", {"a": [1, 2], "b": "text"},
                      event_type=REPLY, source="s", target="t", size_kb=3.0)
        event.headers["origin_host"] = "h1"
        clone = Event.from_wire(event.to_wire())
        assert clone.name == "app.msg"
        assert clone.payload == {"a": [1, 2], "b": "text"}
        assert clone.event_type == REPLY
        assert clone.source == "s"
        assert clone.target == "t"
        assert clone.size_kb == 3.0
        assert clone.headers["origin_host"] == "h1"

    def test_non_json_payload_rejected(self):
        event = Event("app.msg", {"bad": object()})
        with pytest.raises(SerializationError, match="JSON"):
            event.to_wire()

    def test_malformed_wire_rejected(self):
        with pytest.raises(SerializationError):
            Event.from_wire({"payload": {}})  # missing name

    def test_wire_is_plain_data(self):
        import json
        wire = Event("app.msg", {"n": 1}, target="t").to_wire()
        json.dumps(wire)  # must not raise
