"""Tests for caching/hoarding of data (§6) — stale reads during partitions."""

import pytest

from repro.core import DeploymentModel
from repro.middleware import CallbackComponent, DistributedSystem, Event
from repro.middleware.caching import (
    REPLY_EVENT, REQUEST_EVENT, CachedReplyService, DataProviderComponent,
    install_reply_caches,
)
from repro.sim import SimClock


def build_world():
    """client host <-> data host; a querying client and a data provider."""
    model = DeploymentModel()
    model.add_host("clienthost", memory=100.0)
    model.add_host("datahost", memory=100.0)
    model.connect_hosts("clienthost", "datahost", reliability=1.0,
                        bandwidth=100.0, delay=0.01)
    model.add_component("client", memory=5.0)
    model.add_component("provider", memory=5.0)
    model.connect_components("client", "provider", frequency=1.0)
    model.deploy("client", "clienthost")
    model.deploy("provider", "datahost")
    clock = SimClock()

    def factory(component_id):
        if component_id == "provider":
            provider = DataProviderComponent(component_id)
            provider.put("map", {"tiles": 42})
            return provider
        return CallbackComponent(component_id)

    system = DistributedSystem(model, clock, component_factory=factory,
                               seed=1)
    caches = install_reply_caches(system)
    client = system.component("client")
    return model, clock, system, caches, client


def ask(system, clock, client, key="map"):
    client.send(Event(REQUEST_EVENT, {"key": key}, source="client",
                      target="provider"))
    clock.run(1.0)


class TestLiveOperation:
    def test_request_reply_roundtrip(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)
        replies = [e for e in client.received if e.name == REPLY_EVENT]
        assert len(replies) == 1
        assert replies[0].payload["data"] == {"tiles": 42}
        assert replies[0].payload["stale"] is False

    def test_replies_are_hoarded_on_the_client_side(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)
        assert "map" in caches["clienthost"].hoarded_keys()

    def test_stale_copies_never_hoarded(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)
        system.network.set_connected("clienthost", "datahost", False)
        ask(system, clock, client)  # served stale from hoard
        # The hoard still contains exactly the one fresh entry.
        entry = caches["clienthost"]._hoard["map"]
        assert entry["stale"] is False


class TestDisconnectedOperation:
    def test_cached_reply_served_during_partition(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)  # warm the hoard
        system.network.set_connected("clienthost", "datahost", False)
        ask(system, clock, client)
        replies = [e for e in client.received if e.name == REPLY_EVENT]
        assert len(replies) == 2
        assert replies[1].payload["data"] == {"tiles": 42}
        assert replies[1].payload["stale"] is True
        assert caches["clienthost"].hits == 1

    def test_cold_cache_miss_fails_normally(self):
        model, clock, system, caches, client = build_world()
        system.network.set_connected("clienthost", "datahost", False)
        ask(system, clock, client)  # nothing hoarded yet
        replies = [e for e in client.received if e.name == REPLY_EVENT]
        assert replies == []
        assert caches["clienthost"].misses == 1
        dist = system.architecture("clienthost").distribution_connector
        assert len(dist.undeliverable) == 1

    def test_non_request_traffic_unaffected_by_cache(self):
        model, clock, system, caches, client = build_world()
        system.network.set_connected("clienthost", "datahost", False)
        client.send(Event("app.msg", {"x": 1}, source="client",
                          target="provider"))
        clock.run(1.0)
        dist = system.architecture("clienthost").distribution_connector
        assert len(dist.undeliverable) == 1  # dropped, not cache-served

    def test_fresh_data_resumes_after_heal(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)
        system.network.set_connected("clienthost", "datahost", False)
        ask(system, clock, client)
        system.network.set_connected("clienthost", "datahost", True)
        # Provider updates its data; the next read is fresh.
        system.component("provider").put("map", {"tiles": 99})
        ask(system, clock, client)
        replies = [e for e in client.received if e.name == REPLY_EVENT]
        assert replies[-1].payload["data"] == {"tiles": 99}
        assert replies[-1].payload["stale"] is False

    def test_lru_eviction(self):
        model, clock, system, caches, client = build_world()
        provider = system.component("provider")
        cache = caches["clienthost"]
        cache.max_entries = 3
        for index in range(5):
            provider.put(f"k{index}", index)
            ask(system, clock, client, key=f"k{index}")
        assert len(cache.hoarded_keys()) == 3
        assert cache.hoarded_keys() == ("k2", "k3", "k4")


class TestProviderMigration:
    def test_provider_data_survives_migration(self):
        model, clock, system, caches, client = build_world()
        ask(system, clock, client)
        system.redeploy({"client": "clienthost", "provider": "clienthost"})
        ask(system, clock, client)
        replies = [e for e in client.received if e.name == REPLY_EVENT]
        assert replies[-1].payload["data"] == {"tiles": 42}
        assert replies[-1].payload["stale"] is False
