"""Unit tests for component serialization (migration wire format)."""

import pytest

from repro.core.errors import SerializationError
from repro.middleware.bricks import Component
from repro.middleware.serialization import (
    deserialize_component, is_registered, register_component_class,
    serialize_component,
)


@register_component_class
class StatefulThing(Component):
    def __init__(self, component_id):
        super().__init__(component_id)
        self.counter = 0
        self.notes = []

    def get_state(self):
        return {"counter": self.counter, "notes": self.notes}

    def set_state(self, state):
        self.counter = state.get("counter", 0)
        self.notes = state.get("notes", [])


class Unregistered(Component):
    pass


class TestRegistry:
    def test_registered_class_flagged(self):
        assert is_registered(StatefulThing)
        assert not is_registered(Unregistered)

    def test_conflicting_name_rejected(self):
        class Impostor(Component):
            pass
        with pytest.raises(SerializationError, match="already registered"):
            register_component_class(Impostor, name="StatefulThing")

    def test_custom_name(self):
        class Custom(Component):
            pass
        register_component_class(Custom, name="custom-v1-test")
        wire = serialize_component(Custom("x"))
        assert wire["class"] == "custom-v1-test"


class TestRoundTrip:
    def test_state_survives(self):
        original = StatefulThing("c1")
        original.counter = 42
        original.notes = ["a", "b"]
        original.migration_size_kb = 12.5
        clone = deserialize_component(serialize_component(original))
        assert isinstance(clone, StatefulThing)
        assert clone.id == "c1"
        assert clone.counter == 42
        assert clone.notes == ["a", "b"]
        assert clone.migration_size_kb == 12.5

    def test_clone_is_independent(self):
        original = StatefulThing("c1")
        original.notes = ["shared?"]
        wire = serialize_component(original)
        clone = deserialize_component(wire)
        clone.notes.append("no")
        assert original.notes == ["shared?"]

    def test_stateless_component_roundtrips(self):
        @register_component_class
        class Plain(Component):
            pass
        clone = deserialize_component(serialize_component(Plain("p")))
        assert clone.id == "p"


class TestErrors:
    def test_unregistered_class_rejected(self):
        with pytest.raises(SerializationError, match="not registered"):
            serialize_component(Unregistered("u"))

    def test_non_json_state_rejected(self):
        @register_component_class
        class BadState(Component):
            def get_state(self):
                return {"obj": object()}
        with pytest.raises(SerializationError, match="JSON"):
            serialize_component(BadState("b"))

    def test_unknown_class_on_deserialize(self):
        with pytest.raises(SerializationError, match="no component class"):
            deserialize_component({"class": "NeverHeardOfIt", "id": "x",
                                   "state": {}})

    def test_broken_set_state_wrapped(self):
        @register_component_class
        class Fragile(Component):
            def set_state(self, state):
                raise RuntimeError("boom")
        wire = serialize_component(Fragile("f"))
        with pytest.raises(SerializationError, match="reconstitute"):
            deserialize_component(wire)
