"""Unit tests for EvtFrequencyMonitor and NetworkReliabilityMonitor."""

import pytest

from repro.middleware.bricks import Architecture, CallbackComponent, Connector
from repro.middleware.connectors import DistributionConnector
from repro.middleware.events import Event
from repro.middleware.monitors import (
    EvtFrequencyMonitor, NetworkReliabilityMonitor,
)
from repro.middleware.scaffold import SimScaffold
from repro.sim import SimClock, SimulatedNetwork


class TestEvtFrequencyMonitor:
    def _setup(self):
        clock = SimClock()
        architecture = Architecture("arch", SimScaffold(clock))
        bus = Connector("bus")
        architecture.add_connector(bus)
        a = CallbackComponent("a")
        b = CallbackComponent("b")
        architecture.add_component(a)
        architecture.add_component(b)
        architecture.weld("a", "bus")
        architecture.weld("b", "bus")
        monitor = EvtFrequencyMonitor(clock)
        a.attach_monitor(monitor)
        b.attach_monitor(monitor)
        return clock, a, b, monitor

    def test_counts_sends_per_pair(self):
        clock, a, b, monitor = self._setup()
        for __ in range(3):
            a.send(Event("app.msg", target="b"))
        clock.run(0.0)
        assert monitor.counts[("a", "b")] == 3

    def test_does_not_double_count_delivery(self):
        clock, a, b, monitor = self._setup()
        a.send(Event("app.msg", target="b"))
        clock.run(0.0)
        assert monitor.total_events == 1

    def test_ignores_admin_traffic(self):
        clock, a, b, monitor = self._setup()
        a.send(Event("admin.report", target="b"))
        clock.run(0.0)
        assert monitor.total_events == 0

    def test_ignores_untargeted_events(self):
        clock, a, b, monitor = self._setup()
        a.send(Event("app.msg"))  # broadcast
        clock.run(0.0)
        assert monitor.total_events == 0

    def test_frequencies_per_simulated_second(self):
        clock, a, b, monitor = self._setup()
        for __ in range(8):
            a.send(Event("app.msg", target="b"))
        clock.run(0.0)
        clock.advance(4.0)
        data = monitor.collect()
        assert data["frequencies"][("a", "b")] == pytest.approx(2.0)

    def test_average_sizes(self):
        clock, a, b, monitor = self._setup()
        a.send(Event("app.msg", target="b", size_kb=2.0))
        a.send(Event("app.msg", target="b", size_kb=4.0))
        clock.run(0.0)
        data = monitor.collect()
        assert data["avg_sizes"][("a", "b")] == pytest.approx(3.0)

    def test_reset_starts_new_window(self):
        clock, a, b, monitor = self._setup()
        a.send(Event("app.msg", target="b"))
        clock.run(0.0)
        clock.advance(1.0)
        monitor.reset()
        assert monitor.counts == {}
        assert monitor.window_started == clock.now


class TestNetworkReliabilityMonitor:
    def _setup(self, reliability=0.7, seed=2):
        clock = SimClock()
        network = SimulatedNetwork(clock, seed=seed)
        network.add_endpoint("h1")
        network.add_endpoint("h2")
        network.add_link("h1", "h2", reliability=reliability)
        architecture = Architecture("arch@h1", SimScaffold(clock))
        dist = DistributionConnector("dist@h1", network, "h1")
        architecture.add_connector(dist)
        monitor = NetworkReliabilityMonitor(dist, clock, interval=1.0,
                                            pings_per_round=20)
        return clock, network, dist, monitor

    def test_estimate_converges_to_truth(self):
        clock, network, dist, monitor = self._setup(reliability=0.7)
        monitor.start()
        clock.run(50.0)  # 50 rounds x 20 pings
        estimate = monitor.collect()["reliabilities"]["h2"]
        assert estimate == pytest.approx(0.7, abs=0.05)

    def test_down_link_measures_zero(self):
        clock, network, dist, monitor = self._setup()
        network.set_connected("h1", "h2", False)
        monitor.start()
        clock.run(5.0)
        assert monitor.collect()["reliabilities"]["h2"] == 0.0

    def test_stop_halts_probing(self):
        clock, network, dist, monitor = self._setup()
        monitor.start()
        clock.run(3.0)
        rounds = monitor.rounds
        monitor.stop()
        clock.run(5.0)
        assert monitor.rounds == rounds

    def test_passive_piggyback_infers_losses_from_sequence_gaps(self):
        clock, network, dist, monitor = self._setup()

        def arrival(seq):
            event = Event("app.msg", target="x")
            event.headers.update({"seq": seq, "seq_link": "h2",
                                  "arrived_from": "h2"})
            monitor.notify(dist, event, "deliver")

        arrival(1)   # first observation: no interval information yet
        arrival(2)   # gap 1: one attempt, one success
        arrival(5)   # gap 3: two losses inferred + this success
        data = monitor.collect()
        assert monitor.attempts["h2"] == 4
        assert monitor.successes["h2"] == 2
        assert data["reliabilities"]["h2"] == pytest.approx(0.5)

    def test_piggyback_ignores_relayed_and_admin_traffic(self):
        clock, network, dist, monitor = self._setup()
        relayed = Event("app.msg", target="x")
        relayed.headers.update({"seq": 1, "seq_link": "h9",
                                "arrived_from": "h2"})
        monitor.notify(dist, relayed, "deliver")
        admin = Event("admin.probe", target="x")
        admin.headers.update({"seq": 1, "seq_link": "h2",
                              "arrived_from": "h2"})
        monitor.notify(dist, admin, "deliver")
        assert monitor.attempts == {}

    def test_piggyback_end_to_end_matches_link_truth(self):
        """Live system: passive estimates converge near the real loss rate
        without a single active ping."""
        from repro.core import DeploymentModel
        from repro.middleware import DistributedSystem
        from repro.sim import InteractionWorkload
        model = DeploymentModel()
        model.add_host("h0", memory=100.0)
        model.add_host("h1", memory=100.0)
        model.connect_hosts("h0", "h1", reliability=0.6, bandwidth=500.0)
        model.add_component("a", memory=1.0)
        model.add_component("b", memory=1.0)
        model.connect_components("a", "b", frequency=20.0)
        model.deploy("a", "h0")
        model.deploy("b", "h1")
        clock = SimClock()
        system = DistributedSystem(model, clock, seed=9)
        dist = system.architecture("h1").distribution_connector
        passive = NetworkReliabilityMonitor(dist, clock, interval=1000.0,
                                            pings_per_round=1)
        dist.attach_monitor(passive)  # never started: zero pings
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=10).start()
        clock.run(60.0)
        workload.stop()
        estimate = passive.collect()["reliabilities"]["h0"]
        assert estimate == pytest.approx(0.6, abs=0.1)

    def test_reset_clears_window(self):
        clock, network, dist, monitor = self._setup()
        monitor.probe()
        monitor.reset()
        assert monitor.collect()["reliabilities"] == {}

    def test_parameter_validation(self):
        clock, network, dist, __ = self._setup()
        with pytest.raises(ValueError):
            NetworkReliabilityMonitor(dist, clock, interval=0.0)
        with pytest.raises(ValueError):
            NetworkReliabilityMonitor(dist, clock, pings_per_round=0)
