"""The common Report API: every framework report speaks the protocol."""

import json

import pytest

from repro.algorithms.base import AlgorithmResult
from repro.algorithms.engine import PortfolioReport
from repro.core.analyzer import Decision
from repro.core.effector import EffectReport, RedeploymentPlan
from repro.core.framework import CycleReport
from repro.core.model import Deployment
from repro.core.report import Report, ReportBase, json_safe
from repro.decentralized.agent import RoundReport
from repro.desi.batch import ExperimentReport
from repro.faults.report import ResilienceReport
from repro.lint.core import LintReport


def make_result():
    return AlgorithmResult(
        algorithm="avala", deployment=Deployment({"c": "h"}), value=0.9,
        objective="availability", valid=True, elapsed=0.01, evaluations=5,
        moves_from_initial=1)


def make_plan():
    return RedeploymentPlan(current=Deployment({"c": "h"}),
                            target=Deployment({"c": "g"}),
                            moves=(), estimated_kb=1.0, estimated_time=0.1)


def make_effect():
    return EffectReport(plan=make_plan(), succeeded=True, moves_executed=1,
                        sim_duration=0.2, kb_transferred=1.0)


def make_reports():
    """One instance of each of the seven retrofitted report classes."""
    result = make_result()
    decision = Decision(action="redeploy", reason="improvement",
                        current_value=0.5, selected=result)
    return [
        CycleReport(time=2.0, monitoring_updates=3, decision=decision,
                    effect=make_effect()),
        make_effect(),
        result,
        PortfolioReport(),
        ExperimentReport("availability"),
        LintReport(),
        ResilienceReport(
            plan_name="p", scenario="crisis", seed=0, duration=10.0,
            improvement_loop=True, events_sent=10, events_received=9,
            emissions_skipped=0, delivered_availability=0.9,
            modeled_availability=0.95, faults_injected=2,
            faults_by_kind={"partition": 2}, outages=1,
            mean_outage_duration=1.0, migrations_attempted=1,
            migrations_succeeded=1, migration_success_rate=1.0,
            effector_retries=0, rollbacks=0, retransmissions=0,
            restores=0, mean_recovery_time=0.2),
        RoundReport(index=0, time=1.0, facts_synced=2, decision="go",
                    auctions=1, moves=2, availability_before=0.8,
                    availability_after=0.9),
    ]


class TestProtocolConformance:
    @pytest.mark.parametrize("report", make_reports(),
                             ids=lambda r: type(r).__name__)
    def test_isinstance_of_report_protocol(self, report):
        assert isinstance(report, Report)
        assert isinstance(report, ReportBase)

    @pytest.mark.parametrize("report", make_reports(),
                             ids=lambda r: type(r).__name__)
    def test_four_methods_produce_sane_output(self, report):
        payload = report.to_dict()
        assert isinstance(payload, dict) and payload
        parsed = json.loads(report.to_json())
        assert isinstance(parsed, dict)
        assert isinstance(report.render(), str)
        line = report.summary_line()
        assert isinstance(line, str)
        assert "\n" not in line

    def test_to_json_is_canonical(self):
        report = make_result()
        first = report.to_json()
        assert first == report.to_json()
        assert json.loads(first) == json_safe(report.to_dict())


class TestDeprecatedAliases:
    def test_summary_aliases_warn_and_forward(self):
        for report in make_reports():
            old = getattr(report, "summary", None)
            if old is None:
                continue
            with pytest.warns(DeprecationWarning, match="deprecated"):
                assert old() == report.summary_line()

    def test_resilience_as_dict_alias(self):
        report = [r for r in make_reports()
                  if isinstance(r, ResilienceReport)][0]
        with pytest.warns(DeprecationWarning):
            assert report.as_dict() == report.to_dict()


class TestJsonSafe:
    def test_mappings_sequences_sets_and_objects(self):
        class WithToDict:
            def to_dict(self):
                return {"x": (1, 2)}

        value = {"deployment": Deployment({"c": "h"}),
                 "seq": [1, {2, 3}],
                 "obj": WithToDict(),
                 "other": object()}
        safe = json_safe(value)
        assert safe["deployment"] == {"c": "h"}
        assert safe["seq"] == [1, [2, 3]]
        assert safe["obj"] == {"x": [1, 2]}
        assert isinstance(safe["other"], str)
        json.dumps(safe)  # fully serializable
