"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import AvailabilityObjective, DeploymentModel
from repro.core.model import Deployment
from repro.core.monitoring import StabilityDetector
from repro.core.objectives import (
    CommunicationCostObjective, LatencyObjective,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def random_models(draw, max_hosts=5, max_components=8):
    """A random deployment model with full physical connectivity and a
    random complete deployment."""
    n_hosts = draw(st.integers(1, max_hosts))
    n_components = draw(st.integers(1, max_components))
    model = DeploymentModel(name="hyp")
    hosts = [f"h{i}" for i in range(n_hosts)]
    components = [f"c{i}" for i in range(n_components)]
    for host in hosts:
        model.add_host(host, memory=draw(st.floats(10.0, 500.0)))
    for component in components:
        model.add_component(component, memory=draw(st.floats(0.0, 10.0)))
    for i in range(n_hosts):
        for j in range(i + 1, n_hosts):
            if draw(st.booleans()):
                model.connect_hosts(
                    hosts[i], hosts[j],
                    reliability=draw(st.floats(0.0, 1.0)),
                    bandwidth=draw(st.floats(1.0, 1000.0)),
                    delay=draw(st.floats(0.0, 0.5)))
    for i in range(n_components):
        for j in range(i + 1, n_components):
            if draw(st.booleans()):
                model.connect_components(
                    components[i], components[j],
                    frequency=draw(st.floats(0.0, 20.0)),
                    evt_size=draw(st.floats(0.0, 10.0)))
    for component in components:
        model.deploy(component, draw(st.sampled_from(hosts)))
    return model


deployment_maps = st.dictionaries(
    st.sampled_from([f"c{i}" for i in range(6)]),
    st.sampled_from([f"h{i}" for i in range(4)]),
    min_size=1, max_size=6)


# ---------------------------------------------------------------------------
# Deployment value semantics
# ---------------------------------------------------------------------------

@given(deployment_maps)
def test_deployment_equals_its_dict(mapping):
    deployment = Deployment(mapping)
    assert dict(deployment) == mapping
    assert deployment == Deployment(mapping)
    assert hash(deployment) == hash(Deployment(dict(mapping)))


@given(deployment_maps, st.sampled_from([f"h{i}" for i in range(4)]))
def test_moved_changes_exactly_one_entry(mapping, new_host):
    deployment = Deployment(mapping)
    component = sorted(mapping)[0]
    moved = deployment.moved(component, new_host)
    assert moved[component] == new_host
    for other in mapping:
        if other != component:
            assert moved[other] == mapping[other]


@given(deployment_maps, deployment_maps)
def test_diff_applied_reaches_target(before_map, after_map):
    """Applying diff moves to `before` matches `after` on shared keys."""
    before = Deployment(before_map)
    after = Deployment(after_map)
    patched = dict(before_map)
    for move in before.diff(after):
        assert patched[move.component] == move.source
        patched[move.component] = move.target
    for component in set(before_map) & set(after_map):
        assert patched[component] == after_map[component]


@given(deployment_maps)
def test_diff_with_self_is_empty(mapping):
    deployment = Deployment(mapping)
    assert deployment.diff(deployment) == ()


# ---------------------------------------------------------------------------
# Objective invariants
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(random_models())
def test_availability_bounded(model):
    value = AvailabilityObjective().evaluate(model, model.deployment)
    assert 0.0 <= value <= 1.0 + 1e-12


@settings(max_examples=40, deadline=None)
@given(random_models())
def test_full_collocation_dominates(model):
    """Putting everything on one host yields availability 1 and zero
    communication cost — the global upper/lower bounds."""
    host = model.host_ids[0]
    together = {c: host for c in model.component_ids}
    assert AvailabilityObjective().evaluate(model, together) == 1.0
    assert CommunicationCostObjective().evaluate(model, together) == 0.0


@settings(max_examples=30, deadline=None)
@given(random_models(), st.integers(0, 100), st.integers(0, 100))
def test_move_delta_consistency(model, comp_pick, host_pick):
    """For every objective, move_delta == full recompute difference."""
    components = model.component_ids
    hosts = model.host_ids
    component = components[comp_pick % len(components)]
    host = hosts[host_pick % len(hosts)]
    deployment = dict(model.deployment)
    for objective in (AvailabilityObjective(), LatencyObjective(),
                      CommunicationCostObjective()):
        base = objective.evaluate(model, deployment)
        delta = objective.move_delta(model, deployment, component, host)
        moved = dict(deployment)
        moved[component] = host
        expected = objective.evaluate(model, moved) - base
        # Subtracting two full evaluations cancels catastrophically when
        # UNREACHABLE_COST-scale terms are present, so the comparison
        # tolerance must scale with the magnitudes being subtracted.
        tolerance = max(1e-7, abs(base) * 1e-12)
        assert math.isclose(delta, expected, rel_tol=1e-9, abs_tol=tolerance)


@settings(max_examples=30, deadline=None)
@given(random_models())
def test_model_copy_objective_invariant(model):
    """Copies score identically — nothing observable is lost."""
    clone = model.copy()
    objective = AvailabilityObjective()
    assert objective.evaluate(clone, clone.deployment) == \
        objective.evaluate(model, model.deployment)


@settings(max_examples=30, deadline=None)
@given(random_models())
def test_restricted_view_is_submodel(model):
    keep = model.host_ids[: max(1, len(model.host_ids) // 2)]
    view = model.restricted_to(keep)
    assert set(view.host_ids) == set(keep)
    full_deployment = model.deployment
    for component in view.component_ids:
        assert view.deployment[component] == full_deployment[component]
        assert full_deployment[component] in keep


# ---------------------------------------------------------------------------
# Stability detector
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(0.0, 1.0), min_size=3, max_size=20),
       st.floats(0.01, 0.5))
def test_stability_matches_definition(values, epsilon):
    window = 3
    detector = StabilityDetector(epsilon=epsilon, window=window)
    for value in values:
        detector.update(value)
    recent = values[-window:]
    expected = len(values) >= window and \
        (max(recent) - min(recent)) < epsilon
    assert detector.is_stable == expected


@given(st.floats(0.0, 1.0), st.integers(2, 6))
def test_constant_series_always_stabilizes(value, window):
    detector = StabilityDetector(epsilon=1e-9, window=window)
    for __ in range(window):
        detector.update(value)
    assert detector.is_stable
    # The window mean of identical values may differ by one ulp.
    assert math.isclose(detector.stable_value(), value, rel_tol=1e-12,
                        abs_tol=1e-15)
