"""Tests for the analyzer's solution-modification path (§5.1: "...or
modifies the solution such that it does not significantly increase the
system's overall latency")."""

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, LatencyObjective,
    MemoryConstraint,
)
from repro.core.analyzer import Analyzer
from repro.core.constraints import fix_component


def two_front_model():
    """Two independent improvement opportunities:

    * benign front: pair (a1, a2) split over a *fast* flaky link — moving
      a2 next to the pinned a1 improves availability AND latency;
    * hostile front: b1 is pinned on its own host and b2's only
      availability improvement is moving to a reliable-but-awful link —
      great for availability, terrible for latency.

    A good algorithm proposes both moves; the guard repair must keep the
    benign one and revert the hostile one.  The anchors are pinned with
    architect location constraints (returned on ``model.constraints``) so
    the optimum cannot dodge the dilemma by relocating them.
    """
    model = DeploymentModel(name="two-front")
    model.add_host("hub", memory=20.0)
    model.add_host("flaky", memory=20.0)
    model.add_host("slow", memory=10.0)
    model.add_host("bparent", memory=10.0)
    # Fast but unreliable links everywhere except the slow-reliable one.
    model.connect_hosts("hub", "flaky", reliability=0.6, bandwidth=1000.0,
                        delay=0.001)
    model.connect_hosts("bparent", "flaky", reliability=0.6,
                        bandwidth=1000.0, delay=0.001)
    model.connect_hosts("hub", "bparent", reliability=0.55,
                        bandwidth=1000.0, delay=0.001)
    # bparent <-> slow: reliable but dreadful.
    model.connect_hosts("bparent", "slow", reliability=0.99, bandwidth=0.5,
                        delay=0.5)
    model.connect_hosts("hub", "slow", reliability=0.5, bandwidth=1.0,
                        delay=0.5)
    model.connect_hosts("flaky", "slow", reliability=0.5, bandwidth=1.0,
                        delay=0.5)
    # Benign pair: a1 pinned on hub, a2 on flaky; hub has room for both.
    model.add_component("a1", memory=10.0)
    model.add_component("a2", memory=10.0)
    model.connect_components("a1", "a2", frequency=5.0, evt_size=1.0)
    model.deploy("a1", "hub")
    model.deploy("a2", "flaky")
    # Hostile pair: b1 pinned on bparent (which it fills), b2 on flaky.
    model.add_component("b1", memory=10.0)
    model.add_component("b2", memory=10.0)
    model.connect_components("b1", "b2", frequency=5.0, evt_size=10.0)
    model.deploy("b1", "bparent")
    model.deploy("b2", "flaky")
    model.constraints = [fix_component("a1", "hub"),
                         fix_component("b1", "bparent")]
    return model


class TestGuardRepair:
    def test_repair_keeps_benign_move_reverts_hostile(self):
        model = two_front_model()
        analyzer = Analyzer(AvailabilityObjective(),
                            ConstraintSet([MemoryConstraint(), *model.constraints]),
                            latency_guard=LatencyObjective(),
                            guard_tolerance=1.10,
                            min_improvement=0.001, seed=1)
        decision = analyzer.analyze(model)
        assert decision.will_redeploy
        deployment = decision.selected.deployment
        # The benign collocation happened...
        assert deployment["a2"] == deployment["a1"] == "hub"
        # ...and the latency-hostile move was NOT taken: b2 did not go to
        # the reliable-but-awful host.
        assert deployment["b2"] != "slow"
        # The outcome honors the guard.
        latency = LatencyObjective()
        before = latency.evaluate(model, model.deployment)
        after = latency.evaluate(model, deployment)
        assert after <= before * 1.10 + 1e-9

    def test_repair_is_marked(self):
        model = two_front_model()
        analyzer = Analyzer(AvailabilityObjective(),
                            ConstraintSet([MemoryConstraint(), *model.constraints]),
                            latency_guard=LatencyObjective(),
                            guard_tolerance=1.10,
                            min_improvement=0.001, seed=1)
        decision = analyzer.analyze(model)
        if decision.selected.extra.get("repaired"):
            assert decision.selected.algorithm.endswith("+guard-repair")

    def test_unrepairable_single_move_still_vetoed(self):
        """When the only move IS the hostile one, repair cannot help and
        the analyzer falls back to a veto."""
        model = two_front_model()
        # Remove the benign opportunity: collocate the a-pair up front.
        model.deploy("a2", "hub")
        analyzer = Analyzer(AvailabilityObjective(),
                            ConstraintSet([MemoryConstraint(), *model.constraints]),
                            latency_guard=LatencyObjective(),
                            guard_tolerance=1.05,
                            min_improvement=0.001, seed=1)
        decision = analyzer.analyze(model)
        assert not decision.will_redeploy
        assert "veto" in decision.reason

    def test_no_guard_means_no_repair_path(self):
        model = two_front_model()
        analyzer = Analyzer(AvailabilityObjective(),
                            ConstraintSet([MemoryConstraint(), *model.constraints]),
                            min_improvement=0.001, seed=1)
        decision = analyzer.analyze(model)
        # Unguarded analyzer happily takes the hostile move.
        assert decision.will_redeploy
        assert decision.selected.deployment["b2"] == "slow"
