"""Property-based equivalence: CompiledConstraintSet == object ConstraintSet.

The compiled checker (``repro.core.constraints_compiled``) must be an exact
drop-in for the object path — same ``allows`` booleans, same
``is_satisfied`` verdicts, same violation *strings* in the same order — or
the fast search path would silently change algorithm trajectories.  These
properties drive randomized models, constraint mixes, deployments, and
place/undo sequences through both implementations and assert equality.

All weights are dyadic rationals (multiples of 1/8) so incremental sums and
fresh re-sums are bit-identical; the equivalence contract is exact, not
approximate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.compiled import UNDEPLOYED, compiled_model
from repro.core.constraints import (
    BandwidthConstraint, CollocationConstraint, ConstraintSet, CpuConstraint,
    LocationConstraint, MemoryConstraint,
)
from repro.core.constraints_compiled import compile_constraints
from repro.core.model import DeploymentModel

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: Dyadic-rational weights: exact in binary floating point, so the
#: incremental accumulators and the object path's fresh sums agree exactly.
def _dyadic(lo: int, hi: int):
    return st.integers(lo, hi).map(lambda n: n / 8.0)


@st.composite
def constrained_worlds(draw, max_hosts=4, max_components=7):
    """(model, constraint set, deployment) with tight random capacities."""
    n_hosts = draw(st.integers(2, max_hosts))
    n_components = draw(st.integers(1, max_components))
    model = DeploymentModel(name="ccs-hyp")
    hosts = [f"h{i}" for i in range(n_hosts)]
    components = [f"c{i}" for i in range(n_components)]
    for host in hosts:
        model.add_host(host, memory=draw(_dyadic(0, 200)),
                       cpu=draw(_dyadic(0, 100)))
    for component in components:
        model.add_component(component, memory=draw(_dyadic(0, 80)),
                            cpu=draw(_dyadic(0, 40)))
    for i in range(n_hosts):
        for j in range(i + 1, n_hosts):
            if draw(st.booleans()):
                model.connect_hosts(
                    hosts[i], hosts[j],
                    reliability=draw(_dyadic(0, 8)),
                    bandwidth=draw(_dyadic(1, 160)))
    for i in range(n_components):
        for j in range(i + 1, n_components):
            if draw(st.booleans()):
                model.connect_components(
                    components[i], components[j],
                    frequency=draw(_dyadic(0, 40)),
                    evt_size=draw(_dyadic(0, 16)))

    members = st.sampled_from(components)
    constraints = ConstraintSet()
    if draw(st.booleans()):
        constraints.add(MemoryConstraint())
    if draw(st.booleans()):
        constraints.add(CpuConstraint())
    if draw(st.booleans()):
        constraints.add(BandwidthConstraint())
    for __ in range(draw(st.integers(0, 2))):
        component = draw(members)
        subset = draw(st.sets(st.sampled_from(hosts), min_size=1,
                              max_size=n_hosts))
        if draw(st.booleans()):
            constraints.add(LocationConstraint(component,
                                               allowed=sorted(subset)))
        else:
            constraints.add(LocationConstraint(component,
                                               forbidden=sorted(subset)))
    if n_components >= 2:
        for __ in range(draw(st.integers(0, 2))):
            group = draw(st.lists(members, min_size=2,
                                  max_size=min(3, n_components),
                                  unique=True))
            constraints.add(CollocationConstraint(
                group, together=draw(st.booleans())))

    # Partial deployments exercise the UNDEPLOYED handling.
    deployment = {c: draw(st.sampled_from(hosts)) for c in components
                  if draw(st.integers(0, 9)) < 8}
    return model, constraints, deployment


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

@settings(max_examples=120, deadline=None)
@given(constrained_worlds())
def test_satisfaction_and_violations_match_object_path(world):
    model, constraints, deployment = world
    cm = compiled_model(model)
    compiled = compile_constraints(constraints, cm)
    assert compiled is not None, "all built-in constraints must compile"
    compiled.bind(deployment)
    assert compiled.satisfied() == constraints.is_satisfied(model, deployment)
    assert compiled.violations() == constraints.violations(model, deployment)
    assert compiled.violation_count() == len(
        constraints.violations(model, deployment))


@settings(max_examples=120, deadline=None)
@given(constrained_worlds())
def test_allows_matches_object_path_on_every_pair(world):
    model, constraints, deployment = world
    cm = compiled_model(model)
    compiled = compile_constraints(constraints, cm)
    compiled.bind(deployment)
    for ci, component in enumerate(cm.component_ids):
        for hi, host in enumerate(cm.host_ids):
            assert compiled.allows(ci, hi) == constraints.allows(
                model, deployment, component, host), (component, host)


@settings(max_examples=100, deadline=None)
@given(constrained_worlds(), st.data())
def test_place_undo_roundtrip_restores_exact_state(world, data):
    """Random place/unplace walks, then unwinding every token in reverse,
    must restore bit-identical incremental state."""
    model, constraints, deployment = world
    cm = compiled_model(model)
    compiled = compile_constraints(constraints, cm)
    compiled.bind(deployment)

    def snapshot():
        return (
            list(compiled.assignment),
            list(compiled.mem_load), list(compiled.cpu_load),
            dict(compiled.tally),
            [(dict(s["counts"]), s["placed"], s["distinct"])
             for s in compiled.together],
            [(dict(s["counts"]), s["collisions"]) for s in compiled.apart],
            [(dict(s["demand"]), dict(s["count"]), s["over"])
             for s in compiled.bandwidth],
        )

    pristine = snapshot()
    tokens = []
    steps = data.draw(st.integers(1, 12))
    for __ in range(steps):
        ci = data.draw(st.integers(0, cm.n_components - 1))
        hi = data.draw(st.integers(-1, cm.n_hosts - 1))
        tokens.append(compiled.place(
            ci, UNDEPLOYED if hi < 0 else hi))
        # Mid-walk, the incremental state must match a fresh bind of the
        # same assignment (and therefore the object path).
        mapping = {cm.component_ids[i]: cm.host_ids[h]
                   for i, h in enumerate(compiled.assignment)
                   if h != UNDEPLOYED}
        assert compiled.satisfied() == constraints.is_satisfied(
            model, mapping)
    for token in reversed(tokens):
        compiled.undo(token)
    assert snapshot() == pristine


@settings(max_examples=60, deadline=None)
@given(constrained_worlds(), st.data())
def test_allows_after_moves_matches_object_path(world, data):
    """After an arbitrary applied move sequence, allows() still agrees."""
    model, constraints, deployment = world
    cm = compiled_model(model)
    compiled = compile_constraints(constraints, cm)
    compiled.bind(deployment)
    for __ in range(data.draw(st.integers(1, 6))):
        ci = data.draw(st.integers(0, cm.n_components - 1))
        hi = data.draw(st.integers(0, cm.n_hosts - 1))
        compiled.place(ci, hi)
    mapping = {cm.component_ids[i]: cm.host_ids[h]
               for i, h in enumerate(compiled.assignment) if h != UNDEPLOYED}
    for ci, component in enumerate(cm.component_ids):
        for hi, host in enumerate(cm.host_ids):
            assert compiled.allows(ci, hi) == constraints.allows(
                model, mapping, component, host), (component, host)
    assert compiled.violations() == constraints.violations(model, mapping)


# ---------------------------------------------------------------------------
# Compiler bail-outs
# ---------------------------------------------------------------------------

class _CustomConstraint(MemoryConstraint):
    """A subclass the compiler must refuse (unknown semantics)."""


def test_unknown_constraint_types_fall_back_to_object_path():
    model = DeploymentModel(name="bail")
    model.add_host("h0", memory=10.0)
    model.add_component("c0", memory=1.0)
    cm = compiled_model(model)
    assert compile_constraints(
        ConstraintSet([_CustomConstraint()]), cm) is None
    # Degenerate duplicate-member collocation groups bail out too.
    assert compile_constraints(
        ConstraintSet([CollocationConstraint(["c0", "c0"], together=True)]),
        cm) is None


def test_nested_constraint_sets_are_flattened():
    model = DeploymentModel(name="nest")
    model.add_host("h0", memory=10.0)
    model.add_host("h1", memory=10.0)
    model.add_component("c0", memory=6.0)
    model.add_component("c1", memory=6.0)
    cm = compiled_model(model)
    nested = ConstraintSet([ConstraintSet([MemoryConstraint()])])
    compiled = compile_constraints(nested, cm)
    assert compiled is not None
    compiled.bind({"c0": "h0", "c1": "h0"})
    assert not compiled.satisfied()
    assert compiled.allows(1, 1)
    assert not compiled.allows(1, 0)  # h0 cannot fit both components


def test_unknown_host_binding_raises():
    model = DeploymentModel(name="unknown-host")
    model.add_host("h0", memory=10.0)
    model.add_component("c0", memory=1.0)
    compiled = compile_constraints(ConstraintSet([MemoryConstraint()]),
                                   compiled_model(model))
    with pytest.raises(ValueError):
        compiled.bind({"c0": "nope"})
