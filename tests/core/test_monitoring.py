"""Unit tests for ε-stability detection and the monitoring hub."""

import pytest

from repro.core.monitoring import MonitoringHub, StabilityDetector


class TestStabilityDetector:
    def test_needs_full_window(self):
        detector = StabilityDetector(epsilon=0.1, window=3)
        assert not detector.update(0.5)
        assert not detector.update(0.5)
        assert detector.update(0.5)

    def test_stable_when_spread_below_epsilon(self):
        detector = StabilityDetector(epsilon=0.1, window=3)
        for value in (0.50, 0.55, 0.52):
            detector.update(value)
        assert detector.is_stable

    def test_unstable_when_spread_at_or_above_epsilon(self):
        # Exactly-representable floats so the boundary test is exact:
        # spread == epsilon must count as unstable (strict less-than rule).
        detector = StabilityDetector(epsilon=0.125, window=3)
        for value in (0.5, 0.625, 0.5):
            detector.update(value)
        assert not detector.is_stable

    def test_sliding_window_recovers(self):
        detector = StabilityDetector(epsilon=0.05, window=3)
        for value in (0.1, 0.9, 0.5):  # wildly unstable
            detector.update(value)
        assert not detector.is_stable
        for value in (0.51, 0.52, 0.51):  # settles
            detector.update(value)
        assert detector.is_stable

    def test_stable_value_is_window_mean(self):
        detector = StabilityDetector(epsilon=0.1, window=2)
        detector.update(0.50)
        detector.update(0.54)
        assert detector.stable_value() == pytest.approx(0.52)

    def test_stable_value_none_when_unstable(self):
        detector = StabilityDetector(epsilon=0.01, window=2)
        detector.update(0.1)
        detector.update(0.9)
        assert detector.stable_value() is None

    def test_reset(self):
        detector = StabilityDetector(epsilon=0.1, window=2)
        detector.update(0.5)
        detector.update(0.5)
        detector.reset()
        assert not detector.is_stable

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StabilityDetector(epsilon=-1.0)
        with pytest.raises(ValueError):
            StabilityDetector(window=1)


class TestMonitoringHub:
    def _report(self, host, reliability=None, frequency=None, sizes=None):
        report = {"host": host}
        if reliability:
            report["reliability"] = reliability
        if frequency:
            report["evt_frequency"] = frequency
        if sizes:
            report["evt_sizes"] = sizes
        return report

    def test_reliability_averaged_across_both_ends(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2)
        for __ in range(2):
            hub.ingest("hA", self._report("hA", reliability={"hB": 0.8}))
            hub.ingest("hB", self._report("hB", reliability={"hA": 0.6}))
            hub.process_interval()
        link = tiny_model.physical_link("hA", "hB")
        assert link.params.get("reliability") == pytest.approx(0.7)

    def test_unstable_values_not_applied(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2)
        original = tiny_model.physical_link("hA", "hB").params.get(
            "reliability")
        hub.ingest("hA", self._report("hA", reliability={"hB": 0.2}))
        hub.process_interval()
        hub.ingest("hA", self._report("hA", reliability={"hB": 0.9}))
        hub.process_interval()
        # Two wildly different windows: nothing written.
        assert tiny_model.physical_link("hA", "hB").params.get(
            "reliability") == original

    def test_becomes_stable_and_applies(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=3)
        for __ in range(3):
            hub.ingest("hA", self._report("hA", reliability={"hB": 0.42}))
            applied = hub.process_interval()
        assert len(applied) == 1
        assert tiny_model.reliability("hA", "hB") == pytest.approx(0.42)

    def test_directed_rates_summed_into_undirected_frequency(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2,
                            frequency_epsilon=0.5)
        for __ in range(2):
            hub.ingest("hA", self._report(
                "hA", frequency={"c1|c2": 2.0}))
            hub.ingest("hB", self._report(
                "hB", frequency={"c2|c1": 1.5}))
            hub.process_interval()
        assert tiny_model.frequency("c1", "c2") == pytest.approx(3.5)

    def test_event_sizes_averaged(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2,
                            frequency_epsilon=10.0)
        for __ in range(2):
            hub.ingest("hA", self._report(
                "hA", frequency={"c1|c2": 2.0}, sizes={"c1|c2": 3.0}))
            hub.ingest("hB", self._report(
                "hB", frequency={"c2|c1": 2.0}, sizes={"c2|c1": 1.0}))
            hub.process_interval()
        assert tiny_model.evt_size("c1", "c2") == pytest.approx(2.0)

    def test_unknown_links_ignored(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2)
        for __ in range(2):
            hub.ingest("hA", self._report(
                "hA", reliability={"ghost": 0.1},
                frequency={"cX|cY": 5.0}))
            applied = hub.process_interval()
        assert applied == []

    def test_reports_cleared_between_intervals(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2)
        hub.ingest("hA", self._report("hA", reliability={"hB": 0.8}))
        hub.process_interval()
        # Second interval with no reports: the detector series should not
        # advance (no value for this interval), hence never stabilizes.
        hub.process_interval()
        assert tiny_model.reliability("hA", "hB") == 0.5  # untouched

    def test_stability_report(self, tiny_model):
        hub = MonitoringHub(tiny_model, epsilon=0.05, window=2)
        hub.ingest("hA", self._report("hA", reliability={"hB": 0.8}))
        hub.process_interval()
        report = hub.stability_report()
        assert report["parameters_tracked"] == 1
        assert report["parameters_stable"] == 0
        assert report["intervals_processed"] == 1
