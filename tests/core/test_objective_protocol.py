"""Property tests for the Objective incremental-evaluation contract.

Every objective promises that ``move_delta`` agrees with two full
evaluations to floating-point tolerance:

    evaluate(moved) == evaluate(base) + move_delta(base, component, host)

within 1e-9, whether the objective serves the delta incrementally
(``supports_delta = True``) or falls back to the base recompute-from-scratch
implementation.  The tests sweep seeded generated architectures and many
random single-component moves per objective.
"""

from __future__ import annotations

import random

import pytest

from repro.core.objectives import (
    AvailabilityObjective, CommunicationCostObjective, DurabilityObjective,
    LatencyObjective, Objective, SecurityObjective, ThroughputObjective,
    WeightedObjective,
)
from repro.desi import Generator, GeneratorConfig

OBJECTIVES = {
    "availability": lambda: AvailabilityObjective(),
    "availability_critical": lambda: AvailabilityObjective(
        use_criticality=True),
    "latency": lambda: LatencyObjective(),
    "comm_cost": lambda: CommunicationCostObjective(),
    "security": lambda: SecurityObjective(),
    "throughput": lambda: ThroughputObjective(),
    "durability": lambda: DurabilityObjective(),
    "weighted": lambda: WeightedObjective([
        (AvailabilityObjective(), 0.5),
        (CommunicationCostObjective(), 0.3),
        (SecurityObjective(), 0.2),
    ]),
}


def _model(seed: int):
    model = Generator(GeneratorConfig(hosts=6, components=14),
                      seed=seed).generate(f"proto-{seed}")
    # Security is not part of the generator's vocabulary; paint the links so
    # SecurityObjective sees a non-trivial landscape.
    rng = random.Random(seed * 7 + 1)
    for link in model.physical_links:
        host_a, host_b = link.hosts
        model.set_physical_link_param(host_a, host_b,
                                      "security", rng.random())
    return model


def _moves(model, rng: random.Random, count: int = 12):
    components = list(model.component_ids)
    hosts = list(model.host_ids)
    base = dict(model.deployment)
    moves = []
    for _ in range(count):
        component = rng.choice(components)
        candidates = [h for h in hosts if h != base[component]]
        moves.append((component, rng.choice(candidates)))
    return base, moves


@pytest.mark.parametrize("objective_name", sorted(OBJECTIVES))
@pytest.mark.parametrize("seed", [3, 17, 41])
def test_move_delta_matches_two_full_evaluations(objective_name, seed):
    objective = OBJECTIVES[objective_name]()
    model = _model(seed)
    rng = random.Random(seed * 100 + 9)
    base, moves = _moves(model, rng)
    base_value = objective.evaluate(model, base)
    for component, new_host in moves:
        moved = dict(base)
        moved[component] = new_host
        delta = objective.move_delta(model, base, component, new_host)
        assert objective.evaluate(model, moved) == pytest.approx(
            base_value + delta, abs=1e-9), (
            f"{objective_name}: move {component}->{new_host} disagrees")


@pytest.mark.parametrize("objective_name", sorted(OBJECTIVES))
def test_evaluate_move_uses_current_value(objective_name, tiny_model):
    objective = OBJECTIVES[objective_name]()
    base = dict(tiny_model.deployment)
    value = objective.evaluate(tiny_model, base)
    after = objective.evaluate_move(tiny_model, base, "c1", "hB", value)
    moved = dict(base, c1="hB")
    assert after == pytest.approx(objective.evaluate(tiny_model, moved),
                                  abs=1e-9)


class TestSupportsDeltaDeclarations:
    """The flag is part of the public contract — the engine trusts it."""

    def test_incremental_objectives_declare_support(self):
        assert AvailabilityObjective.supports_delta is True
        assert LatencyObjective.supports_delta is True
        assert CommunicationCostObjective.supports_delta is True
        assert SecurityObjective.supports_delta is True

    def test_global_aggregations_support_delta(self):
        # Bottleneck (max) and lifetime (min) aggregations localize a move
        # with per-host-pair demand / per-host draw accumulators.
        assert ThroughputObjective.supports_delta is True
        assert DurabilityObjective.supports_delta is True

    def test_base_default_is_conservative(self):
        assert Objective.supports_delta is False

    def test_weighted_requires_all_terms(self):
        fast = WeightedObjective([(AvailabilityObjective(), 0.5),
                                  (LatencyObjective(), 0.5)])
        assert fast.supports_delta is True
        mixed = WeightedObjective([(AvailabilityObjective(), 0.5),
                                   (ThroughputObjective(), 0.5)])
        assert mixed.supports_delta is True

        class NonDelta(Objective):
            name = "nondelta"

            def evaluate(self, model, deployment):
                return 0.0

        blocked = WeightedObjective([(AvailabilityObjective(), 0.5),
                                     (NonDelta(), 0.5)])
        assert blocked.supports_delta is False
