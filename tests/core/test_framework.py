"""Tests for the centralized framework loop (Figure 2)."""

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, LatencyObjective,
    MemoryConstraint,
)
from repro.core.framework import CentralizedFramework
from repro.core.user_input import UserInput
from repro.middleware import DistributedSystem
from repro.sim import InteractionWorkload, SimClock, StepChange


def build_loop_scenario(seed=5):
    """Three hosts, two chatty clusters initially scattered."""
    model = DeploymentModel(name="loop")
    for host in ("h0", "h1", "h2"):
        model.add_host(host, memory=40.0)
    model.connect_hosts("h0", "h1", reliability=0.95, bandwidth=500.0,
                        delay=0.005)
    model.connect_hosts("h0", "h2", reliability=0.95, bandwidth=500.0,
                        delay=0.005)
    model.connect_hosts("h1", "h2", reliability=0.95, bandwidth=500.0,
                        delay=0.005)
    for component in ("c0", "c1", "c2", "c3", "c4", "c5"):
        model.add_component(component, memory=10.0)
    for pair in (("c0", "c1"), ("c0", "c2"), ("c1", "c2"),
                 ("c3", "c4"), ("c4", "c5"), ("c2", "c3")):
        model.connect_components(*pair, frequency=3.0, evt_size=1.0)
    placement = {"c0": "h0", "c1": "h1", "c2": "h2",
                 "c3": "h0", "c4": "h1", "c5": "h2"}
    for component, host in placement.items():
        model.deploy(component, host)
    clock = SimClock()
    system = DistributedSystem(model, clock, seed=seed)
    return model, clock, system


class TestCentralizedFramework:
    def test_closed_loop_improves_availability(self):
        model, clock, system = build_loop_scenario()
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]),
            monitor_interval=2.0, seed=3)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=8).start()
        initial = framework.modeled_availability()
        framework.start(cycles_per_analysis=3)
        clock.run(30.0)
        framework.stop()
        workload.stop()
        final = framework.modeled_availability()
        assert final > initial
        assert any(cycle.effect is not None for cycle in framework.cycles)

    def test_reacts_to_midrun_degradation(self):
        model, clock, system = build_loop_scenario()
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]),
            monitor_interval=2.0, seed=3)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=8).start()
        StepChange(system.network, "h0", "h1", at=30.0,
                   attribute="reliability", value=0.2).start()
        framework.start(cycles_per_analysis=3)
        clock.run(60.0)
        framework.stop()
        workload.stop()
        # The monitors must have noticed the degradation...
        assert model.physical_link("h0", "h1").params.get(
            "reliability") < 0.6
        # ...and the final deployment must avoid the now-bad link: no
        # interacting pair straddles h0-h1.
        deployment = model.deployment
        straddlers = [
            (a, b) for a, b, link in model.interaction_pairs()
            if {deployment[a], deployment[b]} == {"h0", "h1"}
        ]
        assert straddlers == []

    def test_user_input_applied_at_construction(self):
        model, clock, system = build_loop_scenario()
        user_input = (UserInput()
                      .set_host("h0", memory=99.0)
                      .restrict_location("c0", allowed=["h0"]))
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]),
            user_input=user_input, seed=1)
        assert model.host("h0").memory == 99.0
        assert len(framework.constraints) == 2  # memory + location

    def test_location_constraint_respected_by_loop(self):
        model, clock, system = build_loop_scenario()
        user_input = UserInput().restrict_location("c5", allowed=["h2"])
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]),
            user_input=user_input, monitor_interval=2.0, seed=3)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=8).start()
        framework.start(cycles_per_analysis=3)
        clock.run(30.0)
        framework.stop()
        workload.stop()
        assert model.deployment["c5"] == "h2"

    def test_app_delivery_ratio_reflects_reality(self):
        model, clock, system = build_loop_scenario()
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]), seed=1)
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=8).start()
        clock.run(20.0)
        workload.stop()
        clock.run(2.0)
        ratio = framework.app_delivery_ratio()
        assert 0.5 < ratio <= 1.0

    def test_status_shape(self):
        model, clock, system = build_loop_scenario()
        framework = CentralizedFramework(
            system, AvailabilityObjective(), seed=1)
        status = framework.status()
        assert set(status) >= {"time", "modeled_availability", "monitoring",
                               "analyzer", "cycles", "redeployments"}

    def test_stop_cancels_cycles(self):
        model, clock, system = build_loop_scenario()
        framework = CentralizedFramework(
            system, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]),
            monitor_interval=2.0, seed=3)
        framework.start()
        clock.run(10.0)
        cycles_at_stop = len(framework.cycles)
        framework.stop()
        clock.run(20.0)
        assert len(framework.cycles) == cycles_at_stop
