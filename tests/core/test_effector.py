"""Unit tests for redeployment planning and effectors."""

import pytest

from repro.core.effector import (
    ModelEffector, MiddlewareEffector, plan_redeployment,
)
from repro.core.errors import EffectorError, LintError, PreflightError
from repro.core.model import Deployment, DeploymentModel
from repro.middleware import DistributedSystem
from repro.sim import SimClock


class TestPlanRedeployment:
    def test_noop_plan(self, tiny_model):
        plan = plan_redeployment(tiny_model, tiny_model.deployment)
        assert plan.is_noop
        assert plan.estimated_kb == 0.0
        assert plan.estimated_time == 0.0

    def test_moves_and_volume(self, tiny_model):
        target = {"c1": "hB", "c2": "hA", "c3": "hB"}
        plan = plan_redeployment(tiny_model, target)
        assert len(plan.moves) == 1
        assert plan.moves[0].component == "c1"
        assert plan.estimated_kb == pytest.approx(10.0)  # c1's memory

    def test_time_uses_link_parameters(self, tiny_model):
        target = {"c1": "hB", "c2": "hA", "c3": "hB"}
        plan = plan_redeployment(tiny_model, target)
        # delay 0.01 + 10 KB / 100 KB/s = 0.11
        assert plan.estimated_time == pytest.approx(0.11)

    def test_parallel_pairs_take_max(self, tiny_model):
        # c1: hA->hB (10KB) and c3: hB->hA (10KB) proceed in parallel.
        target = {"c1": "hB", "c2": "hA", "c3": "hA"}
        plan = plan_redeployment(tiny_model, target)
        assert plan.estimated_time == pytest.approx(0.11)
        assert plan.estimated_kb == pytest.approx(20.0)

    def test_relay_path_when_no_direct_link(self):
        model = DeploymentModel()
        model.add_host("hq")
        model.add_host("a")
        model.add_host("b")
        model.connect_hosts("hq", "a", bandwidth=100.0, delay=0.01)
        model.connect_hosts("hq", "b", bandwidth=100.0, delay=0.01)
        model.add_component("x", memory=10.0)
        model.deploy("x", "a")
        plan = plan_redeployment(model, {"x": "b"})
        # Two legs of 0.01 + 10/100 each.
        assert plan.estimated_time == pytest.approx(0.22)

    def test_unreachable_pair_is_infinite(self):
        model = DeploymentModel()
        model.add_host("a")
        model.add_host("b")  # totally disconnected
        model.add_component("x", memory=10.0)
        model.deploy("x", "a")
        plan = plan_redeployment(model, {"x": "b"})
        assert plan.estimated_time == float("inf")
        assert plan.unreachable == ("x",)

    def test_reachable_plan_has_no_unreachable(self, tiny_model):
        plan = plan_redeployment(tiny_model,
                                 {"c1": "hB", "c2": "hA", "c3": "hB"})
        assert plan.unreachable == ()

    def test_schedule_flag_attaches_wave_schedule(self, tiny_model):
        target = {"c1": "hB", "c2": "hA", "c3": "hB"}
        assert plan_redeployment(tiny_model, target).schedule is None
        plan = plan_redeployment(tiny_model, target, schedule=True)
        assert plan.schedule is not None
        assert plan.schedule.final_state() == target
        assert "waves" in plan.summary()

    def test_explicit_current_overrides_model(self, tiny_model):
        plan = plan_redeployment(
            tiny_model, {"c1": "hA", "c2": "hA", "c3": "hA"},
            current={"c1": "hB", "c2": "hA", "c3": "hA"})
        assert len(plan.moves) == 1
        assert plan.moves[0] == plan.moves[0].__class__("c1", "hB", "hA")


class TestModelEffector:
    def test_applies_target_to_model(self, tiny_model):
        effector = ModelEffector(tiny_model)
        target = {"c1": "hB", "c2": "hB", "c3": "hB"}
        plan = plan_redeployment(tiny_model, target)
        report = effector.effect(plan)
        assert report.succeeded
        assert dict(tiny_model.deployment) == target
        assert effector.history == [report]


class TestPreflightGate:
    def overloading_plan(self, tiny_model):
        """A plan that would overflow hB's memory."""
        tiny_model.set_host_param("hB", "memory", 15.0)
        target = {"c1": "hB", "c2": "hB", "c3": "hB"}  # needs 30
        return plan_redeployment(tiny_model, target)

    def test_invalid_plan_blocked_before_mutation(self, tiny_model):
        effector = ModelEffector(tiny_model)
        before = dict(tiny_model.deployment)
        with pytest.raises(PreflightError) as excinfo:
            effector.effect(self.overloading_plan(tiny_model))
        assert dict(tiny_model.deployment) == before  # untouched
        assert effector.history == []
        assert any(f.rule == "MV003" for f in excinfo.value.findings)

    def test_preflight_error_is_lint_error(self, tiny_model):
        effector = ModelEffector(tiny_model)
        with pytest.raises(LintError):
            effector.effect(self.overloading_plan(tiny_model))

    def test_force_overrides_gate(self, tiny_model):
        effector = ModelEffector(tiny_model)
        report = effector.effect(self.overloading_plan(tiny_model),
                                 force=True)
        assert report.succeeded

    def test_verify_false_disables_gate(self, tiny_model):
        effector = ModelEffector(tiny_model, verify=False)
        assert effector.effect(self.overloading_plan(tiny_model)).succeeded

    def test_partial_target_overlays_current_deployment(self, tiny_model):
        # The plan only mentions c3; c1/c2 stay put and must not be
        # reported as unmapped by the gate.
        effector = ModelEffector(tiny_model)
        plan = plan_redeployment(tiny_model, {"c3": "hA"})
        assert effector.effect(plan).succeeded

    def test_middleware_effector_gated_too(self, tiny_model):
        tiny_model.set_host_param("hB", "memory", 15.0)
        clock = SimClock()
        system = DistributedSystem(tiny_model, clock, seed=4)
        effector = MiddlewareEffector(system)
        plan = plan_redeployment(tiny_model,
                                 {"c1": "hB", "c2": "hB", "c3": "hB"})
        with pytest.raises(PreflightError):
            effector.effect(plan)


class TestMiddlewareEffector:
    def test_effects_live_system(self, tiny_model):
        clock = SimClock()
        system = DistributedSystem(tiny_model, clock, seed=4)
        effector = MiddlewareEffector(system)
        target = {"c1": "hB", "c2": "hB", "c3": "hB"}
        plan = plan_redeployment(tiny_model, target)
        report = effector.effect(plan)
        assert report.succeeded
        assert report.moves_executed == 2
        assert system.actual_deployment() == target
        assert report.kb_transferred > 0.0

    def test_noop_plan_short_circuits(self, tiny_model):
        clock = SimClock()
        system = DistributedSystem(tiny_model, clock, seed=4)
        effector = MiddlewareEffector(system)
        plan = plan_redeployment(tiny_model, tiny_model.deployment)
        report = effector.effect(plan)
        assert report.succeeded
        assert report.moves_executed == 0
        assert clock.now == 0.0

    def test_partition_failure_raises_and_records(self):
        model = DeploymentModel()
        model.add_host("a", memory=100.0)
        model.add_host("b", memory=100.0)
        model.connect_hosts("a", "b", connected=False)
        model.add_component("x", memory=5.0)
        model.deploy("x", "a")
        clock = SimClock()
        system = DistributedSystem(model, clock, master_host="a", seed=1)
        effector = MiddlewareEffector(system, max_wait=5.0)
        plan = plan_redeployment(model, {"x": "b"})
        with pytest.raises(EffectorError):
            effector.effect(plan)
        assert effector.history[-1].succeeded is False

    def test_report_dict_carries_schedule_and_unreachable(self, tiny_model):
        clock = SimClock()
        system = DistributedSystem(tiny_model, clock, seed=4)
        effector = MiddlewareEffector(system)
        target = {"c1": "hB", "c2": "hB", "c3": "hB"}
        plan = plan_redeployment(tiny_model, target, schedule=True)
        data = effector.effect(plan).to_dict()
        assert data["plan"]["waves"] == len(plan.schedule.waves)
        assert data["plan"]["predicted_makespan"] == pytest.approx(
            plan.schedule.makespan)
        assert "unreachable" not in data["plan"]
