"""Unit tests for the deployment model."""

import pytest

from repro.core.errors import (
    DeploymentError, DuplicateEntityError, ModelError, UnknownEntityError,
)
from repro.core.model import (
    DEPLOYMENT_CHANGED, Deployment, DeploymentModel, HOST_ADDED, Move,
    PARAMETER_CHANGED,
)


class TestTopology:
    def test_add_host_and_component(self):
        model = DeploymentModel()
        model.add_host("h1", memory=32.0)
        model.add_component("c1", memory=4.0)
        assert model.host("h1").memory == 32.0
        assert model.component("c1").memory == 4.0

    def test_duplicate_host_rejected(self):
        model = DeploymentModel()
        model.add_host("h1")
        with pytest.raises(DuplicateEntityError):
            model.add_host("h1")

    def test_duplicate_component_rejected(self):
        model = DeploymentModel()
        model.add_component("c1")
        with pytest.raises(DuplicateEntityError):
            model.add_component("c1")

    def test_unknown_host_raises(self):
        model = DeploymentModel()
        with pytest.raises(UnknownEntityError):
            model.host("nope")

    def test_self_link_rejected(self):
        model = DeploymentModel()
        model.add_host("h1")
        with pytest.raises(ModelError, match="itself"):
            model.connect_hosts("h1", "h1")

    def test_link_requires_existing_hosts(self):
        model = DeploymentModel()
        model.add_host("h1")
        with pytest.raises(UnknownEntityError):
            model.connect_hosts("h1", "h2")

    def test_physical_link_is_undirected(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_host("h2")
        link = model.connect_hosts("h1", "h2", reliability=0.7)
        assert model.physical_link("h2", "h1") is link

    def test_duplicate_link_rejected_either_direction(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_host("h2")
        model.connect_hosts("h1", "h2")
        with pytest.raises(DuplicateEntityError):
            model.connect_hosts("h2", "h1")

    def test_remove_host_cascades(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_host("h2")
        model.connect_hosts("h1", "h2")
        model.add_component("c1")
        model.deploy("c1", "h1")
        model.remove_host("h1")
        assert not model.has_host("h1")
        assert model.physical_link("h1", "h2") is None
        assert "c1" not in model.deployment

    def test_remove_component_cascades(self):
        model = DeploymentModel()
        model.add_component("c1")
        model.add_component("c2")
        model.connect_components("c1", "c2")
        model.remove_component("c1")
        assert model.logical_link("c1", "c2") is None

    def test_neighbors(self, tiny_model):
        assert tiny_model.host_neighbors("hA") == ("hB",)
        assert tiny_model.logical_neighbors("c2") == ("c1", "c3")

    def test_connected_neighbors_excludes_down_links(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "connected", False)
        assert tiny_model.connected_neighbors("hA") == ()


class TestDerivedQueries:
    def test_reliability_same_host_is_one(self, tiny_model):
        assert tiny_model.reliability("hA", "hA") == 1.0

    def test_reliability_linked(self, tiny_model):
        assert tiny_model.reliability("hA", "hB") == 0.5

    def test_reliability_unlinked_is_zero(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_host("h2")
        assert model.reliability("h1", "h2") == 0.0

    def test_reliability_down_link_is_zero(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "connected", False)
        assert tiny_model.reliability("hA", "hB") == 0.0

    def test_bandwidth_and_delay(self, tiny_model):
        assert tiny_model.bandwidth("hA", "hB") == 100.0
        assert tiny_model.delay("hA", "hB") == 0.01
        assert tiny_model.bandwidth("hA", "hA") == float("inf")
        assert tiny_model.delay("hA", "hA") == 0.0

    def test_frequency(self, tiny_model):
        assert tiny_model.frequency("c1", "c2") == 4.0
        assert tiny_model.frequency("c2", "c1") == 4.0
        assert tiny_model.frequency("c1", "c3") == 0.0
        assert tiny_model.frequency("c1", "c1") == 0.0

    def test_total_interaction_frequency(self, tiny_model):
        assert tiny_model.total_interaction_frequency() == 5.0

    def test_memory_used(self, tiny_model):
        assert tiny_model.memory_used("hA") == 20.0
        assert tiny_model.memory_used("hB") == 10.0


class TestDeploymentMapping:
    def test_deploy_and_snapshot(self, tiny_model):
        snapshot = tiny_model.deployment
        assert snapshot["c1"] == "hA"
        assert snapshot.components_on("hA") == ("c1", "c2")

    def test_deploy_unknown_component(self, tiny_model):
        with pytest.raises(UnknownEntityError):
            tiny_model.deploy("cX", "hA")

    def test_deploy_unknown_host(self, tiny_model):
        with pytest.raises(UnknownEntityError):
            tiny_model.deploy("c1", "hX")

    def test_snapshot_is_immutable_copy(self, tiny_model):
        snapshot = tiny_model.deployment
        tiny_model.deploy("c1", "hB")
        assert snapshot["c1"] == "hA"  # old snapshot untouched

    def test_set_deployment_wholesale(self, tiny_model):
        tiny_model.set_deployment({"c1": "hB", "c2": "hB", "c3": "hB"})
        assert set(tiny_model.deployment.values()) == {"hB"}

    def test_validate_deployment_ok(self, tiny_model):
        tiny_model.validate_deployment()

    def test_validate_rejects_missing_components(self, tiny_model):
        tiny_model.undeploy("c1")
        with pytest.raises(DeploymentError, match="not deployed"):
            tiny_model.validate_deployment()

    def test_validate_rejects_unknown_entities(self, tiny_model):
        with pytest.raises(DeploymentError, match="unknown component"):
            tiny_model.validate_deployment({"ghost": "hA"})
        with pytest.raises(DeploymentError, match="unknown host"):
            tiny_model.validate_deployment(
                {"c1": "hZ", "c2": "hA", "c3": "hA"})

    def test_all_deployments_count(self, tiny_model):
        assert sum(1 for __ in tiny_model.all_deployments()) == 2 ** 3


class TestDeploymentValue:
    def test_moved_returns_new_deployment(self):
        deployment = Deployment({"c1": "h1", "c2": "h2"})
        moved = deployment.moved("c1", "h2")
        assert moved["c1"] == "h2"
        assert deployment["c1"] == "h1"

    def test_moved_unknown_component(self):
        with pytest.raises(UnknownEntityError):
            Deployment({"c1": "h1"}).moved("cX", "h1")

    def test_diff_produces_moves(self):
        before = Deployment({"c1": "h1", "c2": "h2", "c3": "h1"})
        after = Deployment({"c1": "h2", "c2": "h2", "c3": "h3"})
        assert before.diff(after) == (
            Move("c1", "h1", "h2"), Move("c3", "h1", "h3"))

    def test_diff_ignores_unshared_components(self):
        before = Deployment({"c1": "h1", "only_before": "h1"})
        after = Deployment({"c1": "h1", "only_after": "h2"})
        assert before.diff(after) == ()

    def test_equality_and_hash(self):
        a = Deployment({"c1": "h1"})
        b = Deployment({"c1": "h1"})
        assert a == b
        assert hash(a) == hash(b)
        assert a == {"c1": "h1"}

    def test_hosts_used(self):
        deployment = Deployment({"c1": "h1", "c2": "h1", "c3": "h2"})
        assert deployment.hosts_used() == frozenset({"h1", "h2"})


class TestListeners:
    def test_host_added_event(self):
        model = DeploymentModel()
        events = []
        model.add_listener(lambda name, payload: events.append((name, payload)))
        model.add_host("h1")
        assert events == [(HOST_ADDED, {"host": "h1"})]

    def test_parameter_changed_event(self, tiny_model):
        events = []
        tiny_model.add_listener(lambda name, payload: events.append((name, payload)))
        tiny_model.set_host_param("hA", "memory", 64.0)
        assert events[0][0] == PARAMETER_CHANGED
        assert events[0][1]["old"] == 100.0
        assert events[0][1]["new"] == 64.0

    def test_deployment_changed_only_on_actual_move(self, tiny_model):
        events = []
        tiny_model.add_listener(lambda name, payload: events.append(name))
        tiny_model.deploy("c1", "hA")  # no-op: already there
        assert DEPLOYMENT_CHANGED not in events
        tiny_model.deploy("c1", "hB")
        assert DEPLOYMENT_CHANGED in events

    def test_remove_listener(self, tiny_model):
        events = []
        listener = lambda name, payload: events.append(name)  # noqa: E731
        tiny_model.add_listener(listener)
        tiny_model.remove_listener(listener)
        tiny_model.add_host("hC")
        assert events == []


class TestCopiesAndViews:
    def test_copy_equivalence(self, small_model):
        clone = small_model.copy()
        assert clone.stats()["hosts"] == small_model.stats()["hosts"]
        assert dict(clone.deployment) == dict(small_model.deployment)
        for link in small_model.physical_links:
            twin = clone.physical_link(*link.hosts)
            assert twin.params.get("reliability") == \
                link.params.get("reliability")

    def test_copy_is_independent(self, tiny_model):
        clone = tiny_model.copy()
        clone.deploy("c1", "hB")
        assert tiny_model.deployment["c1"] == "hA"
        clone.set_host_param("hA", "memory", 1.0)
        assert tiny_model.host("hA").memory == 100.0

    def test_restricted_to_single_host(self, tiny_model):
        view = tiny_model.restricted_to(["hA"])
        assert view.host_ids == ("hA",)
        assert view.component_ids == ("c1", "c2")  # only hA's components
        assert view.logical_link("c1", "c2") is not None
        # c3 and the cross-host link are invisible.
        assert not view.has_component("c3")
        assert view.physical_link("hA", "hB") is None

    def test_restricted_to_preserves_internal_links(self, tiny_model):
        view = tiny_model.restricted_to(["hA", "hB"])
        assert view.physical_link("hA", "hB") is not None
        assert dict(view.deployment) == dict(tiny_model.deployment)

    def test_restricted_to_unknown_host(self, tiny_model):
        with pytest.raises(UnknownEntityError):
            tiny_model.restricted_to(["hZ"])
