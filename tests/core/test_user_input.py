"""Unit tests for design-time user input."""

import pytest

from repro.core.constraints import CollocationConstraint, LocationConstraint
from repro.core.model import DeploymentModel
from repro.core.user_input import UserInput


class TestBuilder:
    def test_chainable(self):
        user_input = (UserInput()
                      .set_host("h1", memory=64.0)
                      .set_component("c1", memory=8.0)
                      .restrict_location("c1", allowed=["h1"]))
        assert user_input.host_params["h1"]["memory"] == 64.0
        assert len(user_input.constraints) == 1

    def test_link_keys_canonicalized(self):
        user_input = UserInput()
        user_input.set_physical_link("z", "a", security=0.5)
        user_input.set_physical_link("a", "z", delay=0.1)
        assert user_input.physical_link_params[("a", "z")] == {
            "security": 0.5, "delay": 0.1}

    def test_collocate_and_separate(self):
        user_input = UserInput().collocate("a", "b").separate("c", "d")
        together, apart = user_input.constraints
        assert isinstance(together, CollocationConstraint) and together.together
        assert isinstance(apart, CollocationConstraint) and not apart.together


class TestApply:
    def test_writes_params_into_model(self, tiny_model):
        user_input = (UserInput()
                      .set_host("hA", memory=42.0)
                      .set_component("c1", memory=3.0)
                      .set_physical_link("hA", "hB", security=0.25)
                      .set_logical_link("c1", "c2", frequency=9.0))
        user_input.apply(tiny_model)
        assert tiny_model.host("hA").memory == 42.0
        assert tiny_model.component("c1").memory == 3.0
        assert tiny_model.physical_link("hA", "hB").params.get(
            "security") == 0.25
        assert tiny_model.frequency("c1", "c2") == 9.0

    def test_constraints_added_to_model(self, tiny_model):
        user_input = UserInput().restrict_location("c1", allowed=["hA"])
        user_input.apply(tiny_model)
        assert any(isinstance(c, LocationConstraint)
                   for c in tiny_model.constraints)

    def test_apply_twice_does_not_duplicate_constraints(self, tiny_model):
        user_input = UserInput().restrict_location("c1", allowed=["hA"])
        user_input.apply(tiny_model)
        user_input.apply(tiny_model)
        assert len(tiny_model.constraints) == 1

    def test_unknown_entities_skipped(self, tiny_model):
        """A decentralized host's partial model only takes what it knows."""
        user_input = (UserInput()
                      .set_host("ghost", memory=1.0)
                      .set_component("phantom", memory=1.0)
                      .set_physical_link("hA", "ghost", security=0.1)
                      .set_logical_link("c1", "phantom", frequency=1.0)
                      .set_host("hA", memory=77.0))
        user_input.apply(tiny_model)  # must not raise
        assert tiny_model.host("hA").memory == 77.0
        assert not tiny_model.has_host("ghost")

    def test_replay_onto_restricted_view(self, tiny_model):
        user_input = (UserInput()
                      .set_host("hA", memory=55.0)
                      .set_host("hB", memory=66.0))
        view = tiny_model.restricted_to(["hA"])
        user_input.apply(view)
        assert view.host("hA").memory == 55.0
        assert not view.has_host("hB")
