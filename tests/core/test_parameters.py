"""Unit tests for the extensible parameter registry."""

import math

import pytest

from repro.core import parameters as P
from repro.core.errors import ParameterError
from repro.core.parameters import (
    ParameterBag, ParameterDefinition, ParameterRegistry, standard_registry,
)


class TestParameterDefinition:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ParameterError, match="kind"):
            ParameterDefinition("x", "gadget")

    def test_validate_within_bounds(self):
        definition = ParameterDefinition("rel", P.PHYSICAL_LINK,
                                         minimum=0.0, maximum=1.0)
        assert definition.validate(0.5) == 0.5
        assert definition.validate(0.0) == 0.0
        assert definition.validate(1.0) == 1.0

    def test_validate_below_minimum(self):
        definition = ParameterDefinition("rel", P.PHYSICAL_LINK, minimum=0.0)
        with pytest.raises(ParameterError, match="minimum"):
            definition.validate(-0.1)

    def test_validate_above_maximum(self):
        definition = ParameterDefinition("rel", P.PHYSICAL_LINK, maximum=1.0)
        with pytest.raises(ParameterError, match="maximum"):
            definition.validate(1.1)

    def test_validate_rejects_nan(self):
        definition = ParameterDefinition("bw", P.PHYSICAL_LINK)
        with pytest.raises(ParameterError, match="NaN"):
            definition.validate(float("nan"))

    def test_custom_validator(self):
        definition = ParameterDefinition(
            "level", P.HOST, validator=lambda v: v in ("low", "high"))
        assert definition.validate("low") == "low"
        with pytest.raises(ParameterError, match="validator"):
            definition.validate("medium")

    def test_bool_values_skip_numeric_bounds(self):
        definition = ParameterDefinition("on", P.HOST, minimum=5.0)
        # True would fail a numeric minimum of 5; bools are flags.
        assert definition.validate(True) is True


class TestParameterRegistry:
    def test_register_and_get(self):
        registry = ParameterRegistry()
        definition = ParameterDefinition("power", P.HOST, default=3.0)
        registry.register(definition)
        assert registry.get(P.HOST, "power") is definition
        assert registry.has(P.HOST, "power")

    def test_duplicate_registration_rejected(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("power", P.HOST))
        with pytest.raises(ParameterError, match="already registered"):
            registry.register(ParameterDefinition("power", P.HOST))

    def test_same_name_different_kind_allowed(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("memory", P.HOST))
        registry.register(ParameterDefinition("memory", P.COMPONENT))
        assert len(registry) == 2

    def test_unregister(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("power", P.HOST))
        registry.unregister(P.HOST, "power")
        assert not registry.has(P.HOST, "power")

    def test_unregister_missing_raises(self):
        registry = ParameterRegistry()
        with pytest.raises(ParameterError, match="not registered"):
            registry.unregister(P.HOST, "power")

    def test_get_missing_raises(self):
        registry = ParameterRegistry()
        with pytest.raises(ParameterError, match="not registered"):
            registry.get(P.HOST, "power")

    def test_defined_for_sorted_by_name(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("zeta", P.HOST))
        registry.register(ParameterDefinition("alpha", P.HOST))
        registry.register(ParameterDefinition("other", P.COMPONENT))
        names = [d.name for d in registry.defined_for(P.HOST)]
        assert names == ["alpha", "zeta"]

    def test_default_values(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("a", P.HOST, default=1.0))
        registry.register(ParameterDefinition("b", P.HOST, default=2.0))
        assert registry.default_values(P.HOST) == {"a": 1.0, "b": 2.0}

    def test_monitorable_filter(self):
        registry = standard_registry()
        monitorable = {d.name for d in registry.monitorable(P.PHYSICAL_LINK)}
        assert "reliability" in monitorable
        assert "security" not in monitorable  # user-input parameter

    def test_copy_is_independent(self):
        registry = ParameterRegistry()
        registry.register(ParameterDefinition("a", P.HOST))
        clone = registry.copy()
        clone.register(ParameterDefinition("b", P.HOST))
        assert not registry.has(P.HOST, "b")
        assert clone.has(P.HOST, "a")

    def test_iteration_order_is_deterministic(self):
        registry = standard_registry()
        first = [d.name for d in registry]
        second = [d.name for d in registry]
        assert first == second


class TestStandardRegistry:
    def test_section_5_1_parameters_present(self):
        """The model of Section 5.1 needs exactly these parameter kinds."""
        registry = standard_registry()
        assert registry.has(P.COMPONENT, "memory")
        assert registry.has(P.HOST, "memory")
        assert registry.has(P.LOGICAL_LINK, "frequency")
        assert registry.has(P.LOGICAL_LINK, "evt_size")
        assert registry.has(P.PHYSICAL_LINK, "reliability")
        assert registry.has(P.PHYSICAL_LINK, "bandwidth")
        assert registry.has(P.PHYSICAL_LINK, "delay")

    def test_reliability_bounds(self):
        registry = standard_registry()
        with pytest.raises(ParameterError):
            registry.validate(P.PHYSICAL_LINK, "reliability", 1.5)
        with pytest.raises(ParameterError):
            registry.validate(P.PHYSICAL_LINK, "reliability", -0.5)

    def test_host_memory_defaults_unbounded(self):
        registry = standard_registry()
        assert registry.get(P.HOST, "memory").default == float("inf")


class TestParameterBag:
    def test_get_falls_back_to_default(self):
        bag = ParameterBag(P.HOST, standard_registry())
        assert bag.get("memory") == float("inf")

    def test_set_then_get(self):
        bag = ParameterBag(P.HOST, standard_registry())
        bag.set("memory", 64.0)
        assert bag.get("memory") == 64.0

    def test_set_validates(self):
        bag = ParameterBag(P.PHYSICAL_LINK, standard_registry())
        with pytest.raises(ParameterError):
            bag.set("reliability", 2.0)

    def test_set_unregistered_rejected(self):
        bag = ParameterBag(P.HOST, standard_registry())
        with pytest.raises(ParameterError, match="not registered"):
            bag.set("colour", "red")

    def test_explicit_excludes_defaults(self):
        bag = ParameterBag(P.HOST, standard_registry())
        bag.set("memory", 10.0)
        assert bag.explicit() == {"memory": 10.0}

    def test_as_dict_merges_defaults_and_explicit(self):
        bag = ParameterBag(P.HOST, standard_registry())
        bag.set("memory", 10.0)
        resolved = bag.as_dict()
        assert resolved["memory"] == 10.0
        assert resolved["cpu"] == float("inf")

    def test_runtime_parameter_extension(self):
        """New parameters can be added at run time (framework requirement)."""
        registry = standard_registry()
        bag = ParameterBag(P.HOST, registry)
        registry.register(ParameterDefinition(
            "trust", P.HOST, default=0.5, minimum=0.0, maximum=1.0))
        assert bag.get("trust") == 0.5
        bag.set("trust", 0.9)
        assert bag.get("trust") == 0.9
