"""Unit tests for objective functions."""

import pytest

from repro.core.model import DeploymentModel
from repro.core.objectives import (
    MAXIMIZE, MINIMIZE, UNREACHABLE_COST, AvailabilityObjective,
    CommunicationCostObjective, LatencyObjective, SecurityObjective,
    WeightedObjective, evaluate_all,
)


class TestAvailability:
    def test_hand_computed_value(self, tiny_model):
        """A = (4*1.0 [c1-c2 local] + 1*0.5 [c2-c3 over link]) / 5."""
        objective = AvailabilityObjective()
        value = objective.evaluate(tiny_model, tiny_model.deployment)
        assert value == pytest.approx((4 * 1.0 + 1 * 0.5) / 5.0)

    def test_all_collocated_is_perfect(self, tiny_model):
        objective = AvailabilityObjective()
        together = {"c1": "hA", "c2": "hA", "c3": "hA"}
        assert objective.evaluate(tiny_model, together) == pytest.approx(1.0)

    def test_no_interactions_is_perfect(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_component("c1")
        model.deploy("c1", "h1")
        assert AvailabilityObjective().evaluate(model, model.deployment) == 1.0

    def test_undeployed_component_delivers_nothing(self, tiny_model):
        objective = AvailabilityObjective()
        partial = {"c1": "hA", "c2": "hA"}  # c3 missing
        assert objective.evaluate(tiny_model, partial) == \
            pytest.approx(4.0 / 5.0)

    def test_bounded_in_unit_interval(self, medium_model):
        objective = AvailabilityObjective()
        value = objective.evaluate(medium_model, medium_model.deployment)
        assert 0.0 <= value <= 1.0

    def test_move_delta_matches_recompute(self, small_model):
        objective = AvailabilityObjective()
        deployment = dict(small_model.deployment)
        base = objective.evaluate(small_model, deployment)
        for component in small_model.component_ids:
            for host in small_model.host_ids:
                delta = objective.move_delta(small_model, deployment,
                                             component, host)
                moved = dict(deployment)
                moved[component] = host
                expected = objective.evaluate(small_model, moved) - base
                assert delta == pytest.approx(expected, abs=1e-12)

    def test_criticality_weighting(self, tiny_model):
        tiny_model.set_logical_link_param("c2", "c3", "criticality", 10.0)
        plain = AvailabilityObjective()
        weighted = AvailabilityObjective(use_criticality=True)
        deployment = tiny_model.deployment
        # Criticality amplifies the unreliable c2-c3 interaction's weight,
        # so weighted availability must be lower.
        assert weighted.evaluate(tiny_model, deployment) < \
            plain.evaluate(tiny_model, deployment)

    def test_direction_helpers(self):
        objective = AvailabilityObjective()
        assert objective.direction == MAXIMIZE
        assert objective.is_better(0.9, 0.5)
        assert not objective.is_better(0.5, 0.9)
        assert objective.worst_value() == float("-inf")
        assert objective.improvement(0.9, 0.5) == pytest.approx(0.4)


class TestLatency:
    def test_local_interactions_cost_dispatch_only(self, tiny_model):
        objective = LatencyObjective(local_dispatch_cost=1e-5)
        together = {"c1": "hA", "c2": "hA", "c3": "hA"}
        assert objective.evaluate(tiny_model, together) == \
            pytest.approx(5.0 * 1e-5)

    def test_remote_cost_uses_delay_and_bandwidth(self, tiny_model):
        objective = LatencyObjective(local_dispatch_cost=0.0)
        deployment = tiny_model.deployment  # c2-c3 remote: freq 1, size 1
        expected = 1.0 * (0.01 + 1.0 / 100.0)
        assert objective.evaluate(tiny_model, deployment) == \
            pytest.approx(expected)

    def test_unreachable_pair_charged_heavily(self):
        model = DeploymentModel()
        model.add_host("h1")
        model.add_host("h2")  # no link
        model.add_component("c1")
        model.add_component("c2")
        model.connect_components("c1", "c2", frequency=2.0)
        deployment = {"c1": "h1", "c2": "h2"}
        objective = LatencyObjective()
        assert objective.evaluate(model, deployment) == \
            pytest.approx(2.0 * UNREACHABLE_COST)

    def test_down_link_is_unreachable(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "connected", False)
        objective = LatencyObjective()
        value = objective.evaluate(tiny_model, tiny_model.deployment)
        assert value >= UNREACHABLE_COST

    def test_move_delta_matches_recompute(self, small_model):
        objective = LatencyObjective()
        deployment = dict(small_model.deployment)
        base = objective.evaluate(small_model, deployment)
        for component in small_model.component_ids[:4]:
            for host in small_model.host_ids:
                delta = objective.move_delta(small_model, deployment,
                                             component, host)
                moved = dict(deployment)
                moved[component] = host
                expected = objective.evaluate(small_model, moved) - base
                assert delta == pytest.approx(expected, rel=1e-9)

    def test_minimize_direction(self):
        objective = LatencyObjective()
        assert objective.direction == MINIMIZE
        assert objective.is_better(1.0, 2.0)
        assert objective.worst_value() == float("inf")
        assert objective.improvement(1.0, 2.0) == pytest.approx(1.0)


class TestCommunicationCost:
    def test_counts_remote_volume_only(self, tiny_model):
        objective = CommunicationCostObjective()
        deployment = tiny_model.deployment
        # Only c2-c3 is remote: freq 1 * size 1.
        assert objective.evaluate(tiny_model, deployment) == pytest.approx(1.0)

    def test_all_local_is_free(self, tiny_model):
        objective = CommunicationCostObjective()
        together = {"c1": "hA", "c2": "hA", "c3": "hA"}
        assert objective.evaluate(tiny_model, together) == 0.0

    def test_move_delta_matches_recompute(self, small_model):
        objective = CommunicationCostObjective()
        deployment = dict(small_model.deployment)
        base = objective.evaluate(small_model, deployment)
        for component in small_model.component_ids[:4]:
            for host in small_model.host_ids:
                delta = objective.move_delta(small_model, deployment,
                                             component, host)
                moved = dict(deployment)
                moved[component] = host
                assert delta == pytest.approx(
                    objective.evaluate(small_model, moved) - base, abs=1e-12)


class TestSecurity:
    def test_uses_link_security_parameter(self, tiny_model):
        tiny_model.set_physical_link_param("hA", "hB", "security", 0.2)
        objective = SecurityObjective()
        value = objective.evaluate(tiny_model, tiny_model.deployment)
        assert value == pytest.approx((4 * 1.0 + 1 * 0.2) / 5.0)

    def test_collocation_is_fully_secure(self, tiny_model):
        objective = SecurityObjective()
        together = {"c1": "hB", "c2": "hB", "c3": "hB"}
        assert objective.evaluate(tiny_model, together) == 1.0


class TestWeighted:
    def test_requires_terms(self):
        with pytest.raises(ValueError):
            WeightedObjective([])

    def test_scale_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WeightedObjective([(AvailabilityObjective(), 1.0)],
                              scales=[1.0, 2.0])

    def test_direction_normalization(self, tiny_model):
        """Minimize-terms contribute negatively, so less latency scores
        higher."""
        combo = WeightedObjective([
            (AvailabilityObjective(), 1.0),
            (LatencyObjective(), 1.0),
        ])
        together = {"c1": "hA", "c2": "hA", "c3": "hA"}
        split = dict(tiny_model.deployment)
        assert combo.evaluate(tiny_model, together) > \
            combo.evaluate(tiny_model, split)

    def test_move_delta_matches_recompute(self, tiny_model):
        combo = WeightedObjective([
            (AvailabilityObjective(), 2.0),
            (CommunicationCostObjective(), 0.5),
        ])
        deployment = dict(tiny_model.deployment)
        base = combo.evaluate(tiny_model, deployment)
        delta = combo.move_delta(tiny_model, deployment, "c3", "hA")
        moved = dict(deployment)
        moved["c3"] = "hA"
        assert delta == pytest.approx(
            combo.evaluate(tiny_model, moved) - base, abs=1e-12)

    def test_breakdown_reports_each_term(self, tiny_model):
        combo = WeightedObjective([
            (AvailabilityObjective(), 1.0),
            (LatencyObjective(), 1.0),
        ])
        breakdown = combo.breakdown(tiny_model, tiny_model.deployment)
        assert set(breakdown) == {"availability", "latency"}


def test_evaluate_all(tiny_model):
    values = evaluate_all(
        [AvailabilityObjective(), CommunicationCostObjective()],
        tiny_model, tiny_model.deployment)
    assert values["availability"] == pytest.approx(0.9)
    assert values["communication_cost"] == pytest.approx(1.0)
