"""Tests for the §6 extension objectives (throughput, durability) and the
utility/preferences module."""

import pytest

from repro.algorithms import HillClimbingAlgorithm
from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel,
    DurabilityObjective, LatencyObjective, MemoryConstraint,
    SatisfactionObjective, ThroughputObjective, UserPreferences,
    UtilityFunction, overall_satisfaction,
)
from repro.core.errors import ModelError


@pytest.fixture
def battery_model():
    """Mains-powered hub plus two battery nodes."""
    model = DeploymentModel()
    model.add_host("hub", memory=1000.0)  # infinite battery (default)
    model.add_host("node1", memory=100.0, battery=100.0)
    model.add_host("node2", memory=100.0, battery=400.0)
    model.connect_hosts("hub", "node1", reliability=0.9, bandwidth=50.0)
    model.connect_hosts("hub", "node2", reliability=0.9, bandwidth=50.0)
    model.connect_hosts("node1", "node2", reliability=0.8, bandwidth=20.0)
    model.add_component("worker", memory=10.0, cpu=50.0)
    model.add_component("peer", memory=10.0, cpu=10.0)
    model.connect_components("worker", "peer", frequency=4.0, evt_size=2.0)
    model.deploy("worker", "node1")
    model.deploy("peer", "node2")
    return model


class TestThroughputObjective:
    def test_local_traffic_is_free(self, battery_model):
        objective = ThroughputObjective()
        together = {"worker": "hub", "peer": "hub"}
        assert objective.evaluate(battery_model, together) == 0.0

    def test_utilization_is_volume_over_bandwidth(self, battery_model):
        objective = ThroughputObjective()
        split = {"worker": "node1", "peer": "node2"}
        # 4 evt/s * 2 KB over a 20 KB/s link = 0.4.
        assert objective.evaluate(battery_model, split) == pytest.approx(0.4)

    def test_bottleneck_is_the_max(self):
        model = DeploymentModel()
        for host in ("a", "b", "c"):
            model.add_host(host)
        model.connect_hosts("a", "b", bandwidth=100.0)
        model.connect_hosts("b", "c", bandwidth=1.0)  # the bottleneck
        for component in ("x", "y", "z"):
            model.add_component(component)
        model.connect_components("x", "y", frequency=1.0, evt_size=1.0)
        model.connect_components("y", "z", frequency=1.0, evt_size=1.0)
        deployment = {"x": "a", "y": "b", "z": "c"}
        assert ThroughputObjective().evaluate(model, deployment) == \
            pytest.approx(1.0)  # 1 KB/s over the 1 KB/s link dominates

    def test_unlinked_pair_saturates(self):
        model = DeploymentModel()
        model.add_host("a")
        model.add_host("b")
        model.add_component("x")
        model.add_component("y")
        model.connect_components("x", "y", frequency=1.0)
        value = ThroughputObjective().evaluate(model, {"x": "a", "y": "b"})
        assert value == ThroughputObjective.UNREACHABLE_UTILIZATION

    def test_optimizable_by_stock_algorithms(self, battery_model):
        objective = ThroughputObjective()
        result = HillClimbingAlgorithm(
            objective, ConstraintSet([MemoryConstraint()]),
            seed=1).run(battery_model)
        assert result.valid
        assert result.value <= objective.evaluate(
            battery_model, battery_model.deployment)


class TestDurabilityObjective:
    def test_moving_load_off_weak_battery_helps(self, battery_model):
        objective = DurabilityObjective()
        weak_loaded = {"worker": "node1", "peer": "node2"}
        hub_loaded = {"worker": "hub", "peer": "hub"}
        assert objective.evaluate(battery_model, hub_loaded) > \
            objective.evaluate(battery_model, weak_loaded)

    def test_lifetime_formula(self, battery_model):
        objective = DurabilityObjective(idle_draw=1.0, cpu_coefficient=0.1,
                                        radio_coefficient=0.05)
        deployment = {"worker": "node1", "peer": "node2"}
        # node1: draw = 1 + 0.1*50 + 0.05*(4*2) = 6.4 ; life = 100/6.4
        assert objective.host_lifetime(
            battery_model, deployment, "node1") == pytest.approx(100 / 6.4)

    def test_system_lifetime_is_minimum(self, battery_model):
        objective = DurabilityObjective()
        deployment = {"worker": "node1", "peer": "node2"}
        lifetimes = [
            objective.host_lifetime(battery_model, deployment, host)
            for host in ("node1", "node2")
        ]
        assert objective.evaluate(battery_model, deployment) == \
            pytest.approx(min(lifetimes))

    def test_mains_only_system_is_maximal(self):
        model = DeploymentModel()
        model.add_host("mains")
        model.add_component("c")
        model.deploy("c", "mains")
        objective = DurabilityObjective(max_lifetime=123.0)
        assert objective.evaluate(model, model.deployment) == 123.0

    def test_optimization_drains_toward_mains(self, battery_model):
        objective = DurabilityObjective()
        result = HillClimbingAlgorithm(
            objective, ConstraintSet([MemoryConstraint()]),
            seed=1).run(battery_model)
        assert result.valid
        # The CPU-hungry worker ends up on the mains-powered hub.
        assert result.deployment["worker"] == "hub"


class TestUtilityFunctions:
    def test_curve_validation(self):
        objective = AvailabilityObjective()
        with pytest.raises(ModelError):
            UtilityFunction(objective, [(0.5, 0.5)])  # one point
        with pytest.raises(ModelError):
            UtilityFunction(objective, [(0.5, 0.0), (0.4, 1.0)])  # not increasing
        with pytest.raises(ModelError):
            UtilityFunction(objective, [(0.0, 0.0), (1.0, 1.5)])  # utility > 1

    def test_interpolation_and_clamping(self):
        curve = UtilityFunction(AvailabilityObjective(),
                                [(0.5, 0.0), (0.9, 1.0)])
        assert curve.utility_of_value(0.3) == 0.0
        assert curve.utility_of_value(0.95) == 1.0
        assert curve.utility_of_value(0.7) == pytest.approx(0.5)

    def test_utility_of_deployment(self, tiny_model):
        curve = UtilityFunction(AvailabilityObjective(),
                                [(0.0, 0.0), (1.0, 1.0)])
        # tiny_model's availability is 0.9; identity curve passes through.
        assert curve.utility(tiny_model, tiny_model.deployment) == \
            pytest.approx(0.9)


class TestUserPreferences:
    def make_user(self, name="ops"):
        availability_curve = UtilityFunction(
            AvailabilityObjective(), [(0.5, 0.0), (1.0, 1.0)])
        latency_curve = UtilityFunction(
            LatencyObjective(), [(0.0, 1.0), (10.0, 0.0)])
        return (UserPreferences(name)
                .add(availability_curve, weight=2.0)
                .add(latency_curve, weight=1.0))

    def test_satisfaction_weighted(self, tiny_model):
        user = self.make_user()
        score = user.satisfaction(tiny_model, tiny_model.deployment)
        assert 0.0 <= score <= 1.0
        breakdown = user.breakdown(tiny_model, tiny_model.deployment)
        expected = (2.0 * breakdown["availability"]
                    + 1.0 * breakdown["latency"]) / 3.0
        assert score == pytest.approx(expected)

    def test_invalid_weight_rejected(self):
        user = UserPreferences("x")
        with pytest.raises(ModelError):
            user.add(UtilityFunction(AvailabilityObjective(),
                                     [(0.0, 0.0), (1.0, 1.0)]), weight=0.0)

    def test_no_preferences_trivially_satisfied(self, tiny_model):
        assert UserPreferences("zen").satisfaction(
            tiny_model, tiny_model.deployment) == 1.0

    def test_overall_satisfaction_is_mean(self, tiny_model):
        users = [self.make_user("a"), UserPreferences("zen")]
        overall = overall_satisfaction(users, tiny_model,
                                       tiny_model.deployment)
        individual = users[0].satisfaction(tiny_model, tiny_model.deployment)
        assert overall == pytest.approx((individual + 1.0) / 2.0)


class TestSatisfactionObjective:
    def test_requires_users(self):
        with pytest.raises(ModelError):
            SatisfactionObjective([])

    def test_optimizing_satisfaction(self, tiny_model):
        availability_curve = UtilityFunction(
            AvailabilityObjective(), [(0.5, 0.0), (1.0, 1.0)])
        user = UserPreferences("ops").add(availability_curve)
        objective = SatisfactionObjective([user])
        result = HillClimbingAlgorithm(objective, ConstraintSet(),
                                       seed=1).run(tiny_model)
        assert result.valid
        assert result.value == pytest.approx(1.0)  # full collocation

    def test_least_satisfied_diagnostic(self, tiny_model):
        happy = UserPreferences("happy")  # no prefs -> satisfaction 1.0
        picky = UserPreferences("picky").add(UtilityFunction(
            AvailabilityObjective(), [(0.99, 0.0), (1.0, 1.0)]))
        objective = SatisfactionObjective([happy, picky])
        name, score = objective.least_satisfied(tiny_model,
                                                tiny_model.deployment)
        assert name == "picky"
        assert score < 0.5
