"""Unit tests for hard constraints and the ConstraintChecker."""

import pytest

from repro.core.constraints import (
    BandwidthConstraint, CollocationConstraint, ConstraintSet, CpuConstraint,
    LocationConstraint, MemoryConstraint, fix_component, standard_constraints,
)
from repro.core.model import DeploymentModel


@pytest.fixture
def model():
    m = DeploymentModel()
    m.add_host("big", memory=100.0, cpu=10.0)
    m.add_host("small", memory=15.0, cpu=2.0)
    m.connect_hosts("big", "small", reliability=0.9, bandwidth=10.0)
    m.add_component("heavy", memory=50.0, cpu=5.0)
    m.add_component("light", memory=10.0, cpu=1.0)
    m.add_component("mini", memory=5.0, cpu=0.5)
    m.connect_components("heavy", "light", frequency=4.0, evt_size=2.0)
    m.connect_components("light", "mini", frequency=1.0, evt_size=1.0)
    return m


class TestMemoryConstraint:
    def test_satisfied(self, model):
        constraint = MemoryConstraint()
        assert constraint.is_satisfied(
            model, {"heavy": "big", "light": "big", "mini": "small"})

    def test_violated(self, model):
        constraint = MemoryConstraint()
        deployment = {"heavy": "small"}
        assert not constraint.is_satisfied(model, deployment)
        violations = constraint.violations(model, deployment)
        assert len(violations) == 1
        assert "small" in violations[0]

    def test_allows_incremental(self, model):
        constraint = MemoryConstraint()
        partial = {"light": "small"}
        assert constraint.allows(model, partial, "mini", "small")
        assert not constraint.allows(model, partial, "heavy", "small")

    def test_allows_ignores_current_placement_of_moved_component(self, model):
        """Re-placing a component on its own host must not double-count."""
        constraint = MemoryConstraint()
        partial = {"light": "small", "mini": "small"}
        assert constraint.allows(model, partial, "light", "small")

    def test_exactly_full_is_allowed(self, model):
        constraint = MemoryConstraint()
        assert constraint.allows(model, {"light": "small"}, "mini", "small")
        # 10 + 5 == 15 exactly.
        assert constraint.is_satisfied(
            model, {"light": "small", "mini": "small",
                    "heavy": "big"})


class TestCpuConstraint:
    def test_satisfied_and_violated(self, model):
        constraint = CpuConstraint()
        assert constraint.is_satisfied(model, {"heavy": "big"})
        assert not constraint.is_satisfied(model, {"heavy": "small"})

    def test_allows(self, model):
        constraint = CpuConstraint()
        assert constraint.allows(model, {}, "light", "small")
        assert not constraint.allows(model, {"light": "small",
                                             "mini": "small"},
                                     "heavy", "small")


class TestLocationConstraint:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            LocationConstraint("c")
        with pytest.raises(ValueError):
            LocationConstraint("c", allowed=["h"], forbidden=["g"])

    def test_allowed_whitelist(self, model):
        constraint = LocationConstraint("heavy", allowed=["big"])
        assert constraint.is_satisfied(model, {"heavy": "big"})
        assert not constraint.is_satisfied(model, {"heavy": "small"})

    def test_forbidden_blacklist(self, model):
        constraint = LocationConstraint("heavy", forbidden=["small"])
        assert constraint.is_satisfied(model, {"heavy": "big"})
        assert not constraint.is_satisfied(model, {"heavy": "small"})

    def test_unplaced_component_is_fine(self, model):
        constraint = LocationConstraint("heavy", allowed=["big"])
        assert constraint.is_satisfied(model, {})

    def test_allows_only_filters_its_component(self, model):
        constraint = LocationConstraint("heavy", allowed=["big"])
        assert constraint.allows(model, {}, "light", "small")
        assert not constraint.allows(model, {}, "heavy", "small")

    def test_fix_component_helper(self, model):
        constraint = fix_component("heavy", "big")
        assert constraint.permits_host("big")
        assert not constraint.permits_host("small")

    def test_violation_message(self, model):
        constraint = LocationConstraint("heavy", allowed=["big"])
        messages = constraint.violations(model, {"heavy": "small"})
        assert "heavy" in messages[0]


class TestCollocationConstraint:
    def test_needs_two_components(self):
        with pytest.raises(ValueError):
            CollocationConstraint(["only"], together=True)

    def test_together_satisfied(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=True)
        assert constraint.is_satisfied(model, {"heavy": "big", "light": "big"})
        assert not constraint.is_satisfied(
            model, {"heavy": "big", "light": "small"})

    def test_apart_satisfied(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=False)
        assert constraint.is_satisfied(
            model, {"heavy": "big", "light": "small"})
        assert not constraint.is_satisfied(
            model, {"heavy": "big", "light": "big"})

    def test_partial_together_not_rejected_early(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=True)
        # Only one member placed: must not be considered violated.
        assert constraint.is_satisfied_partial(model, {"heavy": "big"})

    def test_allows_together(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=True)
        assert constraint.allows(model, {"heavy": "big"}, "light", "big")
        assert not constraint.allows(model, {"heavy": "big"}, "light", "small")

    def test_allows_apart(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=False)
        assert not constraint.allows(model, {"heavy": "big"}, "light", "big")
        assert constraint.allows(model, {"heavy": "big"}, "light", "small")

    def test_allows_ignores_other_components(self, model):
        constraint = CollocationConstraint(["heavy", "light"], together=False)
        assert constraint.allows(model, {"heavy": "big"}, "mini", "big")


class TestBandwidthConstraint:
    def test_within_capacity(self, model):
        constraint = BandwidthConstraint()
        # heavy-light local on big; light-mini crosses: 1*1=1 <= 10.
        assert constraint.is_satisfied(
            model, {"heavy": "big", "light": "big", "mini": "small"})

    def test_over_capacity(self, model):
        constraint = BandwidthConstraint()
        # heavy-light crosses: 4*2=8; light-mini local; total 8 <= 10 OK.
        deployment = {"heavy": "big", "light": "small", "mini": "small"}
        assert constraint.is_satisfied(model, deployment)
        # Raise the volume beyond the link capacity.
        model.set_logical_link_param("heavy", "light", "frequency", 10.0)
        assert not constraint.is_satisfied(model, deployment)
        violations = constraint.violations(model, deployment)
        assert "big" in violations[0] and "small" in violations[0]

    def test_unlinked_hosts_with_traffic_rejected(self):
        m = DeploymentModel()
        m.add_host("h1")
        m.add_host("h2")  # no physical link
        m.add_component("a")
        m.add_component("b")
        m.connect_components("a", "b", frequency=1.0, evt_size=1.0)
        constraint = BandwidthConstraint()
        assert not constraint.is_satisfied(m, {"a": "h1", "b": "h2"})


class TestConstraintSet:
    def test_aggregates_all(self, model):
        checker = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint("heavy", allowed=["big"]),
        ])
        good = {"heavy": "big", "light": "small", "mini": "small"}
        assert checker.is_satisfied(model, good)
        bad = {"heavy": "small", "light": "big", "mini": "big"}
        assert not checker.is_satisfied(model, bad)
        assert len(checker.violations(model, bad)) == 2

    def test_allows_intersects_members(self, model):
        checker = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint("heavy", allowed=["big"]),
        ])
        assert checker.allows(model, {}, "heavy", "big")
        assert not checker.allows(model, {}, "heavy", "small")

    def test_allowed_hosts(self, model):
        checker = ConstraintSet([
            MemoryConstraint(),
            LocationConstraint("mini", forbidden=["big"]),
        ])
        assert checker.allowed_hosts(model, {}, "mini") == ("small",)
        assert checker.allowed_hosts(model, {}, "light") == ("big", "small")

    def test_empty_set_allows_everything(self, model):
        checker = ConstraintSet()
        assert checker.is_satisfied(model, {"heavy": "small"})

    def test_add_chains(self, model):
        checker = ConstraintSet().add(MemoryConstraint()).add(CpuConstraint())
        assert len(checker) == 2

    def test_standard_constraints(self):
        checker = standard_constraints()
        kinds = {type(c) for c in checker}
        assert kinds == {MemoryConstraint, BandwidthConstraint}


class TestConstraintSetEdgeCases:
    def test_empty_set_has_no_violations_and_allows_all_hosts(self, model):
        checker = ConstraintSet()
        assert checker.violations(model, {"heavy": "small"}) == []
        assert checker.allowed_hosts(model, {}, "heavy") == ("big", "small")
        assert len(checker) == 0

    def test_mutually_unsatisfiable_constraints(self, model):
        # "heavy only on big" + "heavy never on big" leaves no host at all.
        checker = ConstraintSet([
            LocationConstraint("heavy", allowed=["big"]),
            LocationConstraint("heavy", forbidden=["big"]),
        ])
        assert checker.allowed_hosts(model, {}, "heavy") == ()
        for host in model.host_ids:
            assert not checker.allows(model, {}, "heavy", host)
        # Any placement of heavy violates exactly one of the two.
        assert len(checker.violations(model, {"heavy": "big"})) == 1
        assert len(checker.violations(model, {"heavy": "small"})) == 1

    def test_unsatisfiable_pair_surfaces_in_lint(self, model):
        from repro.lint.model_rules import verify_model
        checker = ConstraintSet([
            LocationConstraint("heavy", allowed=["big"]),
            LocationConstraint("heavy", forbidden=["big"]),
        ])
        report = verify_model(model, constraints=checker,
                              tags=("topology",))
        assert any(f.rule == "MV012" and "heavy" in f.subject
                   for f in report)

    def test_constraint_over_absent_component(self, model):
        constraint = LocationConstraint("missing", allowed=["big"])
        checker = ConstraintSet([constraint])
        # A constraint about an undeclared component never fires on the
        # declared ones, and placements of declared components stay legal.
        assert checker.is_satisfied(model, {"heavy": "big"})
        assert checker.allows(model, {}, "heavy", "small")
        assert constraint.is_satisfied(model, {"heavy": "small"})

    def test_collocation_with_absent_member_is_inert(self, model):
        checker = ConstraintSet(
            [CollocationConstraint(["heavy", "missing"], together=True)])
        assert checker.is_satisfied(model, {"heavy": "big"})
