"""Unit tests for the analyzer's Section-5.1 policy."""

import pytest

from repro.algorithms import HillClimbingAlgorithm
from repro.core.analyzer import Analyzer, ObjectiveHistory
from repro.core.constraints import ConstraintSet, MemoryConstraint
from repro.core.errors import RegistryError
from repro.core.objectives import AvailabilityObjective, LatencyObjective


@pytest.fixture
def analyzer():
    return Analyzer(AvailabilityObjective(),
                    ConstraintSet([MemoryConstraint()]),
                    seed=5)


class TestObjectiveHistory:
    def test_volatility_requires_window(self):
        history = ObjectiveHistory()
        history.record(0.0, 0.9)
        assert history.volatility(window=3) is None

    def test_volatility_is_spread(self):
        history = ObjectiveHistory()
        for time, value in enumerate((0.8, 0.9, 0.85)):
            history.record(float(time), value)
        assert history.volatility(window=3) == pytest.approx(0.1)

    def test_is_stable(self):
        history = ObjectiveHistory()
        for time in range(5):
            history.record(float(time), 0.9)
        assert history.is_stable(threshold=0.05, window=5) is True
        history.record(5.0, 0.2)
        assert history.is_stable(threshold=0.05, window=5) is False

    def test_bounded_size(self):
        history = ObjectiveHistory(max_samples=10)
        for time in range(25):
            history.record(float(time), 0.5)
        assert len(history.samples) == 10
        assert history.samples[0][0] == 15.0


class TestAlgorithmSelection:
    def test_tiny_system_uses_exact(self, analyzer, tiny_model):
        assert analyzer.select_algorithms(tiny_model) == ["exact"]

    def test_large_system_never_uses_exact(self, analyzer, medium_model):
        names = analyzer.select_algorithms(medium_model)
        assert "exact" not in names

    def test_unstable_profile_selects_fast_tier(self, analyzer, medium_model):
        for time, value in enumerate((0.9, 0.3, 0.8, 0.2, 0.9)):
            analyzer.history.record(float(time), value)
        assert analyzer.select_algorithms(medium_model) == ["stochastic_fast"]

    def test_stable_profile_selects_thorough_tier(self, analyzer,
                                                  medium_model):
        for time in range(5):
            analyzer.history.record(float(time), 0.9)
        names = analyzer.select_algorithms(medium_model)
        assert set(names) == {"avala", "stochastic", "hillclimb"}

    def test_no_profile_defaults_to_thorough(self, analyzer, medium_model):
        names = analyzer.select_algorithms(medium_model)
        assert set(names) == {"avala", "stochastic", "hillclimb"}

    def test_size_thresholds_configurable(self, medium_model):
        generous = Analyzer(AvailabilityObjective(),
                            exact_host_limit=100,
                            exact_component_limit=100)
        assert generous.select_algorithms(medium_model) == ["exact"]


class TestAlgorithmSuiteManagement:
    def test_register_and_unregister(self, analyzer):
        analyzer.register_algorithm(
            "extra", lambda: HillClimbingAlgorithm(
                analyzer.objective, analyzer.constraints), tier="fast")
        assert "extra" in analyzer.algorithm_names
        analyzer.unregister_algorithm("extra")
        assert "extra" not in analyzer.algorithm_names

    def test_register_moves_between_tiers(self, analyzer):
        analyzer.register_algorithm(
            "avala", lambda: HillClimbingAlgorithm(
                analyzer.objective, analyzer.constraints), tier="fast")
        assert "avala" in analyzer._tiers["fast"]
        assert "avala" not in analyzer._tiers["thorough"]

    def test_unknown_tier_rejected(self, analyzer):
        with pytest.raises(RegistryError):
            analyzer.register_algorithm("x", lambda: None, tier="bogus")


class TestDecisions:
    def test_improving_system_redeploys(self, analyzer, tiny_model):
        # Split the chatty pair across the 0.5-reliability link.
        tiny_model.deploy("c1", "hA")
        tiny_model.deploy("c2", "hB")
        decision = analyzer.analyze(tiny_model)
        assert decision.will_redeploy
        assert decision.plan is not None
        assert decision.selected.value > decision.current_value

    def test_already_optimal_no_action(self, analyzer, tiny_model):
        tiny_model.set_deployment({"c1": "hA", "c2": "hA", "c3": "hA"})
        decision = analyzer.analyze(tiny_model)
        assert not decision.will_redeploy
        assert "below threshold" in decision.reason or \
            "no algorithm" in decision.reason

    def test_min_improvement_threshold(self, tiny_model):
        picky = Analyzer(AvailabilityObjective(),
                         ConstraintSet([MemoryConstraint()]),
                         min_improvement=0.5)
        decision = picky.analyze(tiny_model)
        assert not decision.will_redeploy

    def test_latency_guard_vetoes(self, tiny_model):
        """Availability prefers collocation on either host, but we make hA's
        components enormous talkers so moving them over the slow link is a
        latency disaster; the guard must veto."""
        model = tiny_model
        # Slow, fairly reliable link: availability gain from collocating is
        # real but latency to ship big events is awful.
        model.set_physical_link_param("hA", "hB", "reliability", 0.98)
        model.set_physical_link_param("hA", "hB", "bandwidth", 0.5)
        model.set_logical_link_param("c1", "c2", "evt_size", 50.0)
        guarded = Analyzer(AvailabilityObjective(),
                           ConstraintSet([MemoryConstraint()]),
                           latency_guard=LatencyObjective(),
                           guard_tolerance=1.05,
                           min_improvement=0.001)
        unguarded = Analyzer(AvailabilityObjective(),
                             ConstraintSet([MemoryConstraint()]),
                             min_improvement=0.001)
        guarded_decision = guarded.analyze(model)
        unguarded_decision = unguarded.analyze(model)
        # Without the guard the analyzer would redeploy; with it, at least
        # some candidate is vetoed or a latency-acceptable one is chosen.
        assert unguarded_decision.will_redeploy
        if guarded_decision.will_redeploy:
            before = guarded_decision.guard_values["latency_before"]
            after = LatencyObjective().evaluate(
                model, guarded_decision.selected.deployment)
            assert after <= before * 1.05 + 1e-9
        else:
            assert "veto" in guarded_decision.reason

    def test_decisions_are_logged(self, analyzer, tiny_model):
        analyzer.analyze(tiny_model)
        analyzer.analyze(tiny_model)
        assert len(analyzer.decisions) == 2
        assert len(analyzer.history.samples) == 2

    def test_profile_summary(self, analyzer, tiny_model):
        analyzer.analyze(tiny_model, now=1.0)
        analyzer.record_outcome(True)
        summary = analyzer.profile_summary()
        assert summary["samples"] == 1
        assert summary["redeployments"] == 1

    def test_medium_system_decision_is_valid(self, medium_model):
        analyzer = Analyzer(AvailabilityObjective(),
                            ConstraintSet([MemoryConstraint()]), seed=2)
        decision = analyzer.analyze(medium_model)
        if decision.will_redeploy:
            assert decision.plan is not None
            checker = ConstraintSet([MemoryConstraint()])
            assert checker.is_satisfied(medium_model,
                                        decision.selected.deployment)


class TestPlanGuards:
    def unroutable_model(self):
        """Collocating the chatty pair would improve availability, but the
        hosts have no physical route between them at all."""
        from repro.core.model import DeploymentModel
        model = DeploymentModel(name="islands")
        model.add_host("hA", memory=100.0)
        model.add_host("hB", memory=100.0)
        model.add_component("c1", memory=10.0)
        model.add_component("c2", memory=10.0)
        model.connect_components("c1", "c2", frequency=4.0, evt_size=2.0)
        model.deploy("c1", "hA")
        model.deploy("c2", "hB")
        return model

    def test_unreachable_plan_is_refused(self, analyzer):
        decision = analyzer.analyze(self.unroutable_model())
        assert not decision.will_redeploy
        assert decision.reason.startswith(
            "plan moves components with no usable route:")

    def test_planner_feeds_schedule_guard_values(self, tiny_model):
        from repro.plan import MigrationPlanner
        tiny_model.deploy("c1", "hA")
        tiny_model.deploy("c2", "hB")
        constraints = ConstraintSet([MemoryConstraint()])
        scheduled = Analyzer(AvailabilityObjective(), constraints, seed=5,
                             planner=MigrationPlanner(tiny_model,
                                                      constraints))
        decision = scheduled.analyze(tiny_model)
        assert decision.will_redeploy
        assert decision.plan.schedule is not None
        assert decision.guard_values["predicted_makespan"] \
            == pytest.approx(decision.plan.schedule.makespan)
        assert decision.guard_values["predicted_disruption_kb"] \
            == pytest.approx(decision.plan.schedule.total_kb)

    def test_max_makespan_vetoes_slow_migrations(self, tiny_model):
        from repro.plan import MigrationPlanner
        tiny_model.deploy("c1", "hA")
        tiny_model.deploy("c2", "hB")
        constraints = ConstraintSet([MemoryConstraint()])
        picky = Analyzer(AvailabilityObjective(), constraints, seed=5,
                         planner=MigrationPlanner(tiny_model, constraints),
                         max_makespan=1e-9)
        decision = picky.analyze(tiny_model)
        assert not decision.will_redeploy
        assert "exceeds limit" in decision.reason
        assert "predicted_makespan" in decision.guard_values

    def test_without_planner_no_schedule_guards(self, analyzer, tiny_model):
        tiny_model.deploy("c1", "hA")
        tiny_model.deploy("c2", "hB")
        decision = analyzer.analyze(tiny_model)
        assert decision.will_redeploy
        assert "predicted_makespan" not in decision.guard_values
