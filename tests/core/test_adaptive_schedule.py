"""Tests for the framework's adaptive analysis scheduling."""

import pytest

from repro.core import (
    AvailabilityObjective, ConstraintSet, DeploymentModel, MemoryConstraint,
)
from repro.core.framework import CentralizedFramework
from repro.middleware import DistributedSystem
from repro.sim import InteractionWorkload, SimClock, StepChange


def build(seed=5):
    """c0 is pinned on h0 (a sensor wired to its hardware); its chatty
    partner c1 must live on h1 or h2, so the h0-h1 / h0-h2 link qualities
    decide the deployment — a degradation forces a reroute."""
    from repro.core.constraints import fix_component
    model = DeploymentModel(name="adaptive")
    model.add_host("h0", memory=10.0)
    model.add_host("h1", memory=40.0)
    model.add_host("h2", memory=40.0)
    model.connect_hosts("h0", "h1", reliability=0.95, bandwidth=500.0,
                        delay=0.005)
    model.connect_hosts("h0", "h2", reliability=0.85, bandwidth=500.0,
                        delay=0.005)
    model.connect_hosts("h1", "h2", reliability=0.9, bandwidth=500.0,
                        delay=0.005)
    for component in ("c0", "c1", "c2", "c3"):
        model.add_component(component, memory=10.0)
    model.connect_components("c0", "c1", frequency=3.0)
    model.connect_components("c2", "c3", frequency=3.0)
    placement = {"c0": "h0", "c1": "h1", "c2": "h1", "c3": "h2"}
    for component, host in placement.items():
        model.deploy(component, host)
    clock = SimClock()
    system = DistributedSystem(model, clock, seed=seed)
    framework = CentralizedFramework(
        system, AvailabilityObjective(),
        ConstraintSet([MemoryConstraint(), fix_component("c0", "h0")]),
        monitor_interval=2.0, seed=seed)
    return model, clock, system, framework


class TestAdaptiveSchedule:
    def test_quiet_system_backs_off(self):
        model, clock, system, framework = build()
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=6).start()
        framework.start(cycles_per_analysis=2, adaptive_schedule=True,
                        max_cycles_per_analysis=8)
        clock.run(200.0)
        framework.stop()
        workload.stop()
        # The system settles after the first redeployments: the cadence
        # must have stretched well beyond the base.
        assert framework.current_cycles_per_analysis > 2
        # Consequently, late analysis cycles are sparser than early ones.
        times = [cycle.time for cycle in framework.cycles]
        assert len(times) >= 3
        late_gap = times[-1] - times[-2]
        early_gap = times[1] - times[0]
        assert late_gap > early_gap

    def test_disturbance_snaps_cadence_back(self):
        model, clock, system, framework = build()
        workload = InteractionWorkload(model, clock, system.emit,
                                       seed=6).start()
        StepChange(system.network, "h0", "h1", at=100.0,
                   attribute="reliability", value=0.2).start()
        framework.start(cycles_per_analysis=2, adaptive_schedule=True,
                        max_cycles_per_analysis=8)
        clock.run(90.0)
        stretched = framework.current_cycles_per_analysis
        assert stretched > 2  # backed off while quiet
        clock.run(110.0)  # degradation hits; monitors notice; redeploy
        framework.stop()
        workload.stop()
        # Some post-disturbance cycle ran at the snapped-back cadence.
        assert any(cycle.effect is not None and cycle.time > 100.0
                   for cycle in framework.cycles)
        # After reacting, cadence restarted from base (it may have begun
        # stretching again, but from the base, so it is below the maximum
        # it had reached plus the quiet stretch that followed).
        assert framework.current_cycles_per_analysis <= 8

    def test_fixed_schedule_unchanged_by_default(self):
        model, clock, system, framework = build()
        framework.start(cycles_per_analysis=3)
        clock.run(60.0)
        framework.stop()
        assert framework.current_cycles_per_analysis == 3

    def test_max_cap_respected(self):
        model, clock, system, framework = build()
        # Put the system in its optimum so every analysis is quiet.
        model.set_deployment({"c0": "h0", "c1": "h0",
                              "c2": "h1", "c3": "h1"})
        system2 = DistributedSystem(model.copy(), SimClock(), seed=5)
        framework2 = CentralizedFramework(
            system2, AvailabilityObjective(),
            ConstraintSet([MemoryConstraint()]), monitor_interval=1.0,
            seed=5)
        framework2.start(cycles_per_analysis=1, adaptive_schedule=True,
                         max_cycles_per_analysis=4)
        system2.clock.run(200.0)
        framework2.stop()
        assert framework2.current_cycles_per_analysis <= 4
