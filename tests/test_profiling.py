"""Tests for the cProfile harness and ``python -m repro profile``."""

import json

import pytest

from repro.cli import main
from repro.profiling import ProfileReport, profile_callable


def _busy():
    total = 0
    for i in range(2000):
        total += i * i
    return total


class TestProfileCallable:
    def test_reports_profiled_function(self):
        report = profile_callable(_busy, target="busy loop", top=5)
        assert isinstance(report, ProfileReport)
        assert report.total_calls >= 1
        assert len(report.rows) <= 5
        assert any("_busy" in row.function for row in report.rows)

    def test_sort_tottime(self):
        report = profile_callable(_busy, target="busy", sort="tottime")
        times = [row.tottime for row in report.rows]
        assert times == sorted(times, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            profile_callable(_busy, target="busy", sort="calls")
        with pytest.raises(ValueError):
            profile_callable(_busy, target="busy", top=0)

    def test_exception_still_disables_profiler(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            profile_callable(boom, target="boom")
        # Profiling again must work (the first profiler was disabled).
        assert profile_callable(_busy, target="busy").total_calls >= 1

    def test_to_dict_is_json_safe(self):
        report = profile_callable(_busy, target="busy", top=3)
        payload = json.loads(report.to_json())
        assert payload["target"] == "busy"
        assert all({"function", "calls", "tottime", "cumtime"}
                   <= set(row) for row in payload["rows"])


class TestProfileVerb:
    def test_renders_table(self, capsys):
        code = main(["profile", "--duration", "2", "--top", "5",
                     "--no-improve"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile of random-churn on crisis" in out
        assert "cumtime" in out
        assert "repro/" in out

    def test_json_output_file(self, tmp_path, capsys):
        path = str(tmp_path / "profile.json")
        code = main(["profile", "--duration", "2", "--no-improve",
                     "-o", path])
        assert code == 0
        payload = json.loads(open(path).read())
        assert payload["rows"]
        assert "wrote profile" in capsys.readouterr().out

    def test_quiet(self, capsys):
        code = main(["profile", "--duration", "2", "--no-improve",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out.strip()
        assert out.startswith("profile of")
        assert "\n" not in out
