"""Profiling harness behind ``python -m repro profile``.

The simulation core's optimisation work (batched event delivery,
message coalescing, parallel campaigns) is guided by measurement, not
guesswork; this module packages that measurement loop so it stays
reproducible after the fact.  It wraps any campaign callable in
:mod:`cProfile`, distills the statistics into a
:class:`ProfileReport` (top-N functions by cumulative or internal
time), and serves them through the common Report API — so
``--json`` output can be archived next to ``BENCH_sim.json`` and
diffed across optimisation rounds.

Profiling numbers are wall-clock and therefore inherently
non-deterministic; unlike every other report in the repository the
rendering makes no byte-identity promise.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.report import ReportBase

#: Valid ``sort`` arguments and the pstats tuple index they order by.
SORT_KEYS = ("cumulative", "tottime")


def _short_path(filename: str) -> str:
    """Trim site/package prefixes so rows read ``repro/sim/clock.py``."""
    for marker in ("/repro/", "\\repro\\"):
        index = filename.rfind(marker)
        if index >= 0:
            return "repro/" + filename[index + len(marker):].replace(
                "\\", "/")
    return filename


@dataclass
class ProfileRow:
    """One function's aggregate cost within the profiled run."""

    function: str
    calls: int
    primitive_calls: int
    tottime: float
    cumtime: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "calls": self.calls,
            "primitive_calls": self.primitive_calls,
            "tottime": round(self.tottime, 6),
            "cumtime": round(self.cumtime, 6),
        }


@dataclass
class ProfileReport(ReportBase):
    """Top-N profile of one campaign run, via the common Report API."""

    target: str
    sort: str
    total_calls: int
    primitive_calls: int
    total_seconds: float
    rows: List[ProfileRow] = field(default_factory=list)

    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        return {
            "target": self.target,
            "sort": self.sort,
            "total_calls": self.total_calls,
            "primitive_calls": self.primitive_calls,
            "total_seconds": round(self.total_seconds, 6),
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self, **opts: Any) -> str:
        headers = ["calls", "tottime", "cumtime", "function"]
        formatted = [
            [str(row.calls), f"{row.tottime:.4f}", f"{row.cumtime:.4f}",
             row.function]
            for row in self.rows
        ]
        widths = [len(h) for h in headers]
        for cells in formatted:
            for index, cell in enumerate(cells):
                widths[index] = max(widths[index], len(cell))
        lines = [self.summary_line(), ""]
        lines.append("  ".join(
            h.ljust(w) for h, w in zip(headers, widths, strict=True)))
        lines.append("  ".join("-" * w for w in widths))
        lines += ["  ".join(c.ljust(w)
                            for c, w in zip(cells, widths, strict=True))
                  for cells in formatted]
        return "\n".join(lines)

    def summary_line(self) -> str:
        return (f"profile of {self.target}: {self.total_calls} calls "
                f"({self.primitive_calls} primitive) in "
                f"{self.total_seconds:.3f}s, top {len(self.rows)} by "
                f"{self.sort}")


def profile_callable(fn: Callable[[], Any], target: str,
                     top: int = 20,
                     sort: str = "cumulative") -> ProfileReport:
    """Run *fn* under cProfile and distill the top-*top* functions.

    ``sort`` orders rows by cumulative time (callees included — where
    the campaign's wall-clock goes) or ``tottime`` (internal time —
    which function bodies actually burn it).
    """
    if sort not in SORT_KEYS:
        raise ValueError(
            f"sort must be one of {', '.join(SORT_KEYS)}, got {sort!r}")
    if top < 1:
        raise ValueError("top must be >= 1")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, name), entry in stats.stats.items():
        primitive, calls, tottime, cumtime = entry[0], entry[1], \
            entry[2], entry[3]
        location = (f"{_short_path(filename)}:{lineno}({name})"
                    if lineno else name)
        rows.append(ProfileRow(function=location, calls=calls,
                               primitive_calls=primitive,
                               tottime=tottime, cumtime=cumtime))
    key = ((lambda r: r.cumtime) if sort == "cumulative"
           else (lambda r: r.tottime))
    rows.sort(key=lambda r: (-key(r), r.function))
    return ProfileReport(
        target=target,
        sort=sort,
        total_calls=int(stats.total_calls),
        primitive_calls=int(stats.prim_calls),
        total_seconds=float(stats.total_tt),
        rows=rows[:top],
    )


def profile_campaign(campaign: str = "random-churn",
                     scenario: str = "crisis", seed: int = 0,
                     duration: Optional[float] = 20.0,
                     improve: bool = True, top: int = 20,
                     sort: str = "cumulative") -> ProfileReport:
    """Profile one generated fault campaign end to end.

    Builds the scenario model, generates the named campaign against it,
    and profiles the full :func:`repro.faults.run_campaign` run — the
    same code path the resilience benchmarks measure.
    """
    # Imported here so ``import repro.profiling`` stays cheap for tools
    # that only want profile_callable.
    from repro.faults import generate_campaign, run_campaign
    from repro.faults.report import SCENARIOS

    model = SCENARIOS[scenario](seed).model
    plan = generate_campaign(campaign, model,
                             duration=duration if duration else 60.0,
                             seed=seed)
    target = (f"{campaign} on {scenario} (seed {seed}, "
              f"duration {duration if duration else plan.duration:g})")
    return profile_callable(
        lambda: run_campaign(plan, seed=seed, scenario=scenario,
                             duration=duration, improve=improve),
        target=target, top=top, sort=sort)
