"""The migration planner: waves, routes, and makespan packing.

:class:`MigrationPlanner` turns a ``(current, target)`` deployment delta
into a :class:`~repro.plan.schedule.MigrationSchedule` in three stages:

1. **Constraint-safe wave ordering.**  Moves are admitted into the
   earliest wave whose barrier state stays inside the model's
   constraint set, probed through the same incremental
   ``place``/``undo`` checker protocol the neighborhood-search engine
   uses (:func:`repro.algorithms.search.make_checker`, compiled
   O(1)-``allows`` path when every constraint type compiles).  When no
   single move can go first the planner tries placing interdependent
   moves *simultaneously* (swaps, collocated groups), and when even
   that fails it **stages** a blocked component through a buffer host,
   splitting its journey across two waves.

2. **Bandwidth packing.**  Within a wave every transfer gets a route —
   the direct link or a two-hop relay — and each physical link is
   charged the total volume routed over it.  Routes are assigned
   greedily (largest transfer first, onto the route that finishes it
   soonest under current loads) and then refined by steepest-descent
   local search, so concurrent transfers spread across parallel paths
   instead of piling onto the first link found.

3. **Cross-wave refinement.**  A second local-search pass moves whole
   transfers between waves when doing so shrinks the summed makespan
   while every barrier state stays feasible (re-verified by replay
   through the checker).

:func:`naive_schedule` builds the contrast case — every move at once,
each on the route it would pick in isolation — which is exactly the
flat ``RedeploymentPlan`` estimate made contention-aware; benchmarks
and the fault-campaign harness compare the two.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.search import make_checker
from repro.core.constraints import ConstraintSet
from repro.core.errors import ScheduleError
from repro.core.model import Deployment, DeploymentModel
from repro.obs import Observability, get_observability
from repro.plan.schedule import MigrationSchedule, ScheduledMove, Wave

__all__ = ["MigrationPlanner", "build_schedule", "naive_schedule",
           "predict_wave_eta"]

#: Minimum makespan gain for a refinement step to be taken.
_GAIN_EPS = 1e-12

#: A transfer in flight through the planner: (component, source, target,
#: kb, staged).
_Pending = Tuple[str, str, str, float, bool]


def _component_kb(model: DeploymentModel, component: str) -> float:
    """Serialized size shipped per hop (matches the flat plan estimate)."""
    return max(model.component(component).memory, 0.1)


def _leg_time(model: DeploymentModel, a: str, b: str, kb: float) -> float:
    bandwidth = model.bandwidth(a, b)
    delay = model.delay(a, b)
    if bandwidth <= 0.0 or delay == float("inf"):
        return float("inf")
    transfer = 0.0 if bandwidth == float("inf") else kb / bandwidth
    return delay + transfer


def candidate_routes(model: DeploymentModel, source: str, target: str,
                     ) -> Tuple[Tuple[str, ...], ...]:
    """Usable host paths from *source* to *target*: the direct link plus
    every two-hop relay whose legs both have positive bandwidth."""
    routes: List[Tuple[str, ...]] = []
    if model.bandwidth(source, target) > 0.0:
        routes.append((source, target))
    for relay in model.host_ids:
        if relay in (source, target):
            continue
        if (model.bandwidth(source, relay) > 0.0
                and model.bandwidth(relay, target) > 0.0):
            routes.append((source, relay, target))
    return tuple(routes)


def _link_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _route_legs(route: Sequence[str]) -> List[Tuple[str, str]]:
    return [(route[i], route[i + 1]) for i in range(len(route) - 1)]


def isolation_route(model: DeploymentModel, source: str, target: str,
                    kb: float) -> Optional[Tuple[str, ...]]:
    """The route a single transfer would pick with the network to itself
    (shortest predicted time; ties break on route length then lexically)."""
    best: Optional[Tuple[str, ...]] = None
    best_time = float("inf")
    for route in candidate_routes(model, source, target):
        total = sum(_leg_time(model, a, b, kb)
                    for a, b in _route_legs(route))
        if (total < best_time - _GAIN_EPS
                or (abs(total - best_time) <= _GAIN_EPS
                    and best is not None
                    and (len(route), route) < (len(best), best))):
            best = route
            best_time = total
    return best


# ---------------------------------------------------------------------------
# Wave packing: route assignment under shared link loads
# ---------------------------------------------------------------------------

def _wave_eta(model: DeploymentModel,
              pendings: Sequence[_Pending],
              routes: Sequence[Tuple[str, ...]],
              ) -> Tuple[float, List[float]]:
    """Predicted wave duration and per-move etas for a route assignment.

    Every link carries the summed volume of all wave moves routed over
    it; a move finishes when its slowest-loaded leg drains, and the wave
    when its slowest move does.
    """
    loads: Dict[Tuple[str, str], float] = {}
    for pending, route in zip(pendings, routes, strict=True):
        kb = pending[3]
        for a, b in _route_legs(route):
            key = _link_key(a, b)
            loads[key] = loads.get(key, 0.0) + kb
    etas: List[float] = []
    for route in routes:
        eta = 0.0
        for a, b in _route_legs(route):
            eta += _leg_time(model, a, b, loads[_link_key(a, b)])
        etas.append(eta)
    return (max(etas) if etas else 0.0), etas


def pack_wave(model: DeploymentModel, pendings: Sequence[_Pending],
              refine_passes: int = 4,
              ) -> Tuple[List[Tuple[str, ...]], float, List[float]]:
    """Assign a route to every wave move, minimizing the wave's eta.

    Greedy first (largest transfer onto the route that finishes it
    soonest given loads committed so far), then steepest-descent
    refinement re-routing one move at a time while the wave eta keeps
    dropping.
    """
    order = sorted(range(len(pendings)),
                   key=lambda i: (-pendings[i][3], pendings[i][0]))
    choices: List[Tuple[Tuple[str, ...], ...]] = []
    for pending in pendings:
        component, source, target = pending[0], pending[1], pending[2]
        routes = candidate_routes(model, source, target)
        if not routes:
            raise ScheduleError(
                f"no route with positive bandwidth for {component!r} "
                f"({source} -> {target})")
        choices.append(routes)

    assigned: List[Optional[Tuple[str, ...]]] = [None] * len(pendings)
    loads: Dict[Tuple[str, str], float] = {}
    for i in order:
        kb = pendings[i][3]
        best_route: Optional[Tuple[str, ...]] = None
        best_finish = float("inf")
        for route in choices[i]:
            finish = 0.0
            for a, b in _route_legs(route):
                key = _link_key(a, b)
                finish += _leg_time(model, a, b, loads.get(key, 0.0) + kb)
            if (finish < best_finish - _GAIN_EPS
                    or (abs(finish - best_finish) <= _GAIN_EPS
                        and best_route is not None
                        and (len(route), route)
                        < (len(best_route), best_route))):
                best_route = route
                best_finish = finish
        assert best_route is not None  # choices[i] is non-empty
        assigned[i] = best_route
        for a, b in _route_legs(best_route):
            key = _link_key(a, b)
            loads[key] = loads.get(key, 0.0) + kb

    routes = [route for route in assigned if route is not None]
    eta, etas = _wave_eta(model, pendings, routes)
    for __ in range(refine_passes):
        improved = False
        for i in range(len(pendings)):
            for alternative in choices[i]:
                if alternative == routes[i]:
                    continue
                trial = list(routes)
                trial[i] = alternative
                trial_eta, trial_etas = _wave_eta(model, pendings, trial)
                if trial_eta < eta - _GAIN_EPS:
                    routes, eta, etas = trial, trial_eta, trial_etas
                    improved = True
        if not improved:
            break
    return routes, eta, etas


def predict_wave_eta(model: DeploymentModel,
                     moves: Sequence[ScheduledMove],
                     ) -> Tuple[float, List[float]]:
    """Recompute a wave's contention-aware prediction from its recorded
    routes and volumes.

    This is the reference oracle behind lint rule ``PL002``: a schedule
    whose recorded etas undercut this recomputation was packed against a
    different (cheaper) model and oversubscribes some link.
    """
    pendings: List[_Pending] = [
        (move.component, move.source, move.target, move.kb, move.staged)
        for move in moves]
    routes = [move.route for move in moves]
    return _wave_eta(model, pendings, routes)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------

class MigrationPlanner:
    """Builds constraint-safe, bandwidth-packed migration schedules.

    Args:
        model: The deployment model supplying sizes, links, and (by
            default) the starting deployment.
        constraints: Hard constraints every barrier state must satisfy;
            defaults to the constraints stored on the model.  When the
            *starting* deployment already violates them (mid-fault), the
            bar is "no worse than the start" instead.
        max_wave_moves: Cap on concurrent transfers per wave; ``None``
            lets a wave take every admissible move.  Smaller waves give
            finer rollback barriers at the price of a longer predicted
            makespan.
        max_stagings: Total buffer-host hops the planner may introduce
            before declaring the delta unschedulable.
        refine: Run the cross-wave makespan refinement pass.
        obs: Observability bundle for ``plan.*`` metrics and spans.
    """

    def __init__(self, model: DeploymentModel,
                 constraints: Optional[ConstraintSet] = None,
                 max_wave_moves: Optional[int] = 8,
                 max_stagings: Optional[int] = None,
                 refine: bool = True,
                 obs: Optional[Observability] = None):
        self.model = model
        self.constraints = (constraints if constraints is not None
                            else ConstraintSet(model.constraints))
        self.max_wave_moves = max_wave_moves
        self.max_stagings = max_stagings
        self.refine = refine
        self.obs = obs if obs is not None else get_observability()
        self._c_schedules = self.obs.counter("plan.schedules")
        self._c_waves = self.obs.counter("plan.waves")
        self._c_staged = self.obs.counter("plan.staged_moves")
        self._c_unreachable = self.obs.counter("plan.unreachable_moves")
        self._h_makespan = self.obs.histogram("plan.makespan")

    # ------------------------------------------------------------------
    def schedule(self, target: Mapping[str, str],
                 current: Optional[Mapping[str, str]] = None,
                 ) -> MigrationSchedule:
        """Plan the migration from *current* (default: the model's
        deployment) to *target*.

        Raises :class:`~repro.core.errors.ScheduleError` when no wave
        ordering — even through buffer-host staging — keeps every
        barrier state inside the constraint set.
        """
        current_map = (self.model.deployment.as_dict() if current is None
                       else dict(current))
        target_map = dict(target)
        with self.obs.span("plan.build",
                           components=len(current_map)) as span:
            schedule = self._schedule(current_map, target_map)
            span.set(waves=len(schedule.waves),
                     moves=schedule.move_count,
                     makespan=schedule.makespan,
                     staged=len(schedule.staged_components),
                     unreachable=len(schedule.unreachable))
        self._c_schedules.inc()
        self._c_waves.inc(len(schedule.waves))
        self._c_staged.inc(len(schedule.staged_components))
        self._c_unreachable.inc(len(schedule.unreachable))
        self._h_makespan.observe(schedule.makespan)
        return schedule

    def _schedule(self, current_map: Dict[str, str],
                  target_map: Dict[str, str]) -> MigrationSchedule:
        model = self.model
        moves = Deployment(current_map).diff(Deployment(target_map))

        pending: List[_Pending] = []
        unreachable: List[str] = []
        for move in moves:  # already sorted by component id
            if not candidate_routes(model, move.source, move.target):
                unreachable.append(move.component)
                continue
            pending.append((move.component, move.source, move.target,
                            _component_kb(model, move.component), False))

        checker = make_checker(model, self.constraints)
        checker.reset(current_map)
        baseline = checker.violation_count()

        staging_budget = (2 * max(len(pending), 1)
                          if self.max_stagings is None
                          else self.max_stagings)
        staged: List[str] = []
        wave_sets: List[List[_Pending]] = []
        while pending:
            admitted = self._admit_wave(checker, baseline, pending)
            if not admitted:
                staged_move = self._stage(checker, baseline, pending)
                if staged_move is None or staging_budget <= 0:
                    blocked = ", ".join(sorted(p[0] for p in pending))
                    raise ScheduleError(
                        "no constraint-safe wave ordering exists for "
                        f"pending moves ({blocked}); staging exhausted")
                staging_budget -= 1
                staged.append(staged_move[0])
                admitted = [staged_move]
            wave_sets.append(admitted)

        if self.refine and len(wave_sets) > 1:
            wave_sets = self._refine_waves(checker, baseline, current_map,
                                           wave_sets)

        waves: List[Wave] = []
        total_kb = 0.0
        makespan = 0.0
        for index, members in enumerate(wave_sets):
            routes, eta, etas = pack_wave(model, members)
            scheduled = tuple(
                ScheduledMove(component=p[0], source=p[1], target=p[2],
                              kb=p[3], route=routes[i], eta=etas[i],
                              staged=p[4])
                for i, p in enumerate(members))
            waves.append(Wave(index=index, moves=scheduled, eta=eta))
            total_kb += sum(p[3] for p in members)
            makespan += eta
        return MigrationSchedule(
            current=current_map, target=target_map, waves=tuple(waves),
            unreachable=tuple(sorted(unreachable)),
            makespan=makespan, total_kb=total_kb,
            staged_components=tuple(sorted(set(staged))),
            detail={"baseline_violations": baseline})

    # ------------------------------------------------------------------
    # Wave admission: singles, then simultaneous groups
    # ------------------------------------------------------------------
    def _admit_wave(self, checker, baseline: int,
                    pending: List[_Pending]) -> List[_Pending]:
        """Pull the next wave's moves out of *pending*, leaving the
        checker bound to the wave's barrier state."""
        cap = (len(pending) if self.max_wave_moves is None
               else self.max_wave_moves)
        admitted: List[_Pending] = []
        for move in list(pending):
            if len(admitted) >= cap:
                break
            token = checker.place(move[0], move[2])
            if checker.violation_count() <= baseline:
                admitted.append(move)
                pending.remove(move)
            else:
                checker.undo(token)
        if admitted:
            return admitted
        # No single move can go first: look for a pair that must land
        # together (a swap between full hosts, a collocated group).
        for i in range(len(pending)):
            for j in range(i + 1, len(pending)):
                first, second = pending[i], pending[j]
                token_a = checker.place(first[0], first[2])
                token_b = checker.place(second[0], second[2])
                if checker.violation_count() <= baseline:
                    pending.remove(first)
                    pending.remove(second)
                    return [first, second]
                checker.undo(token_b)
                checker.undo(token_a)
        return []

    def _stage(self, checker, baseline: int,
               pending: List[_Pending]) -> Optional[_Pending]:
        """Park one blocked component on a buffer host, rewriting its
        pending move to resume from there.  Returns the staging hop (the
        checker is left at its barrier state), or None."""
        model = self.model
        for index, move in enumerate(pending):
            component, source, target = move[0], move[1], move[2]
            for buffer_host in model.host_ids:
                if buffer_host in (source, target):
                    continue
                if not candidate_routes(model, source, buffer_host):
                    continue
                if not candidate_routes(model, buffer_host, target):
                    continue
                token = checker.place(component, buffer_host)
                if checker.violation_count() <= baseline:
                    hop: _Pending = (component, source, buffer_host,
                                     move[3], True)
                    pending[index] = (component, buffer_host, target,
                                      move[3], move[4])
                    return hop
                checker.undo(token)
        return None

    # ------------------------------------------------------------------
    # Cross-wave refinement
    # ------------------------------------------------------------------
    def _feasible(self, checker, baseline: int,
                  current_map: Mapping[str, str],
                  wave_sets: Sequence[Sequence[_Pending]]) -> bool:
        """Replay *wave_sets* from *current_map*: every barrier state
        must stay within the baseline violation count, and a staged
        component's hops must run in journey order."""
        position = dict(current_map)
        checker.reset(position)
        for members in wave_sets:
            for component, source, __t, __kb, __staged in members:
                if position.get(component) != source:
                    return False
            for component, __s, target, __kb, __staged in members:
                checker.place(component, target)
                position[component] = target
            if checker.violation_count() > baseline:
                return False
        return True

    def _makespan_of(self, wave_sets: Sequence[Sequence[_Pending]],
                     ) -> float:
        total = 0.0
        for members in wave_sets:
            __, eta, __etas = pack_wave(self.model, members)
            total += eta
        return total

    def _refine_waves(self, checker, baseline: int,
                      current_map: Mapping[str, str],
                      wave_sets: List[List[_Pending]],
                      ) -> List[List[_Pending]]:
        """Steepest-descent pass moving single transfers between waves
        while every barrier state stays feasible and the summed makespan
        drops."""
        cap = self.max_wave_moves
        best = [list(members) for members in wave_sets]
        best_makespan = self._makespan_of(best)

        def improvement() -> Optional[Tuple[List[List[_Pending]], float]]:
            for src in range(len(best)):
                for move in list(best[src]):
                    for dst in range(len(best)):
                        if dst == src:
                            continue
                        if cap is not None and len(best[dst]) >= cap:
                            continue
                        trial = [list(members) for members in best]
                        trial[src].remove(move)
                        trial[dst].append(move)
                        trial = [members for members in trial if members]
                        if not self._feasible(checker, baseline,
                                              current_map, trial):
                            continue
                        trial_makespan = self._makespan_of(trial)
                        if trial_makespan < best_makespan - _GAIN_EPS:
                            return trial, trial_makespan
            return None

        while True:
            step = improvement()
            if step is None:
                break
            best, best_makespan = step
        # Leave the checker bound to the final state for reuse.
        self._feasible(checker, baseline, current_map, best)
        return best


def build_schedule(model: DeploymentModel, target: Mapping[str, str],
                   current: Optional[Mapping[str, str]] = None,
                   constraints: Optional[ConstraintSet] = None,
                   **options) -> MigrationSchedule:
    """One-shot convenience wrapper around :class:`MigrationPlanner`."""
    planner = MigrationPlanner(model, constraints=constraints, **options)
    return planner.schedule(target, current=current)


def naive_schedule(model: DeploymentModel, target: Mapping[str, str],
                   current: Optional[Mapping[str, str]] = None,
                   ) -> MigrationSchedule:
    """The all-at-once contrast case: every move in a single wave, each
    on the route it would pick in isolation, with the wave's duration
    honestly accounting for the resulting link contention.

    This is the flat :func:`~repro.core.effector.plan_redeployment`
    estimate made contention-aware — what actually happens when the
    whole delta is shipped in one shot over the obvious paths.
    """
    current_map = (model.deployment.as_dict() if current is None
                   else dict(current))
    target_map = dict(target)
    moves = Deployment(current_map).diff(Deployment(target_map))
    pendings: List[_Pending] = []
    routes: List[Tuple[str, ...]] = []
    unreachable: List[str] = []
    for move in moves:
        kb = _component_kb(model, move.component)
        route = isolation_route(model, move.source, move.target, kb)
        if route is None:
            unreachable.append(move.component)
            continue
        pendings.append((move.component, move.source, move.target, kb,
                         False))
        routes.append(route)
    eta, etas = _wave_eta(model, pendings, routes)
    scheduled = tuple(
        ScheduledMove(component=p[0], source=p[1], target=p[2], kb=p[3],
                      route=routes[i], eta=etas[i])
        for i, p in enumerate(pendings))
    waves = (Wave(index=0, moves=scheduled, eta=eta),) if scheduled else ()
    return MigrationSchedule(
        current=current_map, target=target_map, waves=waves,
        unreachable=tuple(sorted(unreachable)),
        makespan=eta if scheduled else 0.0,
        total_kb=sum(p[3] for p in pendings),
        detail={"strategy": "naive-all-at-once"})
