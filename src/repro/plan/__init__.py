"""repro.plan — constraint-safe migration scheduling.

Turns a ``(current, target)`` deployment delta into a
:class:`MigrationSchedule`: moves grouped into parallel **waves** whose
barrier states all satisfy the model's constraint set, with per-wave
transfers routed and packed against per-link bandwidth so the predicted
makespan reflects contention.  Each wave is a rollback barrier for
:class:`~repro.core.effector.MiddlewareEffector`, which on a wave
failure restores only the last barrier and re-plans from there.

Entry points:

* :class:`MigrationPlanner` / :func:`build_schedule` — build a schedule;
* :func:`naive_schedule` — the all-at-once contrast case;
* :func:`repro.lint.verify_schedule` — static verification (PL001–PL003);
* ``python -m repro plan`` — build, render, lint, and diff schedules.

See ``docs/PLANNING.md`` for the schedule model and wave semantics.
"""

from repro.plan.planner import (
    MigrationPlanner, build_schedule, candidate_routes, isolation_route,
    naive_schedule, pack_wave, predict_wave_eta,
)
from repro.plan.schedule import (
    MigrationSchedule, ScheduledMove, Wave, schedule_from_dict,
    schedule_from_json,
)

__all__ = [
    "MigrationPlanner",
    "MigrationSchedule",
    "ScheduledMove",
    "Wave",
    "build_schedule",
    "candidate_routes",
    "isolation_route",
    "naive_schedule",
    "pack_wave",
    "predict_wave_eta",
    "schedule_from_dict",
    "schedule_from_json",
]
