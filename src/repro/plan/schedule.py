"""The migration-schedule data model.

A :class:`MigrationSchedule` is the planner's answer to "how do we get
from *current* to *target* safely?": the flat move set of a
:class:`~repro.core.effector.RedeploymentPlan` ordered into **waves**.
Moves inside one wave transfer concurrently; waves execute strictly in
sequence, and the deployment reached after each wave — its **barrier
state** — is required to satisfy the model's constraint set.  Barriers
are also the rollback unit: when a wave fails mid-flight the effector
restores the last barrier state instead of reverting the whole plan
(see :meth:`~repro.core.effector.MiddlewareEffector.effect` and
``docs/PLANNING.md``).

Every move carries the **route** its prediction was packed against: a
host path ``(source, ..., target)`` of length 2 (direct link) or 3
(relayed through the Deployer-mediated path).  Per-wave predicted
durations charge each physical link with the total volume routed over
it, so the schedule's ``makespan`` reflects link contention — unlike
the flat plan's slowest-pair estimate.

The schedule is a plain-data :class:`~repro.core.report.Report`: it
serializes to canonical JSON (``to_json``), round-trips via
:func:`schedule_from_dict`, renders as a wave table, and diffs against
another schedule — the surface behind ``python -m repro plan``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Tuple

from repro.core.errors import ScheduleError
from repro.core.report import ReportBase

__all__ = [
    "MigrationSchedule", "ScheduledMove", "Wave", "schedule_from_dict",
    "schedule_from_json",
]


@dataclass(frozen=True)
class ScheduledMove:
    """One component transfer inside a wave."""

    component: str
    source: str
    target: str
    #: Serialized size shipped over the route, KB.
    kb: float
    #: Host path the prediction charges: ``(source, target)`` for a
    #: direct link, ``(source, relay, target)`` for a relayed transfer.
    route: Tuple[str, ...]
    #: Predicted transfer seconds over the route *including* the volume
    #: of every other same-wave move sharing its links.
    eta: float = 0.0
    #: True when this hop parks the component on a buffer host rather
    #: than its final destination (a later wave completes the journey).
    staged: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "component": self.component,
            "source": self.source,
            "target": self.target,
            "kb": self.kb,
            "route": list(self.route),
            "eta": self.eta,
        }
        if self.staged:
            out["staged"] = True
        return out


@dataclass(frozen=True)
class Wave:
    """One batch of concurrent transfers ending at a rollback barrier."""

    index: int
    moves: Tuple[ScheduledMove, ...]
    #: Predicted wall (simulated) seconds for the slowest transfer in
    #: the wave under the recorded route packing.
    eta: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "eta": self.eta,
            "moves": [move.to_dict() for move in self.moves],
        }


@dataclass
class MigrationSchedule(ReportBase):
    """A constraint-safe, bandwidth-packed ordering of a migration."""

    current: Dict[str, str]
    target: Dict[str, str]
    waves: Tuple[Wave, ...]
    #: Component ids whose moves have no route with positive bandwidth
    #: (directly or via one relay); they appear in no wave.
    unreachable: Tuple[str, ...] = ()
    #: Sum of per-wave predicted durations, simulated seconds.
    makespan: float = 0.0
    #: Total volume shipped across all waves (staging hops count twice).
    total_kb: float = 0.0
    #: Components routed through a buffer host.
    staged_components: Tuple[str, ...] = ()
    detail: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def moves(self) -> Tuple[ScheduledMove, ...]:
        """Every scheduled move in execution order."""
        return tuple(move for wave in self.waves for move in wave.moves)

    @property
    def move_count(self) -> int:
        return sum(len(wave.moves) for wave in self.waves)

    def state_after(self, wave_index: int) -> Dict[str, str]:
        """Barrier deployment after ``waves[wave_index]`` completes.

        ``wave_index == -1`` yields the starting deployment.
        """
        if wave_index >= len(self.waves):
            raise ScheduleError(
                f"wave index {wave_index} out of range "
                f"({len(self.waves)} waves)")
        state = dict(self.current)
        for wave in self.waves[:wave_index + 1]:
            for move in wave.moves:
                state[move.component] = move.target
        return state

    def barrier_states(self) -> Iterator[Dict[str, str]]:
        """Yield the deployment after each wave, in order."""
        state = dict(self.current)
        for wave in self.waves:
            for move in wave.moves:
                state[move.component] = move.target
            yield dict(state)

    def final_state(self) -> Dict[str, str]:
        """The deployment the schedule terminates in.

        Equals ``current`` overlaid with ``target`` except for
        ``unreachable`` components, which stay where they are.
        """
        if not self.waves:
            return dict(self.current)
        return self.state_after(len(self.waves) - 1)

    # ------------------------------------------------------------------
    # Report protocol
    # ------------------------------------------------------------------
    def to_dict(self, **opts: Any) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "current": dict(sorted(self.current.items())),
            "target": dict(sorted(self.target.items())),
            "waves": [wave.to_dict() for wave in self.waves],
            "unreachable": list(self.unreachable),
            "makespan": self.makespan,
            "total_kb": self.total_kb,
            "staged_components": list(self.staged_components),
        }
        if self.detail:
            out["detail"] = dict(sorted(self.detail.items()))
        return out

    def summary_line(self) -> str:
        line = (f"MigrationSchedule({self.move_count} moves in "
                f"{len(self.waves)} waves, ~{self.total_kb:.1f} KB, "
                f"makespan ~{self.makespan:.3f} s)")
        if self.staged_components:
            line += f", {len(self.staged_components)} staged"
        if self.unreachable:
            line += f", {len(self.unreachable)} unreachable"
        return line

    def render(self, **opts: Any) -> str:
        lines = [self.summary_line()]
        for wave in self.waves:
            lines.append(f"  wave {wave.index} (~{wave.eta:.3f} s):")
            for move in wave.moves:
                hop = ("via " + "-".join(move.route[1:-1])
                       if len(move.route) > 2 else "direct")
                tag = " [staged]" if move.staged else ""
                lines.append(
                    f"    {move.component}: {move.source} -> {move.target} "
                    f"({move.kb:.1f} KB, {hop}, ~{move.eta:.3f} s){tag}")
        for component in self.unreachable:
            lines.append(f"  unreachable: {component} "
                         f"(no route with positive bandwidth)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Diff
    # ------------------------------------------------------------------
    def diff(self, other: "MigrationSchedule") -> str:
        """Human-readable wave-by-wave difference against *other*."""
        lines: List[str] = []
        if self.makespan != other.makespan:
            lines.append(f"makespan: {self.makespan:.3f} -> "
                         f"{other.makespan:.3f}")
        if self.total_kb != other.total_kb:
            lines.append(f"total_kb: {self.total_kb:.1f} -> "
                         f"{other.total_kb:.1f}")

        def placements(schedule: "MigrationSchedule"
                       ) -> Dict[Tuple[str, str, str, bool], int]:
            table: Dict[Tuple[str, str, str, bool], int] = {}
            for wave in schedule.waves:
                for move in wave.moves:
                    key = (move.component, move.source, move.target,
                           move.staged)
                    table[key] = wave.index
            return table

        ours, theirs = placements(self), placements(other)
        for key in sorted(set(ours) | set(theirs)):
            component, source, target, staged = key
            label = (f"{component}: {source} -> {target}"
                     + (" [staged]" if staged else ""))
            if key not in theirs:
                lines.append(f"- {label} (wave {ours[key]})")
            elif key not in ours:
                lines.append(f"+ {label} (wave {theirs[key]})")
            elif ours[key] != theirs[key]:
                lines.append(f"~ {label}: wave {ours[key]} -> "
                             f"wave {theirs[key]}")
        if not lines:
            lines.append("schedules are identical")
        return "\n".join(lines)


def schedule_from_dict(data: Mapping[str, Any]) -> MigrationSchedule:
    """Rebuild a :class:`MigrationSchedule` from its ``to_dict`` form."""
    try:
        waves = tuple(
            Wave(index=int(wave["index"]), eta=float(wave["eta"]),
                 moves=tuple(
                     ScheduledMove(
                         component=move["component"],
                         source=move["source"],
                         target=move["target"],
                         kb=float(move["kb"]),
                         route=tuple(move["route"]),
                         eta=float(move.get("eta", 0.0)),
                         staged=bool(move.get("staged", False)),
                     ) for move in wave["moves"]))
            for wave in data["waves"])
        return MigrationSchedule(
            current=dict(data["current"]),
            target=dict(data["target"]),
            waves=waves,
            unreachable=tuple(data.get("unreachable", ())),
            makespan=float(data.get("makespan", 0.0)),
            total_kb=float(data.get("total_kb", 0.0)),
            staged_components=tuple(data.get("staged_components", ())),
            detail=dict(data.get("detail", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule document: {exc}") from exc


def schedule_from_json(text: str) -> MigrationSchedule:
    """Parse a schedule previously serialized with ``to_json``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"schedule is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ScheduleError("schedule document must be a JSON object")
    return schedule_from_dict(data)
