"""The Stochastic algorithm (Section 5.1).

"The Stochastic algorithm randomly orders all the hosts and all the
components.  Then, going in order, it assigns as many components to a given
host as can fit on that host, ensuring that all of the constraints are
satisfied.  Once the host is full, the algorithm proceeds with the same
process for the next host in the ordered list of hosts, and the remaining
unassigned components in the ordered list of components, until all
components have been deployed.  This process is repeated a desired number of
times, and the best obtained deployment is selected."
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, greedy_fill_deployment
from repro.core.model import DeploymentModel


class StochasticAlgorithm(DeploymentAlgorithm):
    """Random-order constructive search with restarts.

    Each iteration costs one full objective evaluation (O(n^2) in the number
    of interacting pairs, matching the paper's per-iteration complexity
    statement); quality improves with ``iterations`` at linear cost.
    """

    name = "stochastic"

    def __init__(self, objective, constraints=None, seed=None,
                 iterations: int = 100):
        super().__init__(objective, constraints, seed)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        best: Optional[Dict[str, str]] = None
        best_value = self.objective.worst_value()
        feasible_iterations = 0
        checker = self._checker(model)
        for __ in range(self.iterations):
            hosts = list(model.host_ids)
            components = list(model.component_ids)
            self.rng.shuffle(hosts)
            self.rng.shuffle(components)
            assignment = greedy_fill_deployment(
                model, self.constraints, hosts, components, checker=checker)
            if assignment is None:
                continue  # this ordering could not place every component
            if not checker.satisfied():
                continue
            feasible_iterations += 1
            value = self._evaluate(model, assignment)
            if best is None or self.objective.is_better(value, best_value):
                best_value = value
                best = assignment
        extra = {
            "iterations": self.iterations,
            "feasible_iterations": feasible_iterations,
        }
        return best, extra
