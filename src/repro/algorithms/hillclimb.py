"""Hill-climbing refinement over single-component moves.

Not one of the paper's named algorithms, but the simplest demonstration of
the framework's algorithm pluggability (Section 4.3): a new main body reusing
the same ObjectiveQuantifier and ConstraintChecker.  It is also the analyzer's
cheap "immediate improvement" option for unstable systems, and the refinement
stage the annealing/genetic extensions share.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class HillClimbingAlgorithm(DeploymentAlgorithm):
    """Steepest-ascent local search over one-component relocations.

    Starts from the model's current deployment when it is valid (so the
    result is reachable with few moves — cheap to effect), otherwise from a
    random valid deployment.  Each round takes the best strictly-improving
    (component, host) move allowed by the constraints — served by the
    incremental :class:`~repro.algorithms.search.SearchState` frontier, so
    only moves invalidated by the previous step are re-scored; terminates
    at a local optimum or after ``max_rounds``.
    """

    name = "hillclimb"

    def __init__(self, objective, constraints=None, seed=None,
                 max_rounds: int = 1000):
        super().__init__(objective, constraints, seed)
        self.max_rounds = max_rounds

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        assignment: Optional[Dict[str, str]] = None
        if (len(initial) == len(model.component_ids)
                and self.constraints.is_satisfied(model, initial)):
            assignment = dict(initial)
        else:
            assignment = random_valid_deployment(
                model, self.constraints, self.rng,
                checker=self._checker(model))
        if assignment is None:
            return None, {"rounds": 0}

        state = self._search_state(model, assignment)
        rounds = 0
        moves_taken = 0
        for rounds in range(1, self.max_rounds + 1):
            step = state.best_move()
            if step is None:
                break  # local optimum
            ci, hi, __ = step
            state.apply(ci, hi)
            moves_taken += 1
        return state.mapping, {"rounds": rounds, "moves_taken": moves_taken,
                               "moves": list(state.moves)}
