"""Hill-climbing refinement over single-component moves.

Not one of the paper's named algorithms, but the simplest demonstration of
the framework's algorithm pluggability (Section 4.3): a new main body reusing
the same ObjectiveQuantifier and ConstraintChecker.  It is also the analyzer's
cheap "immediate improvement" option for unstable systems, and the refinement
stage the annealing/genetic extensions share.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class HillClimbingAlgorithm(DeploymentAlgorithm):
    """Steepest-ascent local search over one-component relocations.

    Starts from the model's current deployment when it is valid (so the
    result is reachable with few moves — cheap to effect), otherwise from a
    random valid deployment.  Each round scans every (component, host) move
    allowed by the constraints and takes the best strictly-improving one;
    terminates at a local optimum or after ``max_rounds``.
    """

    name = "hillclimb"

    def __init__(self, objective, constraints=None, seed=None,
                 max_rounds: int = 1000):
        super().__init__(objective, constraints, seed)
        self.max_rounds = max_rounds

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        assignment: Optional[Dict[str, str]] = None
        if (len(initial) == len(model.component_ids)
                and self.constraints.is_satisfied(model, initial)):
            assignment = dict(initial)
        else:
            assignment = random_valid_deployment(
                model, self.constraints, self.rng)
        if assignment is None:
            return None, {"rounds": 0}

        rounds = 0
        moves_taken = 0
        for rounds in range(1, self.max_rounds + 1):
            best_delta = 0.0
            best_move: Optional[Tuple[str, str]] = None
            for component in model.component_ids:
                current_host = assignment[component]
                for host in model.host_ids:
                    if host == current_host:
                        continue
                    if not self.constraints.allows(
                            model, assignment, component, host):
                        continue
                    delta = self._move_delta(
                        model, assignment, component, host)
                    gain = (delta if self.objective.direction == "max"
                            else -delta)
                    if gain > best_delta + 1e-12:
                        best_delta = gain
                        best_move = (component, host)
            if best_move is None:
                break  # local optimum
            component, host = best_move
            assignment[component] = host
            moves_taken += 1
        return assignment, {"rounds": rounds, "moves_taken": moves_taken}
