"""Redeployment algorithms (the paper's pluggable Algorithm component).

Paper algorithms: :class:`ExactAlgorithm`, :class:`StochasticAlgorithm`,
:class:`AvalaAlgorithm` (centralized, Section 5.1) and
:class:`DecApAlgorithm` (decentralized, Section 5.2).

Related-work baselines: :class:`BIPAlgorithm` (I5) and
:class:`MinCutAlgorithm` (Coign).

Framework-extension main bodies: :class:`HillClimbingAlgorithm`,
:class:`SimulatedAnnealingAlgorithm`, :class:`GeneticAlgorithm`.
"""

from repro.algorithms.annealing import SimulatedAnnealingAlgorithm
from repro.algorithms.avala import AvalaAlgorithm
from repro.algorithms.base import (
    AlgorithmResult, DeploymentAlgorithm, greedy_fill_deployment,
    random_valid_deployment,
)
from repro.algorithms.bip import BIPAlgorithm
from repro.algorithms.decap import (
    AwarenessMap, DecApAlgorithm, connectivity_awareness,
)
from repro.algorithms.exact import ExactAlgorithm
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.hillclimb import HillClimbingAlgorithm
from repro.algorithms.mincut import MinCutAlgorithm
from repro.algorithms.stochastic import StochasticAlgorithm
from repro.algorithms.swapsearch import SwapSearchAlgorithm

__all__ = [
    "AlgorithmResult",
    "AwarenessMap",
    "AvalaAlgorithm",
    "BIPAlgorithm",
    "DecApAlgorithm",
    "DeploymentAlgorithm",
    "ExactAlgorithm",
    "GeneticAlgorithm",
    "HillClimbingAlgorithm",
    "MinCutAlgorithm",
    "SimulatedAnnealingAlgorithm",
    "StochasticAlgorithm",
    "SwapSearchAlgorithm",
    "connectivity_awareness",
    "greedy_fill_deployment",
    "random_valid_deployment",
]
