"""Redeployment algorithms (the paper's pluggable Algorithm component).

Paper algorithms: :class:`ExactAlgorithm`, :class:`StochasticAlgorithm`,
:class:`AvalaAlgorithm` (centralized, Section 5.1) and
:class:`DecApAlgorithm` (decentralized, Section 5.2).

Related-work baselines: :class:`BIPAlgorithm` (I5) and
:class:`MinCutAlgorithm` (Coign).

Framework-extension main bodies: :class:`HillClimbingAlgorithm`,
:class:`SimulatedAnnealingAlgorithm`, :class:`GeneticAlgorithm`.

Evaluation plumbing: :class:`EvaluationEngine` (memoized + incremental
objective evaluation with budgets) and :class:`PortfolioRunner` (concurrent
execution of an algorithm portfolio) in :mod:`repro.algorithms.engine`;
:class:`CompiledModel`/:class:`CompiledDeployment` and the per-objective
evaluation kernels in :mod:`repro.algorithms.compiled`.
"""

from repro.algorithms.annealing import SimulatedAnnealingAlgorithm
from repro.algorithms.avala import AvalaAlgorithm
from repro.algorithms.base import (
    AlgorithmResult, DeploymentAlgorithm, greedy_fill_deployment,
    random_valid_deployment,
)
from repro.algorithms.bip import BIPAlgorithm
from repro.algorithms.compiled import (
    CompiledDeployment, CompiledModel, Kernel, compile_kernel, compiled_model,
    register_kernel,
)
from repro.algorithms.decap import (
    AwarenessMap, DecApAlgorithm, connectivity_awareness,
)
from repro.algorithms.engine import (
    DeploymentCache, EvaluationEngine, EvaluationStats, PortfolioOutcome,
    PortfolioReport, PortfolioRunner, run_portfolio,
)
from repro.algorithms.exact import ExactAlgorithm
from repro.algorithms.genetic import GeneticAlgorithm
from repro.algorithms.hillclimb import HillClimbingAlgorithm
from repro.algorithms.mincut import MinCutAlgorithm
from repro.algorithms.search import (
    CompiledConstraintChecker, ObjectConstraintChecker, SearchState,
    make_checker,
)
from repro.algorithms.stochastic import StochasticAlgorithm
from repro.algorithms.swapsearch import SwapSearchAlgorithm

__all__ = [
    "AlgorithmResult",
    "AwarenessMap",
    "AvalaAlgorithm",
    "BIPAlgorithm",
    "CompiledConstraintChecker",
    "CompiledDeployment",
    "CompiledModel",
    "DecApAlgorithm",
    "DeploymentAlgorithm",
    "DeploymentCache",
    "EvaluationEngine",
    "EvaluationStats",
    "ExactAlgorithm",
    "GeneticAlgorithm",
    "HillClimbingAlgorithm",
    "Kernel",
    "MinCutAlgorithm",
    "ObjectConstraintChecker",
    "PortfolioOutcome",
    "PortfolioReport",
    "PortfolioRunner",
    "SearchState",
    "SimulatedAnnealingAlgorithm",
    "StochasticAlgorithm",
    "SwapSearchAlgorithm",
    "compile_kernel",
    "compiled_model",
    "connectivity_awareness",
    "greedy_fill_deployment",
    "make_checker",
    "register_kernel",
    "random_valid_deployment",
    "run_portfolio",
]
