"""Simulated annealing over deployments (framework-extension algorithm).

Section 4.3 names "genetic algorithm" alongside "greedy algorithm" as main
bodies the methodology should accommodate; simulated annealing is the other
classic stochastic main body, and exercising it validates that the
Objective/ConstraintSet plug points are genuinely search-strategy agnostic.
It relies on :meth:`Objective.move_delta` for O(degree) neighbor evaluation.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class SimulatedAnnealingAlgorithm(DeploymentAlgorithm):
    """Metropolis search over one-component relocations.

    Args:
        steps: Total proposed moves.
        initial_temperature: Starting temperature, in units of the
            objective (availability lives in [0,1], so the default 0.05
            accepts ~exp(-delta/T) of small regressions early on).
        cooling: Geometric cooling factor applied each step.
    """

    name = "annealing"

    def __init__(self, objective, constraints=None, seed=None,
                 steps: int = 5000, initial_temperature: float = 0.05,
                 cooling: float = 0.999):
        super().__init__(objective, constraints, seed)
        if not 0.0 < cooling <= 1.0:
            raise ValueError("cooling must be in (0, 1]")
        self.steps = steps
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        if (len(initial) == len(model.component_ids)
                and self.constraints.is_satisfied(model, initial)):
            current = dict(initial)
        else:
            current = random_valid_deployment(
                model, self.constraints, self.rng,
                checker=self._checker(model))
        if current is None:
            return None, {"accepted": 0}

        components = model.component_ids
        hosts = model.host_ids
        if len(hosts) < 2:
            return current, {"accepted": 0, "note": "single host"}

        # The search state answers allows() in O(1) and deltas without the
        # per-call re-encode; annealing never asks for best_move(), so the
        # frontier is never built and proposals stay O(1).
        state = self._search_state(model, current)
        current_value = self._evaluate(model, state.mapping)
        best = dict(state.mapping)
        best_value = current_value
        temperature = self.initial_temperature
        accepted = 0

        for __ in range(self.steps):
            component = self.rng.choice(components)
            host = self.rng.choice(hosts)
            ci = state.component_index(component)
            hi = state.host_index(host)
            if hi == state.array[ci]:
                continue
            if not state.allows(ci, hi):
                continue
            delta = state.delta(ci, hi)
            gain = delta if self.objective.direction == "max" else -delta
            accept = gain >= 0.0
            if not accept and temperature > 1e-12:
                accept = self.rng.random() < math.exp(gain / temperature)
            if accept:
                state.apply(ci, hi)
                current_value += delta
                accepted += 1
                if self.objective.is_better(current_value, best_value):
                    best_value = current_value
                    best = dict(state.mapping)
            temperature *= self.cooling

        # Guard against drift in the incrementally-maintained value.
        extra = {"accepted": accepted, "final_temperature": temperature,
                 "moves": list(state.moves)}
        if self.constraints.is_satisfied(model, best):
            return best, extra
        return state.mapping, extra
