"""Compiled evaluation kernels: index-based views of the deployment model.

The analyzer re-scores thousands of candidate deployments per improvement
cycle (Section 4.3), and the object-path objectives walk dict-of-objects
``DeploymentModel`` structures with string keys on every call — parameter
bags, registry lookups, and canonical-pair dictionaries dominate every
algorithm's inner loop.  Following the separation used by constraint-based
deployment middleware (declarative model vs. the engine that evaluates
placements, arXiv:1006.4733), this module *compiles* the architectural
model into flat, integer-indexed structures the search hot path can consume
at machine speed:

* :class:`CompiledModel` — an immutable snapshot of a
  :class:`~repro.core.model.DeploymentModel`: component/host index maps,
  CSR-style adjacency over logical links with per-edge ``(frequency,
  event_size, criticality)`` arrays, dense host×host matrices of the
  physical-link parameters (reliability, bandwidth, delay, security), and
  per-component memory/CPU vectors.  Snapshots are cached per model and
  invalidated through the model's listener events, so monitors writing
  fresh observations trigger recompilation on next use.
* :class:`CompiledDeployment` — a deployment as an array of host indices
  with an incrementally-maintained Zobrist hash (a move is an O(1) hash
  update instead of rehashing the whole mapping).
* One kernel per built-in objective (:func:`compile_kernel`), each
  replicating the object path's arithmetic *in the same order* so kernel
  values are bit-identical to ``Objective.evaluate`` — the evaluation
  engine can therefore route through kernels transparently without
  perturbing memoized scores.  Kernels also serve O(degree)/O(host)
  ``move_delta`` for every objective, including the bottleneck-style
  Throughput and Durability objectives, by maintaining per-host running
  load/draw accumulators keyed to the base assignment.

Custom objectives without a registered kernel fall back to the object path
automatically; registering a kernel factory via :func:`register_kernel`
opts a new objective into the fast path.
"""

from __future__ import annotations

import random
import threading
import weakref
from typing import (
    Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type,
)

from repro.core.model import DEPLOYMENT_CHANGED, Deployment, DeploymentModel
from repro.core.objectives import (
    MAXIMIZE, UNREACHABLE_COST, AvailabilityObjective,
    CommunicationCostObjective, DurabilityObjective, LatencyObjective,
    Objective, SecurityObjective, ThroughputObjective, WeightedObjective,
)

#: Sentinel host index for components absent from a deployment mapping.
UNDEPLOYED = -1

_INF = float("inf")


class CompiledModel:
    """Flat, integer-indexed snapshot of one :class:`DeploymentModel`.

    All arrays are ordered by sorted entity id, matching the iteration
    order of the model's ``hosts`` / ``components`` / ``interaction_pairs``
    accessors — which is what lets kernels accumulate floating-point sums
    in exactly the order the object path does.

    A snapshot never mutates; model changes mark it ``stale`` (via the
    listener installed by :func:`compiled_model`) and the next
    :func:`compiled_model` call builds a fresh snapshot with a bumped
    ``generation``.
    """

    __slots__ = (
        "name", "generation", "stale",
        "host_ids", "component_ids", "host_index", "component_index",
        "n_hosts", "n_components",
        "edge_a", "edge_b", "edge_frequency", "edge_evt_size",
        "edge_criticality", "edge_volume",
        "adj_indptr", "adj_neighbor", "adj_edge",
        "reliability", "bandwidth", "delay", "security", "link_up",
        "component_memory", "component_cpu",
        "host_memory", "host_cpu", "host_battery",
        "_zobrist",
    )

    def __init__(self, model: DeploymentModel, generation: int = 0):
        self.name = model.name
        self.generation = generation
        self.stale = False

        self.host_ids: Tuple[str, ...] = model.host_ids
        self.component_ids: Tuple[str, ...] = model.component_ids
        self.host_index: Dict[str, int] = {
            h: i for i, h in enumerate(self.host_ids)}
        self.component_index: Dict[str, int] = {
            c: i for i, c in enumerate(self.component_ids)}
        self.n_hosts = len(self.host_ids)
        self.n_components = len(self.component_ids)

        # -- logical links: edge arrays in interaction_pairs() order -------
        edge_a: List[int] = []
        edge_b: List[int] = []
        edge_frequency: List[float] = []
        edge_evt_size: List[float] = []
        edge_criticality: List[float] = []
        for comp_a, comp_b, link in model.interaction_pairs():
            edge_a.append(self.component_index[comp_a])
            edge_b.append(self.component_index[comp_b])
            edge_frequency.append(link.frequency)
            edge_evt_size.append(link.evt_size)
            edge_criticality.append(link.params.get("criticality"))
        self.edge_a = edge_a
        self.edge_b = edge_b
        self.edge_frequency = edge_frequency
        self.edge_evt_size = edge_evt_size
        self.edge_criticality = edge_criticality
        self.edge_volume = [f * s for f, s in
                            zip(edge_frequency, edge_evt_size, strict=True)]

        # -- CSR adjacency: neighbors sorted by id (= index) per component --
        per_component: List[List[Tuple[int, int]]] = [
            [] for _ in range(self.n_components)]
        for edge, (a, b) in enumerate(zip(edge_a, edge_b, strict=True)):
            per_component[a].append((b, edge))
            per_component[b].append((a, edge))
        indptr = [0]
        neighbor: List[int] = []
        adj_edge: List[int] = []
        for entries in per_component:
            entries.sort()
            for n, e in entries:
                neighbor.append(n)
                adj_edge.append(e)
            indptr.append(len(neighbor))
        self.adj_indptr = indptr
        self.adj_neighbor = neighbor
        self.adj_edge = adj_edge

        # -- physical links: dense host×host matrices ----------------------
        # Semantics mirror the model's derived queries exactly:
        # reliability/bandwidth gate on the link's ``connected`` flag,
        # delay and security do not, diagonals are the collocation values.
        n = self.n_hosts
        rel = [[0.0] * n for _ in range(n)]
        bw = [[0.0] * n for _ in range(n)]
        dly = [[_INF] * n for _ in range(n)]
        sec = [[0.0] * n for _ in range(n)]
        up = [[False] * n for _ in range(n)]
        for i in range(n):
            rel[i][i] = 1.0
            bw[i][i] = _INF
            dly[i][i] = 0.0
            sec[i][i] = 1.0
        for link in model.physical_links:
            i = self.host_index[link.hosts[0]]
            j = self.host_index[link.hosts[1]]
            connected = bool(link.params.get("connected"))
            rel[i][j] = rel[j][i] = link.params.get("reliability") \
                if connected else 0.0
            bw[i][j] = bw[j][i] = link.params.get("bandwidth") \
                if connected else 0.0
            dly[i][j] = dly[j][i] = link.params.get("delay")
            sec[i][j] = sec[j][i] = link.params.get("security")
            up[i][j] = up[j][i] = connected
        self.reliability = rel
        self.bandwidth = bw
        self.delay = dly
        self.security = sec
        self.link_up = up

        # -- entity vectors -------------------------------------------------
        self.component_memory = [c.memory for c in model.components]
        self.component_cpu = [c.cpu for c in model.components]
        self.host_memory = [h.memory for h in model.hosts]
        self.host_cpu = [h.cpu for h in model.hosts]
        self.host_battery = [h.params.get("battery") for h in model.hosts]

        # Zobrist table for incremental deployment hashing; seeded from the
        # model shape so hashes are stable across processes and sessions.
        rng = random.Random(0xC0DE ^ (self.n_components << 16) ^ self.n_hosts)
        self._zobrist = [
            [rng.getrandbits(64) for _ in range(self.n_hosts)]
            for _ in range(self.n_components)
        ]

    # ------------------------------------------------------------------
    def encode(self, deployment: Mapping[str, str]) -> Optional[List[int]]:
        """Deployment mapping → per-component host-index array.

        Components absent from the mapping encode as :data:`UNDEPLOYED`.
        Returns ``None`` when the mapping references a host unknown to this
        snapshot — callers must then fall back to the object path, whose
        semantics for dangling hosts differ from "undeployed".
        """
        host_index = self.host_index
        get = deployment.get
        out: List[int] = []
        for component_id in self.component_ids:
            host_id = get(component_id)
            if host_id is None:
                out.append(UNDEPLOYED)
                continue
            index = host_index.get(host_id)
            if index is None:
                return None
            out.append(index)
        return out

    def decode(self, assignment: Sequence[int]) -> Dict[str, str]:
        """Inverse of :meth:`encode` (undeployed components are omitted)."""
        out: Dict[str, str] = {}
        for component_index, host_idx in enumerate(assignment):
            if host_idx != UNDEPLOYED:
                out[self.component_ids[component_index]] = \
                    self.host_ids[host_idx]
        return out

    def neighbors(self, component_index: int) -> range:
        """CSR slice bounds for one component's adjacency entries."""
        return range(self.adj_indptr[component_index],
                     self.adj_indptr[component_index + 1])

    def degree(self, component_index: int) -> int:
        return (self.adj_indptr[component_index + 1]
                - self.adj_indptr[component_index])

    def zobrist_hash(self, assignment: Sequence[int]) -> int:
        value = 0
        for component_index, host_idx in enumerate(assignment):
            if host_idx != UNDEPLOYED:
                value ^= self._zobrist[component_index][host_idx]
        return value

    def __repr__(self) -> str:
        return (f"CompiledModel({self.name!r}, gen={self.generation}, "
                f"hosts={self.n_hosts}, components={self.n_components}, "
                f"edges={len(self.edge_a)})")


class CompiledDeployment:
    """A deployment as a host-index array with an incremental hash.

    ``moved`` produces a sibling whose hash is updated with two XORs
    against the snapshot's Zobrist table instead of rehashing all
    components — the hash maintenance local search needs when it keeps
    thousands of candidate placements in memo sets.
    """

    __slots__ = ("compiled", "assignment", "_hash")

    def __init__(self, compiled: CompiledModel,
                 assignment: Sequence[int],
                 _hash: Optional[int] = None):
        self.compiled = compiled
        self.assignment: Tuple[int, ...] = tuple(assignment)
        if len(self.assignment) != compiled.n_components:
            raise ValueError(
                f"assignment length {len(self.assignment)} != "
                f"{compiled.n_components} components")
        self._hash = (compiled.zobrist_hash(self.assignment)
                      if _hash is None else _hash)

    @classmethod
    def from_mapping(cls, compiled: CompiledModel,
                     deployment: Mapping[str, str]) -> "CompiledDeployment":
        assignment = compiled.encode(deployment)
        if assignment is None:
            raise KeyError(
                "deployment references hosts unknown to the compiled model")
        return cls(compiled, assignment)

    def moved(self, component_index: int,
              host_index: int) -> "CompiledDeployment":
        """Sibling with one component reassigned; O(1) hash update."""
        old = self.assignment[component_index]
        if old == host_index:
            return self
        table = self.compiled._zobrist[component_index]
        value = self._hash
        if old != UNDEPLOYED:
            value ^= table[old]
        if host_index != UNDEPLOYED:
            value ^= table[host_index]
        assignment = list(self.assignment)
        assignment[component_index] = host_index
        return CompiledDeployment(self.compiled, assignment, _hash=value)

    def to_deployment(self) -> Deployment:
        return Deployment(self.compiled.decode(self.assignment))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompiledDeployment):
            return (self.assignment == other.assignment
                    and self.compiled is other.compiled)
        return NotImplemented

    def __len__(self) -> int:
        return len(self.assignment)

    def __repr__(self) -> str:
        return (f"CompiledDeployment({len(self.assignment)} components, "
                f"hash={self._hash:#x})")


# ---------------------------------------------------------------------------
# Per-model snapshot cache, invalidated by model listener events
# ---------------------------------------------------------------------------

class _Invalidator:
    """Model listener marking the model's current snapshot stale.

    Deployment changes are ignored: evaluation takes the deployment as an
    explicit argument, so the model's current placement never affects a
    snapshot's validity (the same rule the engine's memo cache follows).
    """

    __slots__ = ("compiled",)

    def __init__(self) -> None:
        self.compiled: Optional[CompiledModel] = None

    def __call__(self, event: str, payload: Dict[str, Any]) -> None:
        if event != DEPLOYMENT_CHANGED and self.compiled is not None:
            self.compiled.stale = True


_cache_lock = threading.Lock()
_snapshots: "weakref.WeakKeyDictionary[DeploymentModel, CompiledModel]" = \
    weakref.WeakKeyDictionary()
_invalidators: "weakref.WeakKeyDictionary[DeploymentModel, _Invalidator]" = \
    weakref.WeakKeyDictionary()


def compiled_model(model: DeploymentModel) -> CompiledModel:
    """The current snapshot of *model*, compiling (once) if needed.

    Snapshots are cached per model instance and recompiled lazily after any
    topology or parameter event — one compilation is shared by every engine
    and every algorithm scoring the same model generation.
    """
    with _cache_lock:
        snapshot = _snapshots.get(model)
        if snapshot is not None and not snapshot.stale:
            return snapshot
        invalidator = _invalidators.get(model)
        if invalidator is None:
            invalidator = _Invalidator()
            _invalidators[model] = invalidator
            model.add_listener(invalidator)
        generation = 0 if snapshot is None else snapshot.generation + 1
        snapshot = CompiledModel(model, generation=generation)
        invalidator.compiled = snapshot
        _snapshots[model] = snapshot
        return snapshot


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

class Kernel:
    """Compiled evaluator for one objective over one model snapshot.

    ``evaluate(assignment)`` must be *bit-identical* to the objective's
    ``evaluate(model, mapping)`` for any mapping that encodes to
    *assignment* — kernels replicate the object path's arithmetic in the
    same accumulation order.  ``move_delta`` must agree with two full
    evaluations to 1e-9 (the repository-wide incremental contract).
    """

    supports_delta = True

    def __init__(self, objective: Objective, compiled: CompiledModel):
        self.objective = objective
        self.cm = compiled

    def evaluate(self, assignment: Sequence[int]) -> float:
        raise NotImplementedError

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(objective={self.objective.name}, "
                f"gen={self.cm.generation})")


class AvailabilityKernel(Kernel):
    """Kernel for :class:`AvailabilityObjective` (criticality-aware)."""

    def __init__(self, objective: AvailabilityObjective,
                 compiled: CompiledModel):
        super().__init__(objective, compiled)
        if objective.use_criticality:
            self.edge_weight = [
                f * c for f, c in zip(compiled.edge_frequency,
                                      compiled.edge_criticality, strict=True)]
        else:
            self.edge_weight = compiled.edge_frequency
        # Deployment-independent denominator (the object path's
        # _total_weight); computed once per snapshot.
        self.total_weight = sum(self.edge_weight)

    def evaluate(self, assignment: Sequence[int]) -> float:
        cm = self.cm
        rel = cm.reliability
        total = 0.0
        delivered = 0.0
        for edge, weight in enumerate(self.edge_weight):
            if weight <= 0.0:
                continue
            total += weight
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == UNDEPLOYED or host_b == UNDEPLOYED:
                continue
            delivered += weight * rel[host_a][host_b]
        if total == 0.0:
            return 1.0
        return delivered / total

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        total = self.total_weight
        if total == 0.0:
            return 0.0
        cm = self.cm
        rel = cm.reliability
        old_host = assignment[component_index]
        new_rel_row = rel[new_host_index]
        old_rel_row = rel[old_host] if old_host != UNDEPLOYED else None
        delta_delivered = 0.0
        for k in cm.neighbors(component_index):
            weight = self.edge_weight[cm.adj_edge[k]]
            if weight <= 0.0:
                continue
            neighbor_host = assignment[cm.adj_neighbor[k]]
            if neighbor_host == UNDEPLOYED:
                continue
            new_rel = new_rel_row[neighbor_host]
            old_rel = (old_rel_row[neighbor_host]
                       if old_rel_row is not None else 0.0)
            delta_delivered += weight * (new_rel - old_rel)
        return delta_delivered / total


class LatencyKernel(Kernel):
    """Kernel for :class:`LatencyObjective`.

    Pair costs are pre-split into a base term (delay, local dispatch, or
    the unreachable penalty) and a bandwidth divisor so the per-edge cost
    is ``base + evt_size / bandwidth`` — the exact division the object
    path performs, preserving bit-identity.
    """

    def __init__(self, objective: LatencyObjective, compiled: CompiledModel):
        super().__init__(objective, compiled)
        n = compiled.n_hosts
        local = objective.local_dispatch_cost
        base = [[0.0] * n for _ in range(n)]
        divisor = [[_INF] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i == j:
                    base[i][j] = local
                elif compiled.link_up[i][j]:
                    bandwidth = compiled.bandwidth[i][j]
                    if bandwidth <= 0.0:
                        base[i][j] = UNREACHABLE_COST
                    else:
                        base[i][j] = compiled.delay[i][j]
                        divisor[i][j] = bandwidth
                else:
                    base[i][j] = UNREACHABLE_COST
        self.cost_base = base
        self.cost_divisor = divisor

    def _pair_cost(self, host_a: int, host_b: int, evt_size: float) -> float:
        divisor = self.cost_divisor[host_a][host_b]
        if divisor != _INF:
            return self.cost_base[host_a][host_b] + evt_size / divisor
        return self.cost_base[host_a][host_b]

    def evaluate(self, assignment: Sequence[int]) -> float:
        cm = self.cm
        total = 0.0
        for edge, frequency in enumerate(cm.edge_frequency):
            if frequency <= 0.0:
                continue
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == UNDEPLOYED or host_b == UNDEPLOYED:
                total += frequency * UNREACHABLE_COST
                continue
            total += frequency * self._pair_cost(host_a, host_b,
                                                 cm.edge_evt_size[edge])
        return total

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        cm = self.cm
        old_host = assignment[component_index]
        delta = 0.0
        for k in cm.neighbors(component_index):
            edge = cm.adj_edge[k]
            frequency = cm.edge_frequency[edge]
            if frequency <= 0.0:
                continue
            neighbor_host = assignment[cm.adj_neighbor[k]]
            if neighbor_host == UNDEPLOYED:
                continue
            evt_size = cm.edge_evt_size[edge]
            new_cost = self._pair_cost(new_host_index, neighbor_host,
                                       evt_size)
            old_cost = (self._pair_cost(old_host, neighbor_host, evt_size)
                        if old_host != UNDEPLOYED else UNREACHABLE_COST)
            delta += frequency * (new_cost - old_cost)
        return delta


class CommunicationCostKernel(Kernel):
    """Kernel for :class:`CommunicationCostObjective`."""

    def evaluate(self, assignment: Sequence[int]) -> float:
        cm = self.cm
        total = 0.0
        for edge, volume in enumerate(cm.edge_volume):
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == UNDEPLOYED or host_b == UNDEPLOYED \
                    or host_a != host_b:
                total += volume
        return total

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        cm = self.cm
        old_host = assignment[component_index]
        delta = 0.0
        for k in cm.neighbors(component_index):
            volume = cm.edge_volume[cm.adj_edge[k]]
            neighbor_host = assignment[cm.adj_neighbor[k]]
            old_remote = (neighbor_host == UNDEPLOYED
                          or old_host == UNDEPLOYED
                          or old_host != neighbor_host)
            new_remote = (neighbor_host == UNDEPLOYED
                          or new_host_index != neighbor_host)
            delta += volume * (float(new_remote) - float(old_remote))
        return delta


class SecurityKernel(Kernel):
    """Kernel for :class:`SecurityObjective`."""

    def __init__(self, objective: SecurityObjective,
                 compiled: CompiledModel):
        super().__init__(objective, compiled)
        self.total_weight = sum(f for f in compiled.edge_frequency if f > 0.0)

    def evaluate(self, assignment: Sequence[int]) -> float:
        cm = self.cm
        security = cm.security
        total = 0.0
        secured = 0.0
        for edge, weight in enumerate(cm.edge_frequency):
            if weight <= 0.0:
                continue
            total += weight
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == UNDEPLOYED or host_b == UNDEPLOYED:
                continue
            secured += weight * security[host_a][host_b]
        if total == 0.0:
            return 1.0
        return secured / total

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        total = self.total_weight
        if total == 0.0:
            return 0.0
        cm = self.cm
        security = cm.security
        old_host = assignment[component_index]
        new_row = security[new_host_index]
        old_row = security[old_host] if old_host != UNDEPLOYED else None
        delta_secured = 0.0
        for k in cm.neighbors(component_index):
            weight = cm.edge_frequency[cm.adj_edge[k]]
            if weight <= 0.0:
                continue
            neighbor_host = assignment[cm.adj_neighbor[k]]
            if neighbor_host == UNDEPLOYED:
                continue
            new_sec = new_row[neighbor_host]
            old_sec = old_row[neighbor_host] if old_row is not None else 0.0
            delta_secured += weight * (new_sec - old_sec)
        return delta_secured / total


class ThroughputKernel(Kernel):
    """Kernel for :class:`ThroughputObjective` with an accumulator state.

    Full evaluation aggregates per-host-pair demand exactly like the
    object path.  ``move_delta`` maintains that demand table (volumes plus
    contributing-edge counts) for the *base* assignment: the first query
    against a new base pays one O(edges) rebuild, every further query
    against the same base costs O(degree) accumulator updates plus an
    O(pairs) bottleneck re-scan — the dominant local-search pattern of
    many candidate moves probed per accepted move.
    """

    def __init__(self, objective: ThroughputObjective,
                 compiled: CompiledModel):
        super().__init__(objective, compiled)
        self.unreachable = objective.UNREACHABLE_UTILIZATION
        #: (base assignment, demand {pair: volume}, counts {pair: edges},
        #:  base value) — rebuilt whenever the queried base changes.
        self._state: Optional[Tuple[Tuple[int, ...],
                                    Dict[Tuple[int, int], float],
                                    Dict[Tuple[int, int], int], float]] = None

    def _demand(self, assignment: Sequence[int]) -> Tuple[
            Dict[Tuple[int, int], float], Dict[Tuple[int, int], int]]:
        cm = self.cm
        demand: Dict[Tuple[int, int], float] = {}
        counts: Dict[Tuple[int, int], int] = {}
        for edge, volume in enumerate(cm.edge_volume):
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == UNDEPLOYED or host_b == UNDEPLOYED \
                    or host_a == host_b:
                continue
            key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
            demand[key] = demand.get(key, 0.0) + volume
            counts[key] = counts.get(key, 0) + 1
        return demand, counts

    def _worst(self, demand: Dict[Tuple[int, int], float]) -> float:
        bandwidth = self.cm.bandwidth
        unreachable = self.unreachable
        worst = 0.0
        for (host_a, host_b), volume in demand.items():
            capacity = bandwidth[host_a][host_b]
            if capacity <= 0.0:
                if unreachable > worst:
                    worst = unreachable
            elif capacity != _INF:
                utilization = volume / capacity
                if utilization > worst:
                    worst = utilization
        return worst

    def evaluate(self, assignment: Sequence[int]) -> float:
        demand, __ = self._demand(assignment)
        return self._worst(demand)

    def _base_state(self, assignment: Sequence[int]):
        key = tuple(assignment)
        state = self._state
        if state is None or state[0] != key:
            demand, counts = self._demand(assignment)
            state = (key, demand, counts, self._worst(demand))
            self._state = state
        return state

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        cm = self.cm
        __, demand, counts, base_value = self._base_state(assignment)
        old_host = assignment[component_index]
        if old_host == new_host_index:
            return 0.0
        volume_changes: Dict[Tuple[int, int], float] = {}
        count_changes: Dict[Tuple[int, int], int] = {}
        for k in cm.neighbors(component_index):
            volume = cm.edge_volume[cm.adj_edge[k]]
            neighbor_host = assignment[cm.adj_neighbor[k]]
            if neighbor_host == UNDEPLOYED:
                continue
            if old_host != UNDEPLOYED and old_host != neighbor_host:
                key = ((old_host, neighbor_host) if old_host <= neighbor_host
                       else (neighbor_host, old_host))
                volume_changes[key] = volume_changes.get(key, 0.0) - volume
                count_changes[key] = count_changes.get(key, 0) - 1
            if new_host_index != neighbor_host:
                key = ((new_host_index, neighbor_host)
                       if new_host_index <= neighbor_host
                       else (neighbor_host, new_host_index))
                volume_changes[key] = volume_changes.get(key, 0.0) + volume
                count_changes[key] = count_changes.get(key, 0) + 1
        bandwidth = self.cm.bandwidth
        unreachable = self.unreachable
        worst = 0.0
        for key, volume in demand.items():
            change = count_changes.get(key)
            if change is not None:
                if counts[key] + change <= 0:
                    continue  # every contributing edge moved away
                volume = volume + volume_changes[key]
            host_a, host_b = key
            capacity = bandwidth[host_a][host_b]
            if capacity <= 0.0:
                if unreachable > worst:
                    worst = unreachable
            elif capacity != _INF:
                utilization = volume / capacity
                if utilization > worst:
                    worst = utilization
        for key, change in count_changes.items():
            if key in demand or change <= 0:
                continue
            host_a, host_b = key
            capacity = bandwidth[host_a][host_b]
            if capacity <= 0.0:
                if unreachable > worst:
                    worst = unreachable
            elif capacity != _INF:
                utilization = volume_changes[key] / capacity
                if utilization > worst:
                    worst = utilization
        return worst - base_value


class DurabilityKernel(Kernel):
    """Kernel for :class:`DurabilityObjective` with per-host accumulators.

    ``move_delta`` keeps per-host running CPU-load and radio-traffic
    accumulators for the base assignment; a probed move adjusts O(degree)
    entries on scratch copies and re-derives the minimum projected
    lifetime in O(hosts).
    """

    def __init__(self, objective: DurabilityObjective,
                 compiled: CompiledModel):
        super().__init__(objective, compiled)
        self._state: Optional[Tuple[Tuple[int, ...], List[float],
                                    List[float], float]] = None

    def _loads(self, assignment: Sequence[int]
               ) -> Tuple[List[float], List[float]]:
        cm = self.cm
        cpu_load = [0.0] * cm.n_hosts
        radio = [0.0] * cm.n_hosts
        for component_index, host in enumerate(assignment):
            if host != UNDEPLOYED:
                cpu_load[host] += cm.component_cpu[component_index]
        for edge, volume in enumerate(cm.edge_volume):
            host_a = assignment[cm.edge_a[edge]]
            host_b = assignment[cm.edge_b[edge]]
            if host_a == host_b:
                continue
            if host_a != UNDEPLOYED:
                radio[host_a] += volume
            if host_b != UNDEPLOYED:
                radio[host_b] += volume
        return cpu_load, radio

    def _lifetime_min(self, cpu_load: List[float],
                      radio: List[float]) -> float:
        objective: DurabilityObjective = self.objective
        max_lifetime = objective.max_lifetime
        idle = objective.idle_draw
        cpu_coefficient = objective.cpu_coefficient
        radio_coefficient = objective.radio_coefficient
        best: Optional[float] = None
        for host, battery in enumerate(self.cm.host_battery):
            if battery == _INF:
                continue
            draw = (idle + cpu_coefficient * cpu_load[host]
                    + radio_coefficient * radio[host])
            lifetime = (max_lifetime if draw <= 0.0
                        else min(battery / draw, max_lifetime))
            if lifetime < max_lifetime and (best is None or lifetime < best):
                best = lifetime
        return max_lifetime if best is None else best

    def evaluate(self, assignment: Sequence[int]) -> float:
        cpu_load, radio = self._loads(assignment)
        return self._lifetime_min(cpu_load, radio)

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        key = tuple(assignment)
        state = self._state
        if state is None or state[0] != key:
            cpu_load, radio = self._loads(assignment)
            state = (key, cpu_load, radio, self._lifetime_min(cpu_load, radio))
            self._state = state
        __, cpu_load, radio, base_value = state
        old_host = assignment[component_index]
        if old_host == new_host_index:
            return 0.0
        cm = self.cm
        cpu_scratch = list(cpu_load)
        radio_scratch = list(radio)
        cpu = cm.component_cpu[component_index]
        if old_host != UNDEPLOYED:
            cpu_scratch[old_host] -= cpu
        cpu_scratch[new_host_index] += cpu
        for k in cm.neighbors(component_index):
            volume = cm.edge_volume[cm.adj_edge[k]]
            neighbor_host = assignment[cm.adj_neighbor[k]]
            if neighbor_host == UNDEPLOYED:
                continue
            if old_host != UNDEPLOYED and old_host != neighbor_host:
                radio_scratch[old_host] -= volume
                radio_scratch[neighbor_host] -= volume
            if new_host_index != neighbor_host:
                radio_scratch[new_host_index] += volume
                radio_scratch[neighbor_host] += volume
        return self._lifetime_min(cpu_scratch, radio_scratch) - base_value


class WeightedKernel(Kernel):
    """Composition of term kernels mirroring :class:`WeightedObjective`."""

    def __init__(self, objective: WeightedObjective,
                 compiled: CompiledModel,
                 term_kernels: Sequence[Kernel]):
        super().__init__(objective, compiled)
        self.term_kernels: Tuple[Kernel, ...] = tuple(term_kernels)
        self.supports_delta = all(k.supports_delta for k in self.term_kernels)

    def evaluate(self, assignment: Sequence[int]) -> float:
        objective: WeightedObjective = self.objective
        score = 0.0
        for (term, weight), scale, kernel in zip(
                objective.terms, objective.scales, self.term_kernels,
                strict=True):
            value = kernel.evaluate(assignment) / scale
            if term.direction == MAXIMIZE:
                score += weight * value
            else:
                score -= weight * value
        return score

    def move_delta(self, assignment: Sequence[int], component_index: int,
                   new_host_index: int) -> float:
        objective: WeightedObjective = self.objective
        delta = 0.0
        for (term, weight), scale, kernel in zip(
                objective.terms, objective.scales, self.term_kernels,
                strict=True):
            term_delta = kernel.move_delta(assignment, component_index,
                                           new_host_index) / scale
            if term.direction == MAXIMIZE:
                delta += weight * term_delta
            else:
                delta -= weight * term_delta
        return delta


# ---------------------------------------------------------------------------
# Kernel registry
# ---------------------------------------------------------------------------

KernelFactory = Callable[[Objective, CompiledModel], Optional[Kernel]]


def _weighted_factory(objective: Objective,
                      compiled: CompiledModel) -> Optional[Kernel]:
    assert isinstance(objective, WeightedObjective)
    term_kernels = []
    for term, __ in objective.terms:
        kernel = compile_kernel(term, compiled)
        if kernel is None:
            return None  # uncompilable term: whole combination falls back
        term_kernels.append(kernel)
    return WeightedKernel(objective, compiled, term_kernels)


#: Exact-type dispatch: subclasses may override ``evaluate`` arbitrarily,
#: so only the pristine built-in classes route through kernels.
_KERNEL_FACTORIES: Dict[Type[Objective], KernelFactory] = {
    AvailabilityObjective: AvailabilityKernel,
    LatencyObjective: LatencyKernel,
    CommunicationCostObjective: CommunicationCostKernel,
    SecurityObjective: SecurityKernel,
    ThroughputObjective: ThroughputKernel,
    DurabilityObjective: DurabilityKernel,
    WeightedObjective: _weighted_factory,
}


def register_kernel(objective_type: Type[Objective],
                    factory: KernelFactory) -> None:
    """Opt a custom objective type into the compiled fast path.

    The factory receives ``(objective, compiled_model)`` and returns a
    :class:`Kernel` (or ``None`` to decline).  The kernel's ``evaluate``
    must be bit-identical to the objective's — the engine memoizes the two
    paths interchangeably.
    """
    _KERNEL_FACTORIES[objective_type] = factory


def compile_kernel(objective: Objective,
                   compiled: CompiledModel) -> Optional[Kernel]:
    """A kernel evaluating *objective* over *compiled*, or ``None``.

    ``None`` means the objective has no registered kernel (or a weighted
    term doesn't) and callers must use the object path.  Dispatch is on
    the objective's *exact* type: subclasses with overridden behavior
    never silently inherit a kernel that ignores their overrides.
    """
    factory = _KERNEL_FACTORIES.get(type(objective))
    if factory is None:
        return None
    return factory(objective, compiled)
