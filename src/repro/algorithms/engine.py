"""Memoized incremental evaluation and parallel algorithm portfolios.

Two hot-path observations drive this module:

* The analyzer runs *several* redeployment algorithms per improvement cycle
  (Section 4.3) against the same model, and those algorithms keep re-scoring
  the same deployments — the initial deployment, elite genetic individuals,
  revisited local-search states.  :class:`EvaluationEngine` memoizes
  ``Objective.evaluate`` on the hashable
  :class:`~repro.core.model.Deployment` and routes single-component moves
  through the O(degree) ``Objective.move_delta`` fast path whenever the
  objective declares ``supports_delta``.

* One slow or crashing algorithm must not stall the monitor→analyze→effect
  loop.  :class:`PortfolioRunner` executes a portfolio of algorithms
  concurrently with per-algorithm timeouts; failed or timed-out algorithms
  degrade to a skipped :class:`PortfolioOutcome` instead of aborting the
  cycle, and per-run budgets make overrunning algorithms truncate
  gracefully inside their own thread.

Evaluation counters (cache hits/misses, full vs delta evaluations, wall
time against budget) are recorded into ``AlgorithmResult.extra["engine"]``
so benchmarks can prove the savings.
"""

from __future__ import annotations

import contextlib
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.compiled import (
    CompiledModel, Kernel, compile_kernel, compiled_model,
)
from repro.core.constraints import ConstraintSet
from repro.core.errors import AlgorithmError, EvaluationBudgetExceeded
from repro.core.model import DEPLOYMENT_CHANGED, Deployment, DeploymentModel
from repro.core.objectives import Objective
from repro.core.report import ReportBase, deprecated_alias

AlgorithmFactory = Callable[[], "Any"]


class DeploymentCache:
    """Thread-safe memo of objective values, keyed on (objective, deployment).

    The cache binds to one model at a time and registers itself as a model
    listener: any topology or parameter change — in particular monitors
    writing fresh observations through ``set_*_param`` — invalidates every
    entry, so stale values can never be served after the monitored system
    drifts.  ``DEPLOYMENT_CHANGED`` events do *not* invalidate: evaluation
    takes the deployment as an explicit argument, so the model's current
    deployment is irrelevant to cached scores.

    Keys include the objective instance itself, so one cache can be shared
    by a whole portfolio even when algorithms score different objectives
    (e.g. BIP's hard-wired communication cost next to the analyzer's
    availability).
    """

    def __init__(self, max_entries: int = 200_000):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.RLock()
        self._values: Dict[Tuple[int, Deployment], float] = {}
        # Strong refs to keyed objectives so id() keys cannot be recycled.
        self._objectives: Dict[int, Objective] = {}
        self._model_ref: Optional[weakref.ref] = None
        #: Number of times the whole cache was dropped (model change/rebind).
        self.invalidations = 0

    # -- model binding ------------------------------------------------------
    def _on_model_event(self, event: str, payload: Dict[str, Any]) -> None:
        if event == DEPLOYMENT_CHANGED:
            return
        self.invalidate()

    def bind(self, model: DeploymentModel) -> None:
        """Attach to *model*, dropping entries memoized against another."""
        with self._lock:
            current = self._model_ref() if self._model_ref is not None else None
            if current is model:
                return
            if current is not None:
                with contextlib.suppress(ValueError):
                    current.remove_listener(self._on_model_event)
            self._drop_entries()
            model.add_listener(self._on_model_event)
            self._model_ref = weakref.ref(model)

    def invalidate(self) -> None:
        """Drop every entry (called on any model/parameter mutation)."""
        with self._lock:
            self._drop_entries()

    def _drop_entries(self) -> None:
        if self._values:
            self._values.clear()
            self._objectives.clear()
        self.invalidations += 1

    # -- memo ---------------------------------------------------------------
    def lookup(self, objective: Objective,
               deployment: Deployment) -> Optional[float]:
        with self._lock:
            return self._values.get((id(objective), deployment))

    def store(self, objective: Objective, deployment: Deployment,
              value: float) -> None:
        with self._lock:
            if len(self._values) >= self.max_entries:
                # Wholesale drop: cheap, and correct for a memo cache.
                self._values.clear()
                self._objectives.clear()
            self._values[(id(objective), deployment)] = value
            self._objectives[id(objective)] = objective

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


@dataclass
class EvaluationStats:
    """Per-run evaluation counters, reported in ``AlgorithmResult.extra``."""

    full_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    delta_evaluations: int = 0
    #: move_delta requests the objective could not serve incrementally
    #: (``supports_delta`` is False) and that fell back to full evaluation.
    delta_fallbacks: int = 0
    #: Full evaluations served by a compiled kernel instead of the
    #: object-path ``Objective.evaluate`` (subset of ``full_evaluations``).
    kernel_evaluations: int = 0
    #: Delta evaluations served by a compiled kernel (subset of
    #: ``delta_evaluations``).
    kernel_deltas: int = 0
    #: ``allows``/``is_satisfied`` queries answered by the run's constraint
    #: checker (compiled or object path) — the search loop's legality work.
    constraint_checks: int = 0
    #: Move candidates whose delta was (re)computed by the search frontier.
    moves_rescored: int = 0
    #: Move candidates served from the frontier's cached score without
    #: rescoring — the work dirty-move invalidation avoided.
    frontier_hits: int = 0
    truncated: bool = False

    @property
    def charged(self) -> int:
        """Budget-charged work: full evaluations plus delta evaluations."""
        return self.full_evaluations + self.delta_evaluations


class EvaluationEngine:
    """Budgeted, memoized evaluation facade over one objective.

    One engine serves one algorithm run at a time (call :meth:`reset`
    between runs); several engines may share a :class:`DeploymentCache`, in
    which case memoized values flow between the algorithms of a portfolio
    while counters and budgets stay per-run.

    Args:
        objective: The objective to score deployments with.
        constraints: Constraint set (carried for callers; evaluation itself
            is unconstrained).
        cache: Shared memo; a private one is created when omitted.
        max_evaluations: Budget on charged evaluations (full + delta) per
            run; ``None`` means unlimited.
        max_seconds: Wall-clock budget per run; ``None`` means unlimited.
        use_kernels: Route evaluation through the compiled kernels of
            :mod:`repro.algorithms.compiled` when the objective has one
            (built-in objectives do; custom objectives fall back to the
            object path automatically).  Kernel values are bit-compatible
            with ``Objective.evaluate``, so memoized scores mix freely.
    """

    def __init__(self, objective: Objective,
                 constraints: Optional[ConstraintSet] = None, *,
                 cache: Optional[DeploymentCache] = None,
                 max_evaluations: Optional[int] = None,
                 max_seconds: Optional[float] = None,
                 use_kernels: bool = True):
        self.objective = objective
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.cache = cache if cache is not None else DeploymentCache()
        self.max_evaluations = max_evaluations
        self.max_seconds = max_seconds
        self.use_kernels = use_kernels
        self.stats = EvaluationStats()
        self._started = time.perf_counter()
        self._best: Optional[Tuple[Deployment, float]] = None
        # (model weakref, CompiledModel the kernel was built against,
        #  kernel or None): one kernel per model generation per engine, so
        # stateful kernels are never shared across portfolio threads.
        self._kernel_state: Optional[
            Tuple[weakref.ref, CompiledModel, Optional[Kernel]]] = None

    # -- run lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Start a fresh run: zero the counters, restart the clock."""
        self.stats = EvaluationStats()
        self._started = time.perf_counter()
        self._best = None

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    @property
    def exhausted(self) -> bool:
        if (self.max_evaluations is not None
                and self.stats.charged >= self.max_evaluations):
            return True
        return self.max_seconds is not None and self.elapsed >= self.max_seconds

    def _charge(self) -> None:
        if self.max_evaluations is not None \
                and self.stats.charged >= self.max_evaluations:
            self.stats.truncated = True
            raise EvaluationBudgetExceeded(
                f"{self.objective.name}: evaluation budget "
                f"{self.max_evaluations} exhausted")
        if self.max_seconds is not None and self.elapsed >= self.max_seconds:
            self.stats.truncated = True
            raise EvaluationBudgetExceeded(
                f"{self.objective.name}: time budget "
                f"{self.max_seconds:.3f}s exhausted")

    # -- compiled-kernel routing --------------------------------------------
    def _kernel_for(self, model: DeploymentModel) -> Optional[Kernel]:
        """The engine's kernel for *model*'s current generation, or None.

        Compiles at most once per (engine, model generation): the model
        snapshot itself is shared process-wide through
        :func:`~repro.algorithms.compiled.compiled_model`, while the kernel
        (which may hold per-base accumulator state) stays private to this
        engine.  Returns None when kernels are disabled or the objective
        has no registered kernel — callers then use the object path.
        """
        if not self.use_kernels:
            return None
        snapshot = compiled_model(model)
        cached = self._kernel_state
        if cached is not None and cached[0]() is model \
                and cached[1] is snapshot:
            return cached[2]
        kernel = compile_kernel(self.objective, snapshot)
        self._kernel_state = (weakref.ref(model), snapshot, kernel)
        return kernel

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, model: DeploymentModel,
                 deployment: Mapping[str, str], *,
                 charge: bool = True) -> float:
        """Memoized ``objective.evaluate`` keyed on the deployment.

        Cache hits are free; misses are charged against the budget (unless
        ``charge`` is False, used for final result scoring) and served by
        the objective's compiled kernel when one exists.
        """
        self.cache.bind(model)
        key = (deployment if isinstance(deployment, Deployment)
               else Deployment(deployment))
        cached = self.cache.lookup(self.objective, key)
        if cached is not None:
            self.stats.cache_hits += 1
            self._track_best(key, cached)
            return cached
        if charge:
            self._charge()
        self.stats.cache_misses += 1
        self.stats.full_evaluations += 1
        value: Optional[float] = None
        kernel = self._kernel_for(model)
        if kernel is not None:
            assignment = kernel.cm.encode(key)
            if assignment is not None:
                value = kernel.evaluate(assignment)
                self.stats.kernel_evaluations += 1
        if value is None:
            value = self.objective.evaluate(model, key)
        self.cache.store(self.objective, key, value)
        self._track_best(key, value)
        return value

    def move_delta(self, model: DeploymentModel,
                   deployment: Mapping[str, str], component: str,
                   new_host: str) -> float:
        """Objective change for one component move.

        Routed through the objective's compiled kernel when one exists,
        else its O(degree) ``move_delta`` when it declares
        ``supports_delta``; otherwise served by two (memoized) full
        evaluations.
        """
        if getattr(self.objective, "supports_delta", False):
            self._charge()
            self.stats.delta_evaluations += 1
            kernel = self._kernel_for(model)
            if kernel is not None and kernel.supports_delta:
                compiled = kernel.cm
                component_index = compiled.component_index.get(component)
                host_index = compiled.host_index.get(new_host)
                if component_index is not None and host_index is not None:
                    assignment = compiled.encode(deployment)
                    if assignment is not None:
                        self.stats.kernel_deltas += 1
                        return kernel.move_delta(assignment, component_index,
                                                 host_index)
            return self.objective.move_delta(model, deployment, component,
                                             new_host)
        self.stats.delta_fallbacks += 1
        base = self.evaluate(model, deployment)
        moved = dict(deployment)
        moved[component] = new_host
        return self.evaluate(model, moved) - base

    def move_delta_indexed(self, model: DeploymentModel,
                           deployment: Mapping[str, str],
                           assignment: Sequence[int], component_index: int,
                           host_index: int) -> float:
        """:meth:`move_delta` for callers that maintain the encoded form.

        ``repro.algorithms.search.SearchState`` keeps *assignment* (the
        compiled host-index array) in lock-step with *deployment*, so the
        per-call ``CompiledModel.encode`` — O(components) — is skipped and
        a kernel delta costs only O(degree).  Budget charging and counters
        are identical to :meth:`move_delta`.
        """
        if getattr(self.objective, "supports_delta", False):
            self._charge()
            self.stats.delta_evaluations += 1
            kernel = self._kernel_for(model)
            if kernel is not None and kernel.supports_delta:
                self.stats.kernel_deltas += 1
                return kernel.move_delta(assignment, component_index,
                                         host_index)
            compiled = compiled_model(model)
            return self.objective.move_delta(
                model, deployment, compiled.component_ids[component_index],
                compiled.host_ids[host_index])
        compiled = compiled_model(model)
        self.stats.delta_fallbacks += 1
        base = self.evaluate(model, deployment)
        moved = dict(deployment)
        moved[compiled.component_ids[component_index]] = \
            compiled.host_ids[host_index]
        return self.evaluate(model, moved) - base

    def evaluate_move(self, model: DeploymentModel,
                      deployment: Mapping[str, str], component: str,
                      new_host: str, current_value: float) -> float:
        return current_value + self.move_delta(model, deployment, component,
                                               new_host)

    # -- best-so-far (graceful truncation) ----------------------------------
    def _track_best(self, deployment: Deployment, value: float) -> None:
        if self._best is None or self.objective.is_better(value,
                                                          self._best[1]):
            self._best = (deployment, value)

    def best_seen(self) -> Optional[Tuple[Deployment, float]]:
        """Best fully-evaluated deployment of this run (for truncation)."""
        return self._best

    # -- reporting ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Counters + budget state, merged into ``AlgorithmResult.extra``."""
        return {
            "full_evaluations": self.stats.full_evaluations,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
            "delta_evaluations": self.stats.delta_evaluations,
            "delta_fallbacks": self.stats.delta_fallbacks,
            "kernel_evaluations": self.stats.kernel_evaluations,
            "kernel_deltas": self.stats.kernel_deltas,
            "constraint_checks": self.stats.constraint_checks,
            "moves_rescored": self.stats.moves_rescored,
            "frontier_hits": self.stats.frontier_hits,
            "supports_delta": bool(getattr(self.objective, "supports_delta",
                                           False)),
            "truncated": self.stats.truncated,
            "elapsed": self.elapsed,
            "max_evaluations": self.max_evaluations,
            "max_seconds": self.max_seconds,
        }

    def __repr__(self) -> str:
        return (f"EvaluationEngine(objective={self.objective.name}, "
                f"cache={len(self.cache)} entries, "
                f"charged={self.stats.charged})")


# ---------------------------------------------------------------------------
# Portfolio execution
# ---------------------------------------------------------------------------

#: Outcome statuses.
OK = "ok"
SKIPPED = "skipped"     # AlgorithmError (e.g. exact's space guard, no valid)
ERROR = "error"         # unexpected exception inside the algorithm
TIMEOUT = "timeout"     # per-algorithm wall-clock deadline passed


@dataclass
class PortfolioOutcome:
    """One algorithm's fate within a portfolio run."""

    name: str
    status: str
    result: Optional[Any] = None  # AlgorithmResult when status == OK
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass
class PortfolioReport(ReportBase):
    """All outcomes of one portfolio run, in submission order."""

    outcomes: List[PortfolioOutcome] = field(default_factory=list)
    elapsed: float = 0.0

    def results(self) -> List[Any]:
        return [o.result for o in self.outcomes if o.result is not None]

    def outcome(self, name: str) -> PortfolioOutcome:
        for candidate in self.outcomes:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    @property
    def succeeded(self) -> Tuple[str, ...]:
        return tuple(o.name for o in self.outcomes if o.ok)

    @property
    def degraded(self) -> Tuple[str, ...]:
        return tuple(o.name for o in self.outcomes if not o.ok)

    def counters(self) -> Dict[str, int]:
        """Aggregate engine counters across the portfolio's results."""
        totals = {"full_evaluations": 0, "cache_hits": 0, "cache_misses": 0,
                  "delta_evaluations": 0, "delta_fallbacks": 0,
                  "kernel_evaluations": 0, "kernel_deltas": 0,
                  "constraint_checks": 0, "moves_rescored": 0,
                  "frontier_hits": 0}
        for outcome in self.outcomes:
            if outcome.result is None:
                continue
            engine = outcome.result.extra.get("engine", {})
            for key in totals:
                totals[key] += int(engine.get(key, 0))
        return totals

    def summary_line(self) -> str:
        parts = [f"{o.name}:{o.status}" for o in self.outcomes]
        return f"portfolio[{', '.join(parts)}] in {self.elapsed * 1000:.1f} ms"

    def to_dict(self, include_timing: bool = True,
                **opts: Any) -> Dict[str, Any]:
        outcomes = []
        for o in self.outcomes:
            entry: Dict[str, Any] = {"name": o.name, "status": o.status,
                                     "error": o.error}
            if o.result is not None:
                entry["result"] = o.result.to_dict(
                    include_timing=include_timing)
            if include_timing:
                entry["elapsed"] = o.elapsed
            outcomes.append(entry)
        payload: Dict[str, Any] = {"outcomes": outcomes,
                                   "counters": self.counters()}
        if include_timing:
            payload["elapsed"] = self.elapsed
        return payload

    def render(self, **opts: Any) -> str:
        lines = [self.summary_line()]
        for o in self.outcomes:
            if o.result is not None:
                lines.append(f"  {o.result.summary_line()}")
            else:
                lines.append(f"  {o.name}: {o.status}"
                             + (f" ({o.error})" if o.error else ""))
        return "\n".join(lines)

    summary = deprecated_alias("summary_line", "summary")


class PortfolioRunner:
    """Run a portfolio of algorithms against one model, concurrently.

    Every algorithm gets a fresh instance (from its factory) and a private
    :class:`EvaluationEngine`; all engines share one
    :class:`DeploymentCache`, so a deployment scored by any portfolio
    member is free for every other member — and for later runs of the same
    runner, until the model changes.

    A timed-out algorithm cannot be killed mid-thread, so the runner also
    arms each engine's ``max_seconds`` with the per-algorithm timeout: the
    overrunning algorithm truncates itself at its next evaluation while the
    portfolio has already moved on.

    Args:
        algorithm_timeout: Per-algorithm wall-clock deadline in seconds
            (None = unlimited).
        max_evaluations / max_seconds: Per-algorithm engine budgets.
        max_workers: Thread-pool width; defaults to the portfolio size.
        parallel: Run sequentially (sharing the cache) when False.
        cache: Shared memo; a private persistent one is created when
            omitted.
    """

    def __init__(self, *, algorithm_timeout: Optional[float] = None,
                 max_evaluations: Optional[int] = None,
                 max_seconds: Optional[float] = None,
                 max_workers: Optional[int] = None,
                 parallel: bool = True,
                 cache: Optional[DeploymentCache] = None):
        self.algorithm_timeout = algorithm_timeout
        self.max_evaluations = max_evaluations
        self.max_seconds = max_seconds
        self.max_workers = max_workers
        self.parallel = parallel
        self.cache = cache if cache is not None else DeploymentCache()

    # ------------------------------------------------------------------
    def _engine_for(self, algorithm: Any) -> EvaluationEngine:
        max_seconds = self.max_seconds
        if self.algorithm_timeout is not None:
            max_seconds = (self.algorithm_timeout if max_seconds is None
                           else min(max_seconds, self.algorithm_timeout))
        return EvaluationEngine(
            algorithm.objective, algorithm.constraints, cache=self.cache,
            max_evaluations=self.max_evaluations, max_seconds=max_seconds)

    def _run_one(self, name: str, factory: AlgorithmFactory,
                 model: DeploymentModel,
                 initial: Optional[Mapping[str, str]]) -> PortfolioOutcome:
        started = time.perf_counter()
        try:
            algorithm = factory()
            engine = self._engine_for(algorithm)
            result = algorithm.run(model, initial=initial, engine=engine)
            return PortfolioOutcome(name, OK, result=result,
                                    elapsed=time.perf_counter() - started)
        except AlgorithmError as exc:
            return PortfolioOutcome(name, SKIPPED, error=str(exc),
                                    elapsed=time.perf_counter() - started)
        except Exception as exc:  # noqa: BLE001 — degrade, never abort
            return PortfolioOutcome(name, ERROR,
                                    error=f"{type(exc).__name__}: {exc}",
                                    elapsed=time.perf_counter() - started)

    def run(self, model: DeploymentModel,
            factories: Mapping[str, AlgorithmFactory],
            initial: Optional[Mapping[str, str]] = None) -> PortfolioReport:
        """Execute every factory against *model*; never raises per-algorithm
        failures — each is captured as a degraded outcome."""
        started = time.perf_counter()
        ordered = list(factories.items())
        report = PortfolioReport()
        if not ordered:
            return report
        if not self.parallel or len(ordered) == 1:
            for name, factory in ordered:
                report.outcomes.append(
                    self._run_one(name, factory, model, initial))
            report.elapsed = time.perf_counter() - started
            return report

        workers = self.max_workers or len(ordered)
        pool = ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="portfolio")
        try:
            futures = [(name, pool.submit(self._run_one, name, factory,
                                          model, initial))
                       for name, factory in ordered]
            for name, future in futures:
                if self.algorithm_timeout is None:
                    report.outcomes.append(future.result())
                    continue
                # Deadline measured from portfolio start (plus scheduling
                # grace): members run concurrently, so the whole cycle's
                # wall clock stays bounded by one timeout, not their sum.
                remaining = (started + self.algorithm_timeout + 0.05
                             - time.perf_counter())
                try:
                    report.outcomes.append(
                        future.result(timeout=max(0.0, remaining)))
                except _FutureTimeout:
                    future.cancel()
                    report.outcomes.append(PortfolioOutcome(
                        name, TIMEOUT,
                        error=f"exceeded {self.algorithm_timeout:.3f}s",
                        elapsed=time.perf_counter() - started))
        finally:
            # wait=False: a hung member must not stall the cycle — its
            # engine's max_seconds makes it truncate itself in-thread.
            pool.shutdown(wait=False)
        report.elapsed = time.perf_counter() - started
        return report


def run_portfolio(model: DeploymentModel,
                  factories: Mapping[str, AlgorithmFactory], *,
                  algorithm_timeout: Optional[float] = None,
                  max_evaluations: Optional[int] = None,
                  parallel: bool = True,
                  initial: Optional[Mapping[str, str]] = None,
                  ) -> PortfolioReport:
    """One-shot convenience wrapper around :class:`PortfolioRunner`."""
    runner = PortfolioRunner(algorithm_timeout=algorithm_timeout,
                             max_evaluations=max_evaluations,
                             parallel=parallel)
    return runner.run(model, factories, initial=initial)
