"""Coign-style two-host min-cut partitioning baseline ([7] in the paper).

"Coign monitors inter-component communication and then selects a
distribution of the application that will minimize communication time,
using the lift-to-front minimum-cut graph cutting algorithm.  However,
Coign can only handle situations with two machine, client-server
applications."

The classic formulation: build a flow network whose nodes are the software
components plus two terminals standing for the two hosts; component
interactions become edges weighted by communication volume, and components
pinned to a host (by location constraints, here) get infinite-capacity edges
to that host's terminal.  A minimum s-t cut then separates the components
into the two host-sides while cutting (i.e., leaving remote) the least
communication volume.  We compute the cut with networkx's max-flow/min-cut.

The two-host restriction is structural — :class:`MinCutAlgorithm` raises on
any model with a different host count, which bench E8 demonstrates against
the framework's host-count-agnostic algorithms.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

import networkx as nx

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.constraints import ConstraintSet, LocationConstraint
from repro.core.errors import AlgorithmError
from repro.core.model import DeploymentModel
from repro.core.objectives import CommunicationCostObjective


class MinCutAlgorithm(DeploymentAlgorithm):
    """Optimal two-host partitioning by minimum cut.

    Only :class:`~repro.core.constraints.LocationConstraint` pins are
    honored (they become terminal edges); resource constraints are outside
    Coign's model and are reported via ``result.valid`` rather than enforced
    during the cut.
    """

    name = "mincut"
    exact = True  # optimal for its (two-host, pin-only) problem class

    # Effectively-infinite capacity for pin edges.
    _PIN_CAPACITY = 1.0e15

    def __init__(self, constraints: Optional[ConstraintSet] = None, seed=None):
        super().__init__(CommunicationCostObjective(), constraints, seed)

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        hosts = model.host_ids
        if len(hosts) != 2:
            raise AlgorithmError(
                f"mincut: Coign-style partitioning handles exactly two "
                f"hosts, got {len(hosts)} (the limitation noted in the "
                "paper's related work)")
        host_s, host_t = hosts
        source = ("__host__", host_s)
        sink = ("__host__", host_t)

        graph = nx.Graph()
        graph.add_node(source)
        graph.add_node(sink)
        for component in model.component_ids:
            graph.add_node(component)
        for comp_a, comp_b, link in model.interaction_pairs():
            volume = link.frequency * link.evt_size
            if volume > 0.0:
                graph.add_edge(comp_a, comp_b, capacity=volume)

        # Location pins become terminal edges.
        for constraint in self.constraints:
            if not isinstance(constraint, LocationConstraint):
                continue
            permits_s = constraint.permits_host(host_s)
            permits_t = constraint.permits_host(host_t)
            if permits_s and not permits_t:
                graph.add_edge(source, constraint.component,
                               capacity=self._PIN_CAPACITY)
            elif permits_t and not permits_s:
                graph.add_edge(sink, constraint.component,
                               capacity=self._PIN_CAPACITY)
            elif not permits_s and not permits_t:
                return None, {"reason":
                              f"{constraint.component} allowed on neither host"}

        cut_value, (side_s, side_t) = nx.minimum_cut(graph, source, sink)
        self._count_evaluation()

        assignment: Dict[str, str] = {}
        for component in model.component_ids:
            if component in side_s:
                assignment[component] = host_s
            else:
                assignment[component] = host_t
        extra = {"cut_value": cut_value,
                 "side_sizes": (len(side_s) - 1, len(side_t) - 1)}
        return assignment, extra
