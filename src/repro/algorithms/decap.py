"""DecAp — the decentralized auction-based algorithm (Section 5.2, [10]).

"In DecAp, each Decentralized Algorithm component acts as an agent and may
conduct or participate in auctions.  Each host's agent initiates an auction
for the redeployment of its local components, assuming none of its
neighboring (i.e., connected) hosts is already conducting an auction.  The
auction initiation is done by sending to all the neighboring hosts a message
that carries information about a component to be redeployed ... The bidding
agent on a given host calculates an initial bid for the auctioned component,
by considering the frequency and volume of interaction between components on
its host and the auctioned component.  Once the auctioneer has received all
the bids, it calculates the final bid based on the received information.
The host with the highest bid is selected as the winner and the component is
redeployed to it.  The complexity of this algorithm is O(k*n^3)."

This module is the *algorithmic* DecAp: it simulates the auction rounds
directly against the model under an explicit awareness relation, so it can
be compared head-to-head with the centralized algorithms (bench E5).  The
message-level protocol — real auction events flowing between per-host agents
over the middleware — lives in :mod:`repro.decentralized.auction` and
produces the same decisions.

Information locality is what distinguishes DecAp from the centralized
algorithms: a bidder only knows about the components deployed on *its own*
host, and the auctioneer combines the bids only with knowledge of *its*
local components and its link qualities.  Interactions with components on
third hosts are invisible to the auction, which is exactly why DecAp's
solutions improve with greater awareness but stay below the centralized
optimum (E5's expected shape).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.model import DeploymentModel


AwarenessMap = Dict[str, Set[str]]


def connectivity_awareness(model: DeploymentModel) -> AwarenessMap:
    """Awareness induced by direct, currently-connected physical links.

    This is the paper's default: each host synchronizes "with the remote
    hosts of which it is aware (i.e., to which it is directly connected)".
    """
    return {
        host: set(model.connected_neighbors(host))
        for host in model.host_ids
    }


class DecApAlgorithm(DeploymentAlgorithm):
    """Auction-based decentralized redeployment.

    Args:
        objective: Used for final scoring/reporting only — the auction's
            bids are availability-shaped by construction, matching DecAp's
            original target of "significantly improving the system's
            overall availability".
        awareness: Per-host sets of hosts whose agents can hear its
            auctions.  ``None`` derives awareness from physical
            connectivity.
        max_rounds: Upper bound on system-wide auction rounds.
    """

    name = "decap"
    decentralized = True

    def __init__(self, objective, constraints=None, seed=None,
                 awareness: Optional[AwarenessMap] = None,
                 max_rounds: int = 10, symmetric_bids: bool = True):
        super().__init__(objective, constraints, seed)
        self.awareness = awareness
        self.max_rounds = max_rounds
        #: Include bidder-to-bidder link terms in final bids so keep/move
        #: comparisons are information-symmetric.  Disable to measure the
        #: keep-biased naive formulation (ablation bench E11).
        self.symmetric_bids = symmetric_bids

    # ------------------------------------------------------------------
    def _local_bid(self, model: DeploymentModel, assignment: Mapping[str, str],
                   component: str, bidder: str) -> float:
        """The bidder's initial bid: interaction volume between *component*
        and the components currently deployed on *bidder*'s host.

        Uses ``frequency * evt_size`` — "the frequency and volume of
        interaction" — which becomes fully local (perfectly reliable) if the
        bidder wins.
        """
        bid = 0.0
        for other, host in assignment.items():
            if host == bidder and other != component:
                link = model.logical_link(component, other)
                if link is not None:
                    bid += link.frequency * link.evt_size
        return bid

    def _final_bid(self, model: DeploymentModel, assignment: Mapping[str, str],
                   component: str, auctioneer: str, bidder: str,
                   bids: Mapping[str, float]) -> float:
        """Auctioneer's final bid for placing the component on *bidder*.

        Combines three terms computable from the auction's information set:
        the bidder's own (now-local, perfectly reliable) interaction volume;
        traffic with components staying on the auctioneer's host, riding the
        auctioneer-bidder link; and traffic with the *other* bidders'
        components, riding the bidder-to-bidder links whose qualities the
        bidders piggyback on their bid messages.  This keeps the final bid
        information-symmetric with :meth:`_keep_value`, so comparisons are
        unbiased.
        """
        retained = 0.0
        for other, host in assignment.items():
            if host == auctioneer and other != component:
                link = model.logical_link(component, other)
                if link is not None:
                    retained += link.frequency * link.evt_size
        value = bids[bidder] \
            + retained * model.reliability(auctioneer, bidder)
        if self.symmetric_bids:
            for other_bidder, other_bid in bids.items():
                if other_bidder != bidder:
                    value += other_bid * model.reliability(bidder,
                                                           other_bidder)
        return value

    def _keep_value(self, model: DeploymentModel,
                    assignment: Mapping[str, str], component: str,
                    auctioneer: str, bids: Mapping[str, float]) -> float:
        """Value of leaving the component where it is, computed from the
        same information set the auction gathered: local interactions stay
        perfect, each bidder's reported local interaction volume rides the
        auctioneer-bidder link."""
        value = 0.0
        for other, host in assignment.items():
            if host == auctioneer and other != component:
                link = model.logical_link(component, other)
                if link is not None:
                    value += link.frequency * link.evt_size
        for bidder, local_bid in bids.items():
            value += local_bid * model.reliability(auctioneer, bidder)
        return value

    def _can_host(self, model: DeploymentModel, assignment: Dict[str, str],
                  component: str, host: str,
                  checker: Optional[Any] = None) -> bool:
        if checker is not None:
            return checker.allows(component, host)
        return self.constraints.allows(model, assignment, component, host)

    # ------------------------------------------------------------------
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        awareness = (self.awareness if self.awareness is not None
                     else connectivity_awareness(model))
        assignment: Dict[str, str] = dict(initial)
        checker = self._checker(model)
        checker.reset(assignment)
        # DecAp improves an existing deployment; components not yet deployed
        # start on an arbitrary allowed host.
        for component in model.component_ids:
            if component not in assignment:
                for host in model.host_ids:
                    if self._can_host(model, assignment, component, host,
                                      checker):
                        assignment[component] = host
                        checker.place(component, host)
                        break
        if len(assignment) < len(model.component_ids):
            return None, {"reason": "could not seed initial deployment"}

        total_auctions = 0
        total_moves = 0
        rounds_run = 0
        dry_rounds = 0
        for rounds_run in range(1, self.max_rounds + 1):
            moves_this_round = 0
            # "assuming none of its neighboring hosts is already conducting
            # an auction": hosts auction in rounds; within a round a host is
            # skipped if a neighbor already auctioned this round.  The order
            # rotates each round so every host — not just one fixed maximal
            # independent set — eventually gets to auction.
            rotation = rounds_run % max(len(model.host_ids), 1)
            host_order = (model.host_ids[rotation:]
                          + model.host_ids[:rotation])
            auctioned_this_round: Set[str] = set()
            for auctioneer in host_order:
                neighbors = awareness.get(auctioneer, set())
                if neighbors & auctioned_this_round:
                    continue
                auctioned_this_round.add(auctioneer)
                local_components = [
                    c for c, h in assignment.items() if h == auctioneer
                ]
                for component in local_components:
                    total_auctions += 1
                    bids: Dict[str, float] = {}
                    for bidder in sorted(neighbors):
                        if not model.has_host(bidder):
                            continue
                        if not self._can_host(model, assignment,
                                              component, bidder, checker):
                            continue  # bidder cannot take the component
                        bids[bidder] = self._local_bid(
                            model, assignment, component, bidder)
                    if not bids:
                        continue
                    final_bids = {
                        bidder: self._final_bid(
                            model, assignment, component, auctioneer,
                            bidder, bids)
                        for bidder in bids
                    }
                    self._count_evaluation(len(final_bids))
                    keep = self._keep_value(model, assignment, component,
                                            auctioneer, bids)
                    winner = max(sorted(final_bids), key=final_bids.get)
                    if final_bids[winner] > keep + 1e-12:
                        assignment[component] = winner
                        checker.place(component, winner)
                        moves_this_round += 1
            total_moves += moves_this_round
            if moves_this_round == 0:
                dry_rounds += 1
                # Converged only once several consecutive rotations found no
                # beneficial trade (one dry round may just mean the rotation
                # gave the turn to already-settled hosts).
                if dry_rounds >= 3:
                    break
            else:
                dry_rounds = 0

        extra = {
            "rounds": rounds_run,
            "auctions": total_auctions,
            "moves": total_moves,
            "awareness_degree": (
                sum(len(v) for v in awareness.values()) / max(len(awareness), 1)),
        }
        return assignment, extra
