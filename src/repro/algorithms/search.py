"""Incremental neighborhood-search state shared by the portfolio.

Before this module, every local-search round re-scanned all C×H candidate
moves, and each legality probe cost O(C) inside the object constraint path
— O(C²·H) per round around kernels that already answer a move delta in
O(degree).  :class:`SearchState` turns the round into O(affected):

* **Constraint checkers.**  :func:`make_checker` resolves either the
  compiled fast path (:class:`CompiledConstraintChecker`, O(1) ``allows``
  over :class:`~repro.core.constraints_compiled.CompiledConstraintSet`) or
  the object fallback (:class:`ObjectConstraintChecker`) when a constraint
  type is not compilable.  Both expose the same protocol, count their
  queries into ``EvaluationStats.constraint_checks``, and are equivalent by
  construction/property test — which is what makes the fast path safe to
  enable by default.

* **Legal-move frontier with dirty-move invalidation.**  The frontier
  caches each component's best improving move and the per-move deltas.
  After component *c* moves h₁→h₂, only the affected slice is re-scored:
  rows {c} ∪ neighbors(c) (their deltas reference c's host), rows coupled
  through collocation groups or through traffic into h₁/h₂ (their
  *legality* may have changed), and columns h₁/h₂ for every row (residual
  capacity changed there).  Rows whose cached best survives are served
  from the cache (``frontier_hits``); rows with no improving move stay
  parked until an invalidation touches them — the classic don't-look bit.
  A lazy best-move heap orders the surviving row bests.

* **Exactness.**  Deltas always come from the evaluation engine's kernels
  (`move_delta_indexed`), in both checker modes, so fixed-seed trajectories
  are identical between the compiled and object constraint paths — the
  regression suite asserts byte-identical assignments and move logs.
  Objectives whose deltas are not neighbor-local
  (``Objective.local_delta`` False, e.g. throughput's bottleneck max)
  invalidate the whole frontier each move: still a win, because legality
  stays O(1) and deltas skip the per-call re-encode.

See ``docs/PERFORMANCE.md`` (search-engine section) for the invalidation
rules and the measured speedups (``BENCH_search.json``).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.compiled import UNDEPLOYED, CompiledModel, compiled_model
from repro.algorithms.engine import EvaluationEngine, EvaluationStats
from repro.core.constraints import ConstraintSet
from repro.core.constraints_compiled import (
    CompiledConstraintSet, compile_constraints,
)
from repro.core.model import DeploymentModel
from repro.core.objectives import Objective

#: Minimum gain for a move to count as strictly improving (matches the
#: historical scan-loop tolerance).
GAIN_EPS = 1e-12

#: Sentinel for "component was absent" in object-checker undo tokens.
_ABSENT = object()


class ObjectConstraintChecker:
    """Constraint checker over the object ``ConstraintSet`` path.

    The semantics of record: ``allows`` is ``ConstraintSet.allows`` on the
    mirrored partial assignment.  Used when a constraint type cannot be
    compiled, and by the regression/property suites as the ground truth the
    compiled checker must match.
    """

    compiled = False

    def __init__(self, model: DeploymentModel, constraints: ConstraintSet,
                 stats: Optional[EvaluationStats] = None,
                 cm: Optional[CompiledModel] = None):
        self.model = model
        self.constraints = constraints
        self.stats = stats if stats is not None else EvaluationStats()
        self.cm = cm if cm is not None else compiled_model(model)
        self.partial: Dict[str, str] = {}

    def reset(self, mapping: Mapping[str, str]) -> None:
        self.partial = dict(mapping)

    # -- id lane ---------------------------------------------------------
    def allows(self, component: str, host: str) -> bool:
        self.stats.constraint_checks += 1
        return self.constraints.allows(self.model, self.partial, component,
                                       host)

    def place(self, component: str, host: Optional[str]):
        token = (component, self.partial.get(component, _ABSENT))
        if host is None:
            self.partial.pop(component, None)
        else:
            self.partial[component] = host
        return token

    def undo(self, token) -> None:
        component, old = token
        if old is _ABSENT:
            self.partial.pop(component, None)
        else:
            self.partial[component] = old

    def satisfied(self) -> bool:
        self.stats.constraint_checks += 1
        return self.constraints.is_satisfied(self.model, self.partial)

    def satisfied_partial(self) -> bool:
        self.stats.constraint_checks += 1
        return self.constraints.is_satisfied_partial(self.model, self.partial)

    def violation_count(self, mapping: Optional[Mapping[str, str]] = None,
                        ) -> int:
        self.stats.constraint_checks += 1
        target = self.partial if mapping is None else mapping
        return len(self.constraints.violations(self.model, target))

    # -- index lane ------------------------------------------------------
    def allows_index(self, ci: int, hi: int) -> bool:
        return self.allows(self.cm.component_ids[ci], self.cm.host_ids[hi])

    def place_index(self, ci: int, hi: int):
        host = None if hi == UNDEPLOYED else self.cm.host_ids[hi]
        return self.place(self.cm.component_ids[ci], host)


class CompiledConstraintChecker:
    """O(1) checker over a bound :class:`CompiledConstraintSet`."""

    compiled = True

    def __init__(self, cm: CompiledModel, compiled_set: CompiledConstraintSet,
                 stats: Optional[EvaluationStats] = None):
        self.cm = cm
        self.ccs = compiled_set
        self.stats = stats if stats is not None else EvaluationStats()

    def reset(self, mapping: Mapping[str, str]) -> None:
        self.ccs.bind(mapping)

    # -- id lane ---------------------------------------------------------
    def allows(self, component: str, host: str) -> bool:
        self.stats.constraint_checks += 1
        return self.ccs.allows(self.cm.component_index[component],
                               self.cm.host_index[host])

    def place(self, component: str, host: Optional[str]):
        hi = UNDEPLOYED if host is None else self.cm.host_index[host]
        return self.ccs.place(self.cm.component_index[component], hi)

    def undo(self, token) -> None:
        self.ccs.undo(token)

    def satisfied(self) -> bool:
        self.stats.constraint_checks += 1
        return self.ccs.satisfied()

    def satisfied_partial(self) -> bool:
        self.stats.constraint_checks += 1
        return self.ccs.satisfied_partial()

    def violation_count(self, mapping: Optional[Mapping[str, str]] = None,
                        ) -> int:
        """Violation count; passing *mapping* rebinds the checker to it."""
        self.stats.constraint_checks += 1
        if mapping is not None:
            self.ccs.bind(mapping)
        return self.ccs.violation_count()

    # -- index lane ------------------------------------------------------
    def allows_index(self, ci: int, hi: int) -> bool:
        self.stats.constraint_checks += 1
        return self.ccs.allows(ci, hi)

    def place_index(self, ci: int, hi: int):
        return self.ccs.place(ci, hi)


def make_checker(model: DeploymentModel, constraints: ConstraintSet,
                 stats: Optional[EvaluationStats] = None,
                 use_compiled: bool = True):
    """The fastest applicable constraint checker for *constraints*.

    Compiled when every member constraint is a built-in type (by exact
    type) and *use_compiled* is set; the object path otherwise.
    """
    cm = compiled_model(model)
    if use_compiled:
        compiled_set = compile_constraints(constraints, cm)
        if compiled_set is not None:
            return CompiledConstraintChecker(cm, compiled_set, stats)
    return ObjectConstraintChecker(model, constraints, stats, cm)


class SearchState:
    """Shared incremental state for one local-search run.

    Owns the assignment (as id mapping *and* compiled index array, kept in
    lock-step), the constraint checker, the legal-move frontier, and the
    move log.  Algorithms drive it through :meth:`best_move` /
    :meth:`apply` (steepest-ascent), :meth:`allows` / :meth:`delta`
    (stochastic proposals), and the swap helpers.
    """

    def __init__(self, model: DeploymentModel, constraints: ConstraintSet,
                 engine: Optional[EvaluationEngine], objective: Objective,
                 assignment: Mapping[str, str], *, use_compiled: bool = True,
                 count: Optional[Callable[[int], None]] = None):
        self.model = model
        self.constraints = constraints
        self.engine = engine
        self.objective = objective
        self.cm = compiled_model(model)
        self._count = count
        self.stats = engine.stats if engine is not None else EvaluationStats()
        self.mapping: Dict[str, str] = dict(assignment)
        encoded = self.cm.encode(self.mapping)
        if encoded is None:
            raise ValueError("assignment references unknown hosts")
        # One compilation serves both the checker (when enabled) and the
        # invalidation metadata (collocation closures, bandwidth presence).
        info = compile_constraints(constraints, self.cm)
        self._compilable = info is not None
        if use_compiled and info is not None:
            self.checker = CompiledConstraintChecker(self.cm, info,
                                                     self.stats)
            self.checker.reset(encoded)
            #: The checker's array IS our array — one mutation source.
            self.array: List[int] = info.assignment
            self._shared_array = True
        else:
            self.checker = ObjectConstraintChecker(model, constraints,
                                                   self.stats, self.cm)
            self.checker.reset(self.mapping)
            self.array = encoded
            self._shared_array = False
        self._partners: List[Tuple[int, ...]] = (
            info.colloc_partners if info is not None
            else [()] * self.cm.n_components)
        self._has_bandwidth = info.has_bandwidth if info is not None else True
        self._maximize = objective.direction == "max"
        self.local_delta = bool(getattr(objective, "local_delta", False))
        #: Applied placements, in order: (component_id, host_id).
        self.moves: List[Tuple[str, str]] = []
        self._on_host: List[set] = [set() for _ in range(self.cm.n_hosts)]
        for ci, hi in enumerate(self.array):
            if hi != UNDEPLOYED:
                self._on_host[hi].add(ci)
        # -- frontier ----------------------------------------------------
        self._built = False
        self._deltas: List[List[Optional[float]]] = []
        self._row_best: List[Optional[Tuple[float, int]]] = []
        self._heap: List[Tuple[float, int, int]] = []
        self._clear: set = set()      # rows whose delta caches are stale
        self._rescan: set = set()     # rows whose legality is stale
        self._cols: set = set()       # host columns with legality changes
        self._all_dirty = False       # non-local objective: rebuild all
        self._legal_all = False       # uncompilable constraints: rescan all
        self._base_ok = True

    # -- id/index translation --------------------------------------------
    def component_index(self, component: str) -> int:
        return self.cm.component_index[component]

    def host_index(self, host: str) -> int:
        return self.cm.host_index[host]

    # -- primitive queries -------------------------------------------------
    def allows(self, ci: int, hi: int) -> bool:
        """Constraint legality of moving component *ci* to host *hi*."""
        return self.checker.allows_index(ci, hi)

    def delta(self, ci: int, hi: int) -> float:
        """Raw objective delta for the move, via the engine's kernels."""
        return self._score(ci, hi)

    def satisfied(self) -> bool:
        return self.checker.satisfied()

    def _score(self, ci: int, hi: int) -> float:
        if self._count is not None:
            self._count(1)
        if self.engine is not None:
            return self.engine.move_delta_indexed(self.model, self.mapping,
                                                  self.array, ci, hi)
        return self.objective.move_delta(self.model, self.mapping,
                                         self.cm.component_ids[ci],
                                         self.cm.host_ids[hi])

    # -- mutation ----------------------------------------------------------
    def apply(self, ci: int, hi: int) -> None:
        """Commit the move of component *ci* to host *hi*."""
        old = self.array[ci]
        if old == hi:
            return
        component_id = self.cm.component_ids[ci]
        host_id = self.cm.host_ids[hi]
        self.checker.place_index(ci, hi)
        if not self._shared_array:
            self.array[ci] = hi
        self.mapping[component_id] = host_id
        if old != UNDEPLOYED:
            self._on_host[old].discard(ci)
        self._on_host[hi].add(ci)
        self.moves.append((component_id, host_id))
        if self._built:
            self._invalidate(ci, old, hi)

    def apply_swap(self, ca: int, cb: int) -> None:
        """Commit the exchange of two components' hosts."""
        ha, hb = self.array[ca], self.array[cb]
        self.checker.place_index(ca, hb)
        self.checker.place_index(cb, ha)
        if not self._shared_array:
            self.array[ca], self.array[cb] = hb, ha
        ca_id, cb_id = self.cm.component_ids[ca], self.cm.component_ids[cb]
        self.mapping[ca_id] = self.cm.host_ids[hb]
        self.mapping[cb_id] = self.cm.host_ids[ha]
        self._on_host[ha].discard(ca)
        self._on_host[hb].add(ca)
        self._on_host[hb].discard(cb)
        self._on_host[ha].add(cb)
        self.moves.append((ca_id, self.cm.host_ids[hb]))
        self.moves.append((cb_id, self.cm.host_ids[ha]))
        if self._built:
            self._invalidate(ca, ha, hb)
            self._invalidate(cb, hb, ha)

    # -- swap probes -------------------------------------------------------
    def swap_allowed(self, ca: int, cb: int) -> bool:
        """Feasibility of exchanging *ca* and *cb* (each side checked with
        the other hypothetically removed — exact-fit exchanges pass)."""
        ha, hb = self.array[ca], self.array[cb]
        removed = self.checker.place_index(cb, UNDEPLOYED)
        ok = self.checker.allows_index(ca, hb)
        self.checker.undo(removed)
        if not ok:
            return False
        first = self.checker.place_index(ca, hb)
        second = self.checker.place_index(cb, ha)
        ok = self.checker.satisfied_partial()
        self.checker.undo(second)
        self.checker.undo(first)
        return ok

    def swap_delta(self, ca: int, cb: int) -> float:
        """Objective delta of the exchange: two sequential move deltas."""
        ha, hb = self.array[ca], self.array[cb]
        ca_id = self.cm.component_ids[ca]
        first = self._score(ca, hb)
        self.array[ca] = hb  # temporarily apply (checker state untouched —
        self.mapping[ca_id] = self.cm.host_ids[hb]  # no legality probes here)
        second = self._score(cb, ha)
        self.array[ca] = ha
        self.mapping[ca_id] = self.cm.host_ids[ha]
        return first + second

    # -- frontier ----------------------------------------------------------
    def best_move(self) -> Optional[Tuple[int, int, float]]:
        """The best strictly-improving legal move, or ``None``.

        Deterministic selection rule (identical in both checker modes):
        maximum direction-adjusted gain > 1e-12, ties broken by lowest
        component index then lowest host index.
        """
        self._refresh()
        heap = self._heap
        while heap:
            neg_gain, ci, hi = heap[0]
            row = self._row_best[ci]
            if row is not None and row[0] == -neg_gain and row[1] == hi:
                return ci, hi, self._deltas[ci][hi]
            heapq.heappop(heap)  # stale entry
        return None

    def _refresh(self) -> None:
        n = self.cm.n_components
        if not self._built:
            self._deltas = [[None] * self.cm.n_hosts for _ in range(n)]
            self._row_best = [None] * n
            for ci in range(n):
                self._rescan_row(ci)
            if self._has_bandwidth:
                self._base_ok = self.checker.satisfied()
            self._built = True
            return
        if self._all_dirty:
            for ci in range(n):
                row = self._deltas[ci]
                for hi in range(self.cm.n_hosts):
                    row[hi] = None
                self._rescan_row(ci)
        elif self._legal_all or self._clear or self._rescan or self._cols:
            for ci in self._clear:
                row = self._deltas[ci]
                for hi in range(self.cm.n_hosts):
                    row[hi] = None
            stale = self._clear | self._rescan
            if self._legal_all:
                for ci in range(n):
                    self._rescan_row(ci)
            else:
                for ci in stale:
                    self._rescan_row(ci)
                if self._cols:
                    cols = self._cols
                    for ci in range(n):
                        if ci not in stale:
                            self._column_update(ci, cols)
        self._all_dirty = False
        self._legal_all = False
        self._clear.clear()
        self._rescan.clear()
        self._cols.clear()
        if len(self._heap) > 4 * n + 16:  # compact stale heap entries
            self._heap = [(-gain, ci, hi)
                          for ci, row in enumerate(self._row_best)
                          if row is not None
                          for gain, hi in [row]]
            heapq.heapify(self._heap)

    def _rescan_row(self, ci: int) -> None:
        deltas = self._deltas[ci]
        cur = self.array[ci]
        checker = self.checker
        stats = self.stats
        best: Optional[Tuple[float, int]] = None
        for hi in range(self.cm.n_hosts):
            if hi == cur:
                continue
            if not checker.allows_index(ci, hi):
                continue
            value = deltas[hi]
            if value is None:
                value = self._score(ci, hi)
                deltas[hi] = value
                stats.moves_rescored += 1
            else:
                stats.frontier_hits += 1
            gain = value if self._maximize else -value
            if gain > GAIN_EPS and (best is None or gain > best[0]):
                best = (gain, hi)
        self._row_best[ci] = best
        if best is not None:
            heapq.heappush(self._heap, (-best[0], ci, best[1]))

    def _column_update(self, ci: int, cols: set) -> None:
        best = self._row_best[ci]
        if best is not None and best[1] in cols:
            # The cached best targets a changed column — rescan the row
            # (delta cache intact, only legality is re-derived).
            self._rescan_row(ci)
            return
        cur = self.array[ci]
        deltas = self._deltas[ci]
        improved = False
        for hi in cols:
            if hi == cur or hi == UNDEPLOYED:
                continue
            if not self.checker.allows_index(ci, hi):
                continue
            value = deltas[hi]
            if value is None:
                value = self._score(ci, hi)
                deltas[hi] = value
                self.stats.moves_rescored += 1
            else:
                self.stats.frontier_hits += 1
            gain = value if self._maximize else -value
            if gain > GAIN_EPS and (
                    best is None or gain > best[0]
                    or (gain == best[0] and hi < best[1])):
                best = (gain, hi)
                improved = True
        if improved:
            self._row_best[ci] = best
            heapq.heappush(self._heap, (-best[0], ci, best[1]))

    def _invalidate(self, ci: int, old: int, new: int) -> None:
        if not self.local_delta:
            # Bottleneck-shaped objective: any move can shift every delta.
            self._all_dirty = True
            return
        cm = self.cm
        clear = self._clear
        clear.add(ci)
        for k in cm.neighbors(ci):
            clear.add(cm.adj_neighbor[k])
        if not self._compilable:
            # Unknown constraint types may couple arbitrary components:
            # re-derive every row's legality (delta caches stay valid).
            self._legal_all = True
        else:
            rescan = self._rescan
            for partner in self._partners[ci]:
                rescan.add(partner)
            if self._has_bandwidth:
                # Legality of (x, h) depends on pair demands touching the
                # changed hosts: rows on old/new plus their neighbors.
                for host in (old, new):
                    if host == UNDEPLOYED:
                        continue
                    for member in self._on_host[host]:
                        rescan.add(member)
                        for k in cm.neighbors(member):
                            rescan.add(cm.adj_neighbor[k])
                # The global overload tally enters every allows() answer;
                # if base feasibility changed, nothing cached is safe.
                ok = self.checker.satisfied()
                if not ok or not self._base_ok:
                    self._legal_all = True
                self._base_ok = ok
        if old != UNDEPLOYED:
            self._cols.add(old)
        self._cols.add(new)
