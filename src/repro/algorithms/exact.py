"""The Exact algorithm (Section 5.1).

"The Exact algorithm tries every possible deployment, and selects the one
that results in maximum availability and satisfies the constraints posed by
the memory, bandwidth, and restrictions on software component locations.
The Exact algorithm guarantees at least one optimal deployment (assuming
that at least one deployment is possible).  The complexity of this algorithm
in the general case ... is O(k^n) ... By fixing a subset of m components to
selected hosts, the complexity reduces to O(k^(n-m))."

The implementation is a depth-first enumeration over component-to-host
assignments.  Partial assignments that the constraint checker already rules
out are pruned, which realizes the O(k^(n-m)) reduction for fixed components
(a :func:`repro.core.constraints.fix_component` constraint leaves exactly one
viable branch for that component) without giving up optimality: pruning only
removes branches that cannot yield *valid* deployments.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.errors import AlgorithmError
from repro.core.model import DeploymentModel


class ExactAlgorithm(DeploymentAlgorithm):
    """Exhaustive optimal search — exponential, for small systems only.

    Args:
        objective: Criterion to optimize.
        constraints: Hard constraints; used both for final validity and for
            pruning partial assignments.
        max_space: Guard against accidental use on large systems: the run
            aborts up front when ``k ** n`` exceeds this bound (the paper
            deems Exact usable only around 5 hosts x 15 components).
        prune: Disable to measure the unpruned O(k^n) enumeration in the
            complexity bench.
    """

    name = "exact"
    exact = True

    def __init__(self, objective, constraints=None, seed=None,
                 max_space: float = 5e7, prune: bool = True):
        super().__init__(objective, constraints, seed)
        self.max_space = max_space
        self.prune = prune

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        hosts = model.host_ids
        components = model.component_ids
        space = float(len(hosts)) ** len(components)
        if space > self.max_space:
            raise AlgorithmError(
                f"exact: search space {len(hosts)}^{len(components)} = "
                f"{space:.3g} exceeds max_space={self.max_space:.3g}; "
                "use an approximative algorithm for systems this large")

        best_value = self.objective.worst_value()
        best: Optional[Dict[str, str]] = None
        visited_leaves = 0
        pruned_branches = 0
        assignment: Dict[str, str] = {}

        def descend(index: int) -> None:
            nonlocal best_value, best, visited_leaves, pruned_branches
            if index == len(components):
                visited_leaves += 1
                if not self.constraints.is_satisfied(model, assignment):
                    return
                value = self._evaluate(model, assignment)
                if best is None or self.objective.is_better(value, best_value):
                    best_value = value
                    best = dict(assignment)
                return
            component = components[index]
            for host in hosts:
                if self.prune and not self.constraints.allows(
                        model, assignment, component, host):
                    pruned_branches += 1
                    continue
                assignment[component] = host
                descend(index + 1)
                del assignment[component]

        descend(0)
        extra = {
            "search_space": space,
            "visited_leaves": visited_leaves,
            "pruned_branches": pruned_branches,
            "optimal": best is not None,
        }
        return best, extra
