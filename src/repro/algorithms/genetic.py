"""Genetic algorithm over deployments (framework-extension algorithm).

Figure 7's methodology explicitly lists "genetic algorithm" as a candidate
main body.  The chromosome is the deployment itself (component -> host map);
crossover is uniform per-component; mutation reassigns a component to a
random host.  Constraint handling is by penalty: infeasible individuals are
dominated by any feasible one, so selection pressure repairs the population.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class GeneticAlgorithm(DeploymentAlgorithm):
    """Tournament-selection GA with elitism.

    Args:
        population_size: Individuals per generation.
        generations: Number of generations to evolve.
        mutation_rate: Per-component probability of random reassignment.
        tournament: Tournament size for parent selection.
        elite: Individuals copied unchanged into the next generation.
    """

    name = "genetic"

    def __init__(self, objective, constraints=None, seed=None,
                 population_size: int = 30, generations: int = 40,
                 mutation_rate: float = 0.05, tournament: int = 3,
                 elite: int = 2):
        super().__init__(objective, constraints, seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if elite >= population_size:
            raise ValueError("elite must be smaller than population_size")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament = tournament
        self.elite = elite

    # -- fitness -------------------------------------------------------------
    def _fitness(self, model: DeploymentModel,
                 individual: Dict[str, str],
                 checker: Optional[Any] = None) -> Tuple[int, float]:
        """(feasibility rank, direction-adjusted value); higher is fitter.

        Feasible individuals rank above all infeasible ones; among
        infeasible ones, fewer violations is fitter.
        """
        if checker is not None:
            violations = checker.violation_count(individual)
        else:
            violations = len(self.constraints.violations(model, individual))
        value = self._evaluate(model, individual)
        adjusted = value if self.objective.direction == "max" else -value
        return (-violations, adjusted)

    # -- variation ----------------------------------------------------------
    def _crossover(self, a: Dict[str, str], b: Dict[str, str],
                   ) -> Dict[str, str]:
        return {c: (a[c] if self.rng.random() < 0.5 else b[c]) for c in a}

    def _mutate(self, individual: Dict[str, str],
                hosts: Tuple[str, ...]) -> None:
        for component in individual:
            if self.rng.random() < self.mutation_rate:
                individual[component] = self.rng.choice(hosts)

    # -- main body ------------------------------------------------------------
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        hosts = model.host_ids
        components = model.component_ids
        checker = self._checker(model)

        population: List[Dict[str, str]] = []
        seed_valid = random_valid_deployment(model, self.constraints,
                                             self.rng, checker=checker)
        if seed_valid is not None:
            population.append(seed_valid)
        if (len(initial) == len(components)
                and all(h in hosts for h in initial.values())):
            population.append(dict(initial))
        while len(population) < self.population_size:
            population.append(
                {c: self.rng.choice(hosts) for c in components})

        scored = [(self._fitness(model, ind, checker), ind)
                  for ind in population]
        scored.sort(key=lambda pair: pair[0], reverse=True)

        def tournament_pick() -> Dict[str, str]:
            contenders = [scored[self.rng.randrange(len(scored))]
                          for __ in range(self.tournament)]
            return max(contenders, key=lambda pair: pair[0])[1]

        for __ in range(self.generations):
            next_population: List[Dict[str, str]] = [
                dict(ind) for __, ind in scored[: self.elite]
            ]
            while len(next_population) < self.population_size:
                child = self._crossover(tournament_pick(), tournament_pick())
                self._mutate(child, hosts)
                next_population.append(child)
            scored = [(self._fitness(model, ind, checker), ind)
                      for ind in next_population]
            scored.sort(key=lambda pair: pair[0], reverse=True)

        best_rank, best = scored[0]
        extra = {
            "generations": self.generations,
            "population_size": self.population_size,
            "best_violations": -best_rank[0],
        }
        if best_rank[0] < 0:
            # Never found a feasible individual; fall back to any valid
            # random deployment so the caller gets a usable answer if one
            # exists at all.
            fallback = random_valid_deployment(model, self.constraints,
                                               self.rng, checker=checker)
            if fallback is not None:
                return fallback, extra
        return best, extra
