"""Kernighan-Lin-style swap search (framework-extension algorithm).

Single-component relocation (hill-climb) gets stuck when every host is
full: no component can move anywhere, even though *exchanging* two
components across hosts would help.  Swap search explores exactly that
neighborhood — the classic Kernighan-Lin move for balanced partitioning —
making it the right local search under tight memory, where the paper's
scenarios (memory-poor PDAs) live.

Each round considers all single moves *and* all pairwise swaps, taking the
best strictly-improving step.  Swap feasibility is checked against the
constraint set with each component hypothetically removed from its side, so
memory-exact configurations remain searchable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class SwapSearchAlgorithm(DeploymentAlgorithm):
    """Steepest-ascent search over single moves and pairwise swaps."""

    name = "swapsearch"

    def __init__(self, objective, constraints=None, seed=None,
                 max_rounds: int = 500):
        super().__init__(objective, constraints, seed)
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def _gain(self, delta: float) -> float:
        return delta if self.objective.direction == "max" else -delta

    def _swap_delta(self, model: DeploymentModel,
                    assignment: Dict[str, str], comp_a: str,
                    comp_b: str) -> float:
        """Objective delta of exchanging comp_a and comp_b's hosts.

        Computed as two sequential single-move deltas (the second against
        the intermediate assignment), which is exact.
        """
        host_a = assignment[comp_a]
        host_b = assignment[comp_b]
        first = self._move_delta(model, assignment, comp_a, host_b)
        assignment[comp_a] = host_b  # temporarily apply
        second = self._move_delta(model, assignment, comp_b, host_a)
        assignment[comp_a] = host_a  # restore
        return first + second

    def _swap_allowed(self, model: DeploymentModel,
                      assignment: Dict[str, str], comp_a: str,
                      comp_b: str) -> bool:
        host_a = assignment[comp_a]
        host_b = assignment[comp_b]
        # Check each landing with the other component already gone from the
        # destination, so exact-fit exchanges pass.
        without_b = {c: h for c, h in assignment.items() if c != comp_b}
        if not self.constraints.allows(model, without_b, comp_a, host_b):
            return False
        trial = dict(assignment)
        trial[comp_a] = host_b
        trial[comp_b] = host_a
        return self.constraints.is_satisfied_partial(model, trial)

    # ------------------------------------------------------------------
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        if (len(initial) == len(model.component_ids)
                and self.constraints.is_satisfied(model, initial)):
            assignment = dict(initial)
        else:
            assignment = random_valid_deployment(
                model, self.constraints, self.rng)
        if assignment is None:
            return None, {"rounds": 0}

        components = model.component_ids
        hosts = model.host_ids
        moves_taken = swaps_taken = 0
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            best_gain = 1e-12
            best_action: Optional[Tuple[str, ...]] = None
            # Single moves.
            for component in components:
                for host in hosts:
                    if host == assignment[component]:
                        continue
                    if not self.constraints.allows(model, assignment,
                                                   component, host):
                        continue
                    gain = self._gain(self._move_delta(
                        model, assignment, component, host))
                    if gain > best_gain:
                        best_gain = gain
                        best_action = ("move", component, host)
            # Pairwise swaps (only across distinct hosts).
            for i, comp_a in enumerate(components):
                for comp_b in components[i + 1:]:
                    if assignment[comp_a] == assignment[comp_b]:
                        continue
                    if not self._swap_allowed(model, assignment,
                                              comp_a, comp_b):
                        continue
                    gain = self._gain(self._swap_delta(
                        model, assignment, comp_a, comp_b))
                    if gain > best_gain:
                        best_gain = gain
                        best_action = ("swap", comp_a, comp_b)
            if best_action is None:
                break
            if best_action[0] == "move":
                __, component, host = best_action
                assignment[component] = host
                moves_taken += 1
            else:
                __, comp_a, comp_b = best_action
                assignment[comp_a], assignment[comp_b] = \
                    assignment[comp_b], assignment[comp_a]
                swaps_taken += 1
        return assignment, {"rounds": rounds, "moves_taken": moves_taken,
                            "swaps_taken": swaps_taken}
