"""Kernighan-Lin-style swap search (framework-extension algorithm).

Single-component relocation (hill-climb) gets stuck when every host is
full: no component can move anywhere, even though *exchanging* two
components across hosts would help.  Swap search explores exactly that
neighborhood — the classic Kernighan-Lin move for balanced partitioning —
making it the right local search under tight memory, where the paper's
scenarios (memory-poor PDAs) live.

Each round considers all single moves *and* all pairwise swaps, taking the
best strictly-improving step.  Swap feasibility is checked against the
constraint set with each component hypothetically removed from its side, so
memory-exact configurations remain searchable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm, random_valid_deployment
from repro.core.model import DeploymentModel


class SwapSearchAlgorithm(DeploymentAlgorithm):
    """Steepest-ascent search over single moves and pairwise swaps."""

    name = "swapsearch"

    def __init__(self, objective, constraints=None, seed=None,
                 max_rounds: int = 500):
        super().__init__(objective, constraints, seed)
        self.max_rounds = max_rounds

    # ------------------------------------------------------------------
    def _gain(self, delta: float) -> float:
        return delta if self.objective.direction == "max" else -delta

    # ------------------------------------------------------------------
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        if (len(initial) == len(model.component_ids)
                and self.constraints.is_satisfied(model, initial)):
            assignment = dict(initial)
        else:
            assignment = random_valid_deployment(
                model, self.constraints, self.rng,
                checker=self._checker(model))
        if assignment is None:
            return None, {"rounds": 0}

        state = self._search_state(model, assignment)
        indices = [state.component_index(c) for c in model.component_ids]
        array = state.array
        moves_taken = swaps_taken = 0
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            # Single moves come from the incremental frontier; the best
            # single move seeds the threshold the swap scan must beat, which
            # reproduces the historical flat moves-then-swaps scan exactly.
            best_gain = 1e-12
            best_action: Optional[Tuple[str, int, int]] = None
            step = state.best_move()
            if step is not None:
                ci, hi, delta = step
                best_gain = self._gain(delta)
                best_action = ("move", ci, hi)
            # Pairwise swaps (only across distinct hosts).
            for i, ca in enumerate(indices):
                for cb in indices[i + 1:]:
                    if array[ca] == array[cb]:
                        continue
                    if not state.swap_allowed(ca, cb):
                        continue
                    gain = self._gain(state.swap_delta(ca, cb))
                    if gain > best_gain:
                        best_gain = gain
                        best_action = ("swap", ca, cb)
            if best_action is None:
                break
            if best_action[0] == "move":
                __, ci, hi = best_action
                state.apply(ci, hi)
                moves_taken += 1
            else:
                __, ca, cb = best_action
                state.apply_swap(ca, cb)
                swaps_taken += 1
        return state.mapping, {"rounds": rounds, "moves_taken": moves_taken,
                               "swaps_taken": swaps_taken,
                               "moves": list(state.moves)}
