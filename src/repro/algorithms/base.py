"""Algorithm plumbing shared by all redeployment algorithms.

Figure 7 of the paper decomposes an algorithm into a *main body* (the search
strategy — greedy, genetic, ...), an *ObjectiveQuantifier*, a
*ConstraintChecker*, and (for decentralized algorithms) a
*CoordinationImplementation*.  Here:

* the main body is a :class:`DeploymentAlgorithm` subclass;
* the objective quantifier is a :class:`repro.core.objectives.Objective`;
* the constraint checker is a :class:`repro.core.constraints.ConstraintSet`;
* coordination lives in :mod:`repro.decentralized` and is injected into the
  decentralized algorithms.

Every run returns an :class:`AlgorithmResult` carrying the fields DeSi's
``AlgoResultData`` records: the estimated deployment, the achieved objective
value, the algorithm's running time, and the estimated cost of effecting the
redeployment.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.constraints import ConstraintSet
from repro.core.errors import (
    AlgorithmError, EvaluationBudgetExceeded, NoValidDeploymentError,
)
from repro.core.model import Deployment, DeploymentModel
from repro.core.objectives import Objective
from repro.core.report import ReportBase, deprecated_alias

if TYPE_CHECKING:  # engine imports base; keep the runtime import lazy
    from repro.algorithms.engine import EvaluationEngine


@dataclass
class AlgorithmResult(ReportBase):
    """Outcome of one algorithm run (DeSi's AlgoResultData record)."""

    algorithm: str
    deployment: Deployment
    value: float
    objective: str
    valid: bool
    elapsed: float
    evaluations: int
    #: Number of component moves needed to reach ``deployment`` from the
    #: deployment that was current when the algorithm started — DeSi's
    #: "estimated time to effect a redeployment" proxy.
    moves_from_initial: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def summary_line(self) -> str:
        return (f"{self.algorithm}: {self.objective}={self.value:.4f} "
                f"({'valid' if self.valid else 'INVALID'}, "
                f"{self.elapsed * 1000:.1f} ms, {self.evaluations} evals, "
                f"{self.moves_from_initial} moves)")

    def to_dict(self, include_timing: bool = True,
                **opts: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "deployment": self.deployment.as_dict(),
            "value": self.value,
            "objective": self.objective,
            "valid": self.valid,
            "evaluations": self.evaluations,
            "moves_from_initial": self.moves_from_initial,
            "extra": dict(self.extra),
        }
        if include_timing:
            payload["elapsed"] = self.elapsed
        return payload

    def render(self, **opts: Any) -> str:
        return self.summary_line()

    summary = deprecated_alias("summary_line", "summary")


class DeploymentAlgorithm(ABC):
    """Base class for all (re)deployment algorithms.

    Subclasses implement :meth:`_search` and report the deployments they
    score through :meth:`_evaluate` so evaluation counting and timing are
    uniform.  The public entry point is :meth:`run`.
    """

    #: Short name used in analyzer logs, DeSi result tables, and benches.
    name: str = "abstract"
    #: Whether the algorithm guarantees an optimal deployment.
    exact: bool = False
    #: Whether the algorithm is decentralized (Section 3.1's taxonomy).
    decentralized: bool = False
    #: Route constraint checks through the compiled O(1) checker when the
    #: constraint set is compilable.  The object path is used automatically
    #: for constraint types the compiler does not recognise; tests flip
    #: this per-instance to cross-check the two paths.
    use_compiled: bool = True

    def __init__(self, objective: Objective,
                 constraints: Optional[ConstraintSet] = None,
                 seed: Optional[int] = None):
        self.objective = objective
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.rng = random.Random(seed)
        self._evaluations = 0
        self._engine: Optional["EvaluationEngine"] = None

    # ------------------------------------------------------------------
    def run(self, model: DeploymentModel,
            initial: Optional[Mapping[str, str]] = None,
            engine: Optional["EvaluationEngine"] = None) -> AlgorithmResult:
        """Search for an improved deployment of *model*.

        Args:
            model: The deployment model to improve.
            initial: The deployment to measure movement cost against;
                defaults to the model's current deployment.
            engine: Evaluation engine to score deployments through.  A
                private one is created when omitted; portfolio callers pass
                a budgeted engine sharing a memo cache across algorithms.

        Returns:
            The best deployment found.  ``result.valid`` is False only when
            the algorithm could not find any constraint-satisfying
            deployment and fell back to its best-effort answer.  When the
            engine's budget runs out mid-search, the run degrades to the
            best deployment scored so far (``extra["engine"]["truncated"]``
            is set) instead of failing.
        """
        if not model.component_ids:
            raise AlgorithmError(f"{self.name}: model has no components")
        if not model.host_ids:
            raise AlgorithmError(f"{self.name}: model has no hosts")
        if initial is None:
            initial = model.deployment
        if engine is None:
            from repro.algorithms.engine import EvaluationEngine
            engine = EvaluationEngine(self.objective, self.constraints)
        self._engine = engine
        engine.reset()
        self._evaluations = 0
        start = time.perf_counter()
        try:
            deployment, extra = self._search(model, dict(initial))
        except EvaluationBudgetExceeded:
            # Graceful truncation: fall back to the best deployment the
            # engine fully evaluated before the budget ran out.
            best = engine.best_seen()
            if best is None:
                raise NoValidDeploymentError(
                    f"{self.name}: evaluation budget exhausted before any "
                    "deployment was scored") from None
            deployment, extra = best[0], {"truncated": True}
        finally:
            self._engine = None
        elapsed = time.perf_counter() - start
        if deployment is None:
            raise NoValidDeploymentError(
                f"{self.name}: no deployment satisfies the constraints")
        final = Deployment(deployment)
        value = engine.evaluate(model, final, charge=False)
        valid = self.constraints.is_satisfied(model, final)
        moves = sum(1 for c in final
                    if c in initial and initial[c] != final[c])
        extra = dict(extra)
        extra["engine"] = engine.snapshot()
        return AlgorithmResult(
            algorithm=self.name,
            deployment=final,
            value=value,
            objective=self.objective.name,
            valid=valid,
            elapsed=elapsed,
            evaluations=self._evaluations,
            moves_from_initial=moves,
            extra=extra,
        )

    @abstractmethod
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        """Produce (best deployment or None, extra stats)."""

    # ------------------------------------------------------------------
    def _evaluate(self, model: DeploymentModel,
                  deployment: Mapping[str, str]) -> float:
        """Score a full deployment (memoized when an engine is attached)."""
        self._evaluations += 1
        if self._engine is None:
            return self.objective.evaluate(model, deployment)
        return self._engine.evaluate(model, deployment)

    def _move_delta(self, model: DeploymentModel,
                    deployment: Mapping[str, str], component: str,
                    new_host: str) -> float:
        """Objective change for one component move, counted as one
        evaluation and routed through the engine's delta fast path."""
        self._evaluations += 1
        if self._engine is None:
            return self.objective.move_delta(model, deployment, component,
                                             new_host)
        return self._engine.move_delta(model, deployment, component,
                                       new_host)

    def _count_evaluation(self, n: int = 1) -> None:
        """Record *n* incremental (delta-based) evaluations."""
        self._evaluations += n

    def _checker(self, model: DeploymentModel):
        """A constraint checker for *model* (compiled when possible)."""
        from repro.algorithms.search import make_checker
        stats = self._engine.stats if self._engine is not None else None
        return make_checker(model, self.constraints, stats,
                            use_compiled=self.use_compiled)

    def _search_state(self, model: DeploymentModel,
                      assignment: Mapping[str, str]):
        """An incremental :class:`~repro.algorithms.search.SearchState`
        seeded with *assignment*, wired into this run's engine and
        evaluation counter."""
        from repro.algorithms.search import SearchState
        return SearchState(model, self.constraints, self._engine,
                           self.objective, assignment,
                           use_compiled=self.use_compiled,
                           count=self._count_evaluation)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(objective={self.objective.name}, "
                f"constraints={len(self.constraints)})")


def random_valid_deployment(model: DeploymentModel,
                            constraints: ConstraintSet,
                            rng: random.Random,
                            max_attempts: int = 200,
                            checker: Optional[Any] = None,
                            ) -> Optional[Dict[str, str]]:
    """Build a random constraint-satisfying deployment, or None.

    This is one iteration of the Stochastic algorithm's inner loop (and the
    seeding step for the annealing/genetic extensions): order hosts and
    components randomly, then place each component on the first host (in the
    random order) that the constraint checker allows.

    When a *checker* (from :func:`repro.algorithms.search.make_checker`) is
    supplied, legality probes go through it — O(1) per probe on the
    compiled path — with an identical probe order, so results match the
    plain ``constraints`` path exactly.
    """
    for __ in range(max_attempts):
        hosts = list(model.host_ids)
        components = list(model.component_ids)
        rng.shuffle(hosts)
        rng.shuffle(components)
        assignment: Dict[str, str] = {}
        if checker is not None:
            checker.reset({})
        feasible = True
        for component in components:
            placed = False
            for host in hosts:
                if checker is not None:
                    allowed = checker.allows(component, host)
                else:
                    allowed = constraints.allows(model, assignment,
                                                 component, host)
                if allowed:
                    assignment[component] = host
                    if checker is not None:
                        checker.place(component, host)
                    placed = True
                    break
            if not placed:
                feasible = False
                break
        if feasible:
            complete = (checker.satisfied() if checker is not None
                        else constraints.is_satisfied(model, assignment))
            if complete:
                return assignment
    return None


def greedy_fill_deployment(model: DeploymentModel,
                           constraints: ConstraintSet,
                           hosts: Sequence[str],
                           components: Sequence[str],
                           checker: Optional[Any] = None,
                           ) -> Optional[Dict[str, str]]:
    """Assign *components* to *hosts* in the given orders, host by host.

    "Going in order, it assigns as many components to a given host as can
    fit on that host ... Once the host is full, the algorithm proceeds with
    the same process for the next host" (Section 5.1, Stochastic).

    As with :func:`random_valid_deployment`, a supplied *checker* answers
    the legality probes in the identical order.
    """
    assignment: Dict[str, str] = {}
    if checker is not None:
        checker.reset({})
    remaining = list(components)
    for host in hosts:
        still_remaining = []
        for component in remaining:
            if checker is not None:
                allowed = checker.allows(component, host)
            else:
                allowed = constraints.allows(model, assignment, component,
                                             host)
            if allowed:
                assignment[component] = host
                if checker is not None:
                    checker.place(component, host)
            else:
                still_remaining.append(component)
        remaining = still_remaining
        if not remaining:
            break
    if remaining:
        return None
    return assignment
