"""I5-style binary integer programming baseline ([1] in the paper).

I5 "proposes the use of the binary integer programming model (BIP) for
generating an optimal deployment of a software application over a given
network, such that the overall remote communication is minimized.  Solving
the BIP model is exponentially complex in the number of software components
... Furthermore, the approach is only applicable to the minimization of
remote communication."

We solve the same model by implicit enumeration (branch and bound), the
textbook method for small BIPs: components are assigned one at a time and a
branch is cut as soon as its already-committed remote-communication cost
reaches the best complete solution found so far.  The bound is admissible
because remote-communication cost only grows as more components are
assigned.  Like I5, the algorithm is exact and exponential, and it is
*hard-wired* to the remote-communication criterion — the very restriction
the paper's framework removes.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.constraints import ConstraintSet
from repro.core.errors import AlgorithmError
from repro.core.model import DeploymentModel
from repro.core.objectives import CommunicationCostObjective


class BIPAlgorithm(DeploymentAlgorithm):
    """Branch-and-bound minimization of remote communication volume.

    The objective is fixed to :class:`CommunicationCostObjective`; passing a
    different objective raises, documenting I5's inflexibility (which the
    baseline bench E8 demonstrates).
    """

    name = "bip"
    exact = True

    def __init__(self, constraints: Optional[ConstraintSet] = None,
                 seed=None, max_space: float = 5e7):
        super().__init__(CommunicationCostObjective(), constraints, seed)
        self.max_space = max_space

    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        hosts = model.host_ids
        # Order components most-talkative-first so the bound bites early.
        components = sorted(
            model.component_ids,
            key=lambda c: -sum(
                model.frequency(c, o) * model.evt_size(c, o)
                for o in model.logical_neighbors(c)),
        )
        space = float(len(hosts)) ** len(components)
        if space > self.max_space:
            raise AlgorithmError(
                f"bip: search space {space:.3g} exceeds "
                f"max_space={self.max_space:.3g} (BIP is exponential; "
                "this is the I5 limitation the paper discusses)")

        best_cost = float("inf")
        best: Optional[Dict[str, str]] = None
        assignment: Dict[str, str] = {}
        nodes_visited = 0
        nodes_bounded = 0

        def committed_cost_delta(component: str, host: str) -> float:
            """Remote-communication cost this placement commits, counting
            only edges to already-assigned components (monotone bound)."""
            cost = 0.0
            for neighbor in model.logical_neighbors(component):
                neighbor_host = assignment.get(neighbor)
                if neighbor_host is not None and neighbor_host != host:
                    link = model.logical_link(component, neighbor)
                    cost += link.frequency * link.evt_size
            return cost

        def descend(index: int, cost_so_far: float) -> None:
            nonlocal best_cost, best, nodes_visited, nodes_bounded
            nodes_visited += 1
            if cost_so_far >= best_cost:
                nodes_bounded += 1
                return
            if index == len(components):
                if not self.constraints.is_satisfied(model, assignment):
                    return
                self._count_evaluation()
                if cost_so_far < best_cost:
                    best_cost = cost_so_far
                    best = dict(assignment)
                return
            component = components[index]
            for host in hosts:
                if not self.constraints.allows(model, assignment,
                                               component, host):
                    continue
                delta = committed_cost_delta(component, host)
                if cost_so_far + delta >= best_cost:
                    nodes_bounded += 1
                    continue
                assignment[component] = host
                descend(index + 1, cost_so_far + delta)
                del assignment[component]

        descend(0, 0.0)
        extra = {
            "nodes_visited": nodes_visited,
            "nodes_bounded": nodes_bounded,
            "optimal_cost": best_cost if best is not None else None,
        }
        return best, extra
