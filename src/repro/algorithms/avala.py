"""Avala — the paper's greedy centralized algorithm (Section 5.1, [12]).

"Avala is a greedy algorithm that incrementally assigns software components
to the hardware hosts.  At each step of the algorithm, the goal is to select
the assignment that will maximally contribute to the objective function, by
selecting the 'best' host and 'best' software component.  Selecting the best
hardware host is performed by choosing a host with the highest sum of
network reliabilities and bandwidths with other hosts in the system, and the
highest memory capacity.  Similarly, selecting the best software component
is performed by choosing the component with the highest frequency of
interaction with other components in the system, and the lowest required
memory.  Once found, the best component is assigned to the best host, making
certain that the location and collocation constraints are satisfied.  The
algorithm proceeds with searching for the next best component among the
remaining components, until the best host is full.  Next, the algorithm
selects the best host among the remaining hosts.  This process repeats until
every component is assigned to a host.  The complexity of this algorithm is
O(n^3)."

After the first component lands on a host, "next best component" weighs
interaction with the components already placed on that host most heavily —
that is what steers chatty component clusters onto shared hosts and gives
the greedy search its availability gains.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.algorithms.base import DeploymentAlgorithm
from repro.core.model import DeploymentModel


def _normalize(scores: Dict[str, float]) -> Dict[str, float]:
    """Scale a score map into [0, 1] (max-normalization; all-zero maps pass
    through unchanged)."""
    finite = [v for v in scores.values() if v != float("inf")]
    top = max(finite) if finite else 0.0
    if top <= 0.0:
        return {k: (1.0 if v == float("inf") else 0.0) for k, v in scores.items()}
    return {
        k: (1.0 if v == float("inf") else v / top) for k, v in scores.items()
    }


class AvalaAlgorithm(DeploymentAlgorithm):
    """Greedy host-by-host constructive assignment.

    Args:
        local_weight: Weight of a candidate component's interaction with
            components already on the host being filled.
        global_weight: Weight of its total interaction with all components.
        memory_weight: Penalty weight for its required memory.
    """

    name = "avala"

    def __init__(self, objective, constraints=None, seed=None,
                 local_weight: float = 1.0, global_weight: float = 0.5,
                 memory_weight: float = 0.5,
                 incremental_host_rank: bool = True):
        super().__init__(objective, constraints, seed)
        self.local_weight = local_weight
        self.global_weight = global_weight
        self.memory_weight = memory_weight
        #: Rank each next host by its links to the hosts already selected
        #: (True) rather than to the whole network (False).  The naive
        #: global ranking is kept for the ablation bench.
        self.incremental_host_rank = incremental_host_rank

    # -- ranking helpers ----------------------------------------------------
    def _host_rank(self, model: DeploymentModel) -> List[str]:
        """Hosts ordered best-first by link quality and capacity.

        The first host is the one with "the highest sum of network
        reliabilities and bandwidths with other hosts in the system, and the
        highest memory capacity" (§5.1).  Each *subsequent* host is chosen
        by the same criterion restricted to the hosts already selected:
        components spilling onto host i+1 interact mostly with components
        already placed, so what matters is the quality of the links back to
        the occupied hosts, not to the network at large.
        """
        reliability_sum: Dict[str, float] = {}
        bandwidth_sum: Dict[str, float] = {}
        memory: Dict[str, float] = {}
        for host in model.host_ids:
            reliability_sum[host] = sum(
                model.reliability(host, other)
                for other in model.host_ids if other != host)
            bandwidth_sum[host] = sum(
                bw for other in model.host_ids if other != host
                for bw in [model.bandwidth(host, other)]
                if bw != float("inf"))
            memory[host] = model.host(host).memory
        rel_n = _normalize(reliability_sum)
        bw_n = _normalize(bandwidth_sum)
        mem_n = _normalize(memory)
        max_bw = max((bandwidth_sum[h] for h in model.host_ids),
                     default=0.0)

        if not self.incremental_host_rank:
            return sorted(
                model.host_ids,
                key=lambda h: (-(rel_n[h] + bw_n[h] + mem_n[h]), h))

        remaining = list(model.host_ids)
        first = min(remaining,
                    key=lambda h: (-(rel_n[h] + bw_n[h] + mem_n[h]), h))
        order = [first]
        remaining.remove(first)
        while remaining:
            def selected_affinity(host: str) -> float:
                rel = sum(model.reliability(host, chosen)
                          for chosen in order)
                bw = sum(
                    b for chosen in order
                    for b in [model.bandwidth(host, chosen)]
                    if b != float("inf"))
                bw_term = bw / max_bw if max_bw > 0 else 0.0
                return rel / len(order) + bw_term + mem_n[host]
            best = min(remaining,
                       key=lambda h: (-selected_affinity(h), h))
            order.append(best)
            remaining.remove(best)
        return order

    def _component_scores(self, model: DeploymentModel) -> Tuple[
            Dict[str, float], Dict[str, float]]:
        """(normalized total interaction frequency, normalized memory)."""
        total_freq = {
            c: sum(model.frequency(c, other)
                   for other in model.logical_neighbors(c))
            for c in model.component_ids
        }
        memory = {c: model.component(c).memory for c in model.component_ids}
        return _normalize(total_freq), _normalize(memory)

    # -- main body ------------------------------------------------------------
    def _search(self, model: DeploymentModel, initial: Dict[str, str],
                ) -> Tuple[Optional[Mapping[str, str]], Dict[str, Any]]:
        host_order = self._host_rank(model)
        freq_n, mem_n = self._component_scores(model)
        unassigned = set(model.component_ids)
        assignment: Dict[str, str] = {}
        checker = self._checker(model)
        checker.reset({})
        placements_considered = 0

        for host in host_order:
            if not unassigned:
                break
            # Fill this host with best components until nothing more fits.
            while unassigned:
                on_host = [c for c, h in assignment.items() if h == host]
                best_component: Optional[str] = None
                best_score = float("-inf")
                for component in sorted(unassigned):
                    if not checker.allows(component, host):
                        continue
                    placements_considered += 1
                    local = sum(model.frequency(component, placed)
                                for placed in on_host)
                    score = (self.local_weight * local
                             + self.global_weight * freq_n[component]
                             - self.memory_weight * mem_n[component])
                    if score > best_score:
                        best_score = score
                        best_component = component
                if best_component is None:
                    break  # host is full (no remaining component fits)
                assignment[best_component] = host
                checker.place(best_component, host)
                unassigned.discard(best_component)

        self._count_evaluation(placements_considered)
        extra = {
            "host_order": host_order,
            "placements_considered": placements_considered,
        }
        if unassigned:
            # Greedy stranded capacity (e.g. a large component left with
            # no single host able to take it).  Repair: rebuild with the
            # same host ranking but components placed largest-first, which
            # packs tight instances the interaction-greedy order cannot.
            from repro.algorithms.base import greedy_fill_deployment
            by_memory = sorted(
                model.component_ids,
                key=lambda c: (-model.component(c).memory, c))
            repaired = greedy_fill_deployment(
                model, self.constraints, host_order, by_memory,
                checker=checker)
            extra["repair_pass"] = True
            if repaired is None:
                extra["unplaced"] = sorted(unassigned)
                return None, extra
            return repaired, extra
        return assignment, extra
