"""Document-level verification of xADL deployment descriptions.

The model verifier needs a constructed :class:`DeploymentModel`, but a
broken document cannot (and, since the :mod:`repro.desi.xadl` hardening,
will not) be constructed at all.  These checks therefore work on the raw
XML: they find dangling link endpoints, undeclared deployment targets,
duplicate ids, and missing attributes, reporting *all* problems at once
instead of stopping at the loader's first exception.

When the document is structurally sound it is loaded and the full model
rule set from :mod:`repro.lint.model_rules` runs on the result, so
``python -m repro lint arch.xml`` gives one combined report.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Optional, Set, Tuple

from repro.core.errors import ReproError
from repro.lint.core import Finding, LintReport, RuleRegistry, Severity
from repro.lint.model_rules import model_rule_registry, verify_model

_XD_MALFORMED = "XD001"
_XD_DANGLING_LINK = "XD002"
_XD_DANGLING_DEPLOYMENT = "XD003"
_XD_DUPLICATE = "XD004"
_XD_MISSING_ATTRIBUTE = "XD005"

#: Rule id -> one-line description, for the documentation catalog.
DOCUMENT_RULES: Dict[str, str] = {
    _XD_MALFORMED: "The document must be well-formed XML with the "
                   "expected deploymentArchitecture root.",
    _XD_DANGLING_LINK: "Link endpoints must reference declared hosts "
                       "(physicalLink) or components (logicalLink).",
    _XD_DANGLING_DEPLOYMENT: "Deployment entries must reference a declared "
                             "component and host.",
    _XD_DUPLICATE: "Host/component ids and link endpoint pairs must be "
                   "unique.",
    _XD_MISSING_ATTRIBUTE: "Elements must carry their required identifying "
                           "attributes.",
}


def _error(rule: str, message: str, subject: str = "") -> Finding:
    return Finding(rule, Severity.ERROR, message, subject=subject)


def verify_xadl_source(text: str,
                       registry: Optional[RuleRegistry] = None,
                       ) -> LintReport:
    """Verify an xADL document; structure first, then the loaded model."""
    report = LintReport()
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        report.add(_error(_XD_MALFORMED, f"malformed XML: {exc}"))
        return report
    if root.tag != "deploymentArchitecture":
        report.add(_error(
            _XD_MALFORMED,
            f"expected root <deploymentArchitecture>, got <{root.tag}>"))
        return report

    hosts = _declared_ids(root, "host", report)
    components = _declared_ids(root, "component", report)
    _check_links(root, "physicalLink", ("hostA", "hostB"), hosts,
                 "host", report)
    _check_links(root, "logicalLink", ("componentA", "componentB"),
                 components, "component", report)
    _check_deployment(root, components, hosts, report)
    if report.has_errors:
        return report.sorted()

    # Structurally sound: hand over to the model verifier.
    from repro.desi import xadl  # deferred: desi imports are heavier
    model = xadl.from_xml(text)
    active = registry if registry is not None else model_rule_registry()
    return report.merge(verify_model(model, registry=active)).sorted()


def _declared_ids(root: ET.Element, tag: str,
                  report: LintReport) -> Set[str]:
    seen: Set[str] = set()
    for element in root.findall(tag):
        identifier = element.get("id")
        if not identifier:
            report.add(_error(_XD_MISSING_ATTRIBUTE,
                              f"<{tag}> element has no id attribute"))
            continue
        if identifier in seen:
            report.add(_error(_XD_DUPLICATE, f"duplicate {tag} id",
                              subject=f"{tag} {identifier!r}"))
        seen.add(identifier)
    return seen


def _check_links(root: ET.Element, tag: str, attrs: Tuple[str, str],
                 declared: Set[str], kind: str, report: LintReport) -> None:
    seen_pairs: Set[Tuple[str, str]] = set()
    for element in root.findall(tag):
        ends = []
        for attr in attrs:
            value = element.get(attr)
            if not value:
                report.add(_error(
                    _XD_MISSING_ATTRIBUTE,
                    f"<{tag}> element has no {attr} attribute"))
                continue
            ends.append(value)
            if value not in declared:
                report.add(_error(
                    _XD_DANGLING_LINK,
                    f"{tag} endpoint references undeclared {kind} "
                    f"{value!r}",
                    subject=f"{kind} {value!r}"))
        if len(ends) == 2:
            pair = tuple(sorted(ends))
            if pair in seen_pairs:
                report.add(_error(
                    _XD_DUPLICATE, f"duplicate {tag}",
                    subject=f"{tag} {pair[0]!r}<->{pair[1]!r}"))
            seen_pairs.add(pair)


def _check_deployment(root: ET.Element, components: Set[str],
                      hosts: Set[str], report: LintReport) -> None:
    for element in root.findall("deployment"):
        component = element.get("component")
        host = element.get("host")
        if not component or not host:
            report.add(_error(
                _XD_MISSING_ATTRIBUTE,
                "<deployment> element needs component and host attributes"))
            continue
        if component not in components:
            report.add(_error(
                _XD_DANGLING_DEPLOYMENT,
                f"deployment references undeclared component {component!r}",
                subject=f"component {component!r}"))
        if host not in hosts:
            report.add(_error(
                _XD_DANGLING_DEPLOYMENT,
                f"deployment places {component!r} on undeclared host "
                f"{host!r}",
                subject=f"host {host!r}"))


def verify_xadl_file(path: str,
                     registry: Optional[RuleRegistry] = None) -> LintReport:
    """Read *path* and run :func:`verify_xadl_source` on its contents."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read xADL file {path!r}: {exc}") from exc
    return verify_xadl_source(text, registry=registry)
