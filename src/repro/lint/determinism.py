"""Determinism analysis pack: seeded randomness, no wall clocks, no
hash-order leaks.

The repository's contract is that every report is byte-identical for the
same inputs and seed (serial vs ``workers=N`` sweeps, fault campaigns,
observability captures are all pinned by tests).  Three failure modes
keep breaking that contract in real systems, and all three are visible
statically with the :mod:`repro.lint.flow` dataflow machinery:

* **DT001** — the process-global RNG (``random.random()``,
  ``numpy.random.*``) or an *unseeded* generator
  (``random.Random()`` / ``default_rng()`` with no arguments) is used:
  results change run to run.  Reaching definitions track unseeded
  generators from construction to their use sites.
* **DT002** — wall-clock time (``time.time``/``perf_counter``/
  ``monotonic``, ``datetime.now``…) is read inside a serialization
  method (``to_dict``/``to_json``/``render``/``summary_line``…): the
  rendered artifact embeds the clock and can never be reproduced.
  (Capturing *elapsed* time into a field that canonical rendering
  excludes — ``include_timing=False`` — is fine and not flagged.)
* **DT003** — a ``set``'s iteration order escapes into rendered output:
  ``for x in some_set`` (or a comprehension / ``str.join``) inside a
  serialization method without a ``sorted(...)`` wrapper.  Reaching
  definitions resolve names back to set-typed assignments.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint import flow
from repro.lint.core import Finding, Rule, Severity
from repro.lint.flow import build_cfg, iter_functions

#: Functions that produce the canonical, rendered form of an artifact.
SERIALIZATION_NAMES = frozenset({
    "to_dict", "to_json", "as_dict", "render", "render_text",
    "render_json", "render_sarif", "summary_line", "summary", "dumps",
    "json_safe", "to_xml",
})

#: ``random.<fn>`` calls that do *not* consume the global RNG stream.
_RANDOM_NON_CONSUMING = frozenset({
    "Random", "SystemRandom", "seed", "getstate", "setstate",
})

_WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "clock",
})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string when *node* is a plain attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_global_rng_call(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if len(parts) == 2 and parts[0] == "random" and \
            parts[1] not in _RANDOM_NON_CONSUMING:
        return True
    # numpy.random.shuffle / np.random.rand / numpy.random.randint ...
    if len(parts) >= 3 and parts[-3] in ("numpy", "np") and \
            parts[-2] == "random":
        return True
    if len(parts) == 2 and parts[0] in ("numpy", "np") and \
            parts[1] == "random":  # np.random(...) misuse
        return True
    return False


def _is_unseeded_generator(call: ast.Call) -> bool:
    """``random.Random()`` / ``numpy.random.default_rng()`` with no
    seed argument."""
    if call.args or call.keywords:
        return False
    dotted = _dotted(call.func)
    if dotted is None:
        return False
    return dotted in ("random.Random", "Random") or \
        dotted.endswith("random.default_rng") or dotted == "default_rng"


def _is_wall_clock_call(call: ast.Call) -> bool:
    dotted = _dotted(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if len(parts) >= 2 and parts[-2] == "time" and \
            parts[-1] in _WALL_CLOCK_ATTRS:
        return True
    if len(parts) >= 2 and parts[-1] in _DATETIME_ATTRS and \
            parts[-2] in ("datetime", "date"):
        return True
    return False


# ---------------------------------------------------------------------------
# Taint tracking over the CFG (reaching definitions of flagged values)
# ---------------------------------------------------------------------------

def tainted_uses(function: flow.FunctionNode,
                 is_source: Any) -> List[Tuple[str, int, int]]:
    """Where values produced by *is_source* calls flow, per function.

    Returns ``(name, def_line, use_line)`` triples: a variable assigned
    from a source expression (or from another tainted variable) whose
    value is *read* on ``use_line``.  Propagation runs on the function's
    CFG via reaching definitions, so flows through branches, loops and
    ``try`` blocks are followed; attribute/subscript stores are out of
    scope (intraprocedural only).
    """
    cfg = build_cfg(function)
    reaching = flow.ReachingDefinitions.at_statements(cfg)

    # Pass 1: assignment lines whose value *directly* contains a source.
    direct: Set[int] = set()
    assigns: Dict[int, ast.stmt] = {}
    for _, statement in cfg.statements():
        if isinstance(statement, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            assigns.setdefault(statement.lineno, statement)
            value = getattr(statement, "value", None)
            if value is not None and any(
                    isinstance(sub, ast.Call) and is_source(sub)
                    for sub in ast.walk(value)):
                direct.add(statement.lineno)

    # Pass 2: fixpoint — a plain alias (``r2 = rng``) of a tainted name
    # is tainted too.  Propagation stops at any other expression, so a
    # value *derived* from the generator (``vals = [rng.random()]``)
    # does not itself read as "an unseeded generator".
    tainted_defs: Set[Tuple[str, int]] = {
        (name, line) for line in direct
        for name in flow.assigned_names(assigns[line])}
    changed = True
    while changed:
        changed = False
        for _, statement in cfg.statements():
            if not (isinstance(statement, ast.Assign)
                    and isinstance(statement.value, ast.Name)):
                continue
            source = statement.value.id
            defs_here = reaching.get(id(statement), frozenset())
            if any((name, line) in tainted_defs
                   for name, line in defs_here if name == source):
                for target in flow.assigned_names(statement):
                    entry = (target, statement.lineno)
                    if entry not in tainted_defs:
                        tainted_defs.add(entry)
                        changed = True

    # Pass 3: report non-assignment reads of tainted definitions.
    uses: List[Tuple[str, int, int]] = []
    for _, statement in cfg.statements():
        reads = flow.used_names(statement)
        if not reads:
            continue
        defs_here = reaching.get(id(statement), frozenset())
        for name, line in sorted(defs_here):
            if name in reads and (name, line) in tainted_defs:
                uses.append((name, line, statement.lineno))
    return sorted(set(uses))


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class UnseededRandomRule(Rule):
    """DT001: all randomness must come from an explicitly seeded
    generator (``random.Random(seed)``), never the process-global RNG
    or an unseeded generator object."""

    rule_id = "DT001"
    severity = Severity.ERROR
    description = ("No process-global RNG (random.*, numpy.random.*) and "
                   "no unseeded generators (random.Random() / "
                   "default_rng() without a seed): results must be "
                   "reproducible from the run's seed.")
    tags = frozenset({"determinism"})

    def check(self, context: Any) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call) and _is_global_rng_call(node):
                label = _dotted(node.func)
                yield self.finding(
                    f"{label}() draws from the process-global RNG; use "
                    "an explicitly seeded random.Random(seed)",
                    file=context.path, line=node.lineno,
                    col=node.col_offset)
        for function in iter_functions(context.tree):
            flows = tainted_uses(function, _is_unseeded_generator)
            reported: Set[Tuple[str, int]] = set()
            for name, def_line, use_line in flows:
                if (name, def_line) in reported:
                    continue
                reported.add((name, def_line))
                yield self.finding(
                    f"{name!r} is an unseeded generator (constructed "
                    f"line {def_line}) used on line {use_line}; pass a "
                    "seed so the stream is reproducible",
                    file=context.path, line=def_line,
                    flow=[def_line, use_line])


class WallClockInReportRule(Rule):
    """DT002: serialization must not read the wall clock."""

    rule_id = "DT002"
    severity = Severity.ERROR
    description = ("Serialization methods (to_dict/to_json/render/"
                   "summary_line/...) must not read wall-clock time "
                   "(time.time, perf_counter, datetime.now): rendered "
                   "reports must be byte-identical across runs.")
    tags = frozenset({"determinism"})

    def check(self, context: Any) -> Iterable[Finding]:
        for function in iter_functions(context.tree):
            if function.name not in SERIALIZATION_NAMES:
                continue
            for node in ast.walk(function):
                if isinstance(node, ast.Call) and _is_wall_clock_call(node):
                    yield self.finding(
                        f"{function.name}() reads the wall clock "
                        f"({_dotted(node.func)}); rendered output must "
                        "not depend on when it is rendered",
                        file=context.path, line=node.lineno,
                        col=node.col_offset)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union", "intersection", "difference",
                "symmetric_difference") and _is_set_expr(node.func.value):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetOrderEscapeRule(Rule):
    """DT003: set iteration order must not reach rendered output."""

    rule_id = "DT003"
    severity = Severity.ERROR
    description = ("Serialization methods must not iterate sets directly "
                   "(hash order escapes into the artifact); wrap the set "
                   "in sorted(...).")
    tags = frozenset({"determinism"})

    def check(self, context: Any) -> Iterable[Finding]:
        for function in iter_functions(context.tree):
            if function.name not in SERIALIZATION_NAMES:
                continue
            set_defs = self._set_definition_lines(function)
            for node in ast.walk(function):
                for iterable, line in self._iterations(node):
                    if self._is_set_valued(iterable, node, function,
                                           set_defs):
                        yield self.finding(
                            f"{function.name}() iterates a set on line "
                            f"{line}; its hash order escapes into the "
                            "output — wrap it in sorted(...)",
                            file=context.path, line=line)

    @staticmethod
    def _iterations(node: ast.AST) -> Iterable[Tuple[ast.expr, int]]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter, node.lineno
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "join" and node.args:
            yield node.args[0], node.lineno

    def _is_set_valued(self, expr: ast.expr, at: ast.AST,
                       function: flow.FunctionNode,
                       set_defs: Dict[str, Set[int]]) -> bool:
        if _is_set_expr(expr):
            return True
        if isinstance(expr, ast.Name) and expr.id in set_defs:
            return True
        return False

    def _set_definition_lines(self, function: flow.FunctionNode
                              ) -> Dict[str, Set[int]]:
        """Names whose every reaching assignment is set-typed.

        Conservative in the right direction for a lint: a name counts
        only when *all* of its assignments in the function are set
        expressions, so mixed/unknown types never fire.
        """
        set_lines: Dict[str, Set[int]] = {}
        other_lines: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if _is_set_expr(node.value):
                            set_lines.setdefault(target.id, set()).add(
                                node.lineno)
                        else:
                            other_lines.add(target.id)
        return {name: lines for name, lines in set_lines.items()
                if name not in other_lines}


DETERMINISM_RULES = (UnseededRandomRule, WallClockInReportRule,
                     SetOrderEscapeRule)
