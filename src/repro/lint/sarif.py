"""SARIF 2.1.0 reporter.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — GitHub code scanning, VS Code SARIF
viewers, Azure DevOps.  Emitting it alongside the text/JSON reporters
lets the CI ``self-lint`` gate upload its findings as a reviewable
artifact instead of a log dump.

Only the stable core of the format is produced: one ``run`` with a
``tool.driver`` describing the active rules and one ``result`` per
finding.  Output is fully deterministic — findings come pre-sorted and
deduped from :meth:`~repro.lint.core.LintReport.sorted`, keys are
emitted sorted — so two runs over the same tree are byte-identical.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.core import Finding, LintReport, RuleRegistry, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"
TOOL_URI = "https://example.invalid/repro"

#: :class:`Severity` → SARIF ``level``.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def severity_level(severity: Severity) -> str:
    return _LEVELS[severity]


def _rule_descriptor(rule: Any) -> Dict[str, Any]:
    descriptor: Dict[str, Any] = {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.description or rule.rule_id},
        "defaultConfiguration": {"level": severity_level(rule.severity)},
    }
    if rule.tags:
        descriptor["properties"] = {"tags": sorted(rule.tags)}
    return descriptor


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": severity_level(finding.severity),
        "message": {"text": finding.message},
    }
    if finding.file is not None:
        region: Dict[str, Any] = {}
        if finding.line is not None:
            region["startLine"] = finding.line
        if finding.col is not None:
            # SARIF columns are 1-based; AST col_offset is 0-based.
            region["startColumn"] = finding.col + 1
        location: Dict[str, Any] = {
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file.replace("\\", "/")},
            },
        }
        if region:
            location["physicalLocation"]["region"] = region
        result["locations"] = [location]
    elif finding.subject:
        result["locations"] = [
            {"logicalLocations": [{"name": finding.subject}]}]
    if finding.detail:
        result["properties"] = {
            key: value for key, value in sorted(finding.detail.items())
            if _json_safe(value)}
    fingerprint = _partial_fingerprint(finding)
    if fingerprint:
        result["partialFingerprints"] = {"primaryLocationLineHash":
                                         fingerprint}
    return result


def _json_safe(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def _partial_fingerprint(finding: Finding) -> Optional[str]:
    from repro.lint.cache import finding_fingerprint
    if finding.file is None and not finding.subject:
        return None
    return finding_fingerprint(finding)


def sarif_log(report: LintReport,
              registry: Optional[RuleRegistry] = None) -> Dict[str, Any]:
    """The SARIF log as a plain dict (one run, all findings)."""
    rules: List[Dict[str, Any]] = []
    if registry is not None:
        rules = [_rule_descriptor(rule) for rule in registry]
    driver: Dict[str, Any] = {
        "name": TOOL_NAME,
        "informationUri": TOOL_URI,
    }
    if rules:
        driver["rules"] = rules
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": driver},
            "columnKind": "utf16CodeUnits",
            "results": [_result(f) for f in report.sorted()],
        }],
    }


def render_sarif(report: LintReport,
                 registry: Optional[RuleRegistry] = None) -> str:
    """Serialize *report* as a SARIF 2.1.0 JSON document."""
    return json.dumps(sarif_log(report, registry=registry), indent=2,
                      sort_keys=True)
